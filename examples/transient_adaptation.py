#!/usr/bin/env python
"""Transient adaptation to a traffic change (Figs. 7, 8 and 9).

Warms a Dragonfly up with uniform traffic, switches to ADV+1 at t = 0 and
prints the evolution of the average latency and of the fraction of globally
misrouted packets for the congestion-based (PB, OLM) and contention-based
(Base, Hybrid, ECtN) mechanisms.  With ``--large-buffers`` the input buffers
are enlarged 8x, reproducing the Fig. 8 comparison where the credit-based
triggers slow down while the contention counters keep the same response time.
With ``--oscillations`` the PB-vs-ECtN long-timescale comparison of Fig. 9 is
run instead.

Run with::

    python examples/transient_adaptation.py [--large-buffers | --oscillations]

The transient experiments use a 1,056-node balanced Dragonfly (the
``transient`` preset: p=4, a=8, h=4, driven at 30 % load so the adversarial
pattern stresses the source routers as the paper's 20 % load does at full
scale); expect a few minutes of runtime.
"""

from __future__ import annotations

import sys

from repro.experiments import (
    TRANSIENT_SCALE,
    figure7_report,
    figure8_report,
    figure9_report,
    run_figure7,
    run_figure8,
    run_figure9,
)


def main() -> None:
    args = set(sys.argv[1:])
    if "--oscillations" in args:
        series = run_figure9()
        print(figure9_report(series))
        return
    if "--large-buffers" in args:
        series = run_figure8()
        print(figure8_report(series))
        return
    series = run_figure7()
    print(figure7_report(series))
    print()
    print(
        "Expected shape: after the change at cycle 0 the contention-based\n"
        "mechanisms (Base, Hybrid, ECtN) start misrouting within a few tens of\n"
        "cycles, while PB and OLM keep routing minimally until their queues\n"
        "fill, which shows up as a slower rise of the misrouted fraction and a\n"
        "larger latency excursion."
    )


if __name__ == "__main__":
    main()
