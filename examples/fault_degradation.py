#!/usr/bin/env python
"""Fault-degradation curves: throughput retained as links fail.

Sweeps each routing mechanism over a grid of random link-failure
percentages and prints the accepted load, the reroute/drop counters and
the throughput retained against the mechanism's own healthy baseline.
The contention-based mechanisms (Base, Hybrid) treat a dead link like a
persistently congested one, so they retain at least MIN's throughput as
the failure rate grows.

Run with::

    python examples/fault_degradation.py
    python examples/fault_degradation.py --topology torus --percents 0 5 10 20
    python examples/fault_degradation.py --scale small --workers 8 --retries 2
"""

from __future__ import annotations

import argparse

from repro import available_topologies
from repro.experiments import (
    fault_sweep_report,
    get_scale,
    run_fault_sweep,
    supported_routings,
)


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Throughput-degradation curves under random link failures."
    )
    parser.add_argument(
        "--topology",
        default="dragonfly",
        choices=available_topologies(),
        help="topology to sweep (default: dragonfly)",
    )
    parser.add_argument(
        "--routings",
        nargs="+",
        default=None,
        help="routing mechanisms (default: every supported non-broadcast one)",
    )
    parser.add_argument(
        "--percents",
        nargs="+",
        type=float,
        default=[0.0, 2.0, 5.0, 10.0],
        help="link-failure percentages (0 is the baseline row)",
    )
    parser.add_argument("--pattern", default="UN", help="traffic pattern")
    parser.add_argument(
        "--load", type=float, default=0.3, help="offered load per node"
    )
    parser.add_argument(
        "--scale", default="tiny", help="experiment scale (tiny/small/...)"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="parallel sweep processes"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-point timeout in seconds (parallel runs only)",
    )
    parser.add_argument(
        "--retries", type=int, default=1, help="extra attempts per failing point"
    )
    args = parser.parse_args()

    routings = args.routings
    if routings is None:
        # PB/ECtN broadcast over healthy group structure; keep the sweep to
        # the mechanisms the fault fallback covers on every topology.
        routings = [
            name
            for name in supported_routings(args.topology)
            if name not in ("PB", "ECtN")
        ]
    print(f"{args.topology}: sweeping {', '.join(routings)}")

    rows = run_fault_sweep(
        scale=get_scale(args.scale, topology=args.topology),
        routings=routings,
        failure_percents=args.percents,
        pattern=args.pattern,
        offered_load=args.load,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
    )
    print(fault_sweep_report(rows))


if __name__ == "__main__":
    main()
