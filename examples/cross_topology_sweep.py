#!/usr/bin/env python
"""Cross-topology sweep: the adaptive-vs-oblivious trade-off on every topology.

Runs the MIN / VAL / UGAL load sweep under adversarial (and optionally
uniform) traffic on the Dragonfly, the 2-D flattened butterfly, the full
mesh and the torus, and prints one table per pattern — the multi-topology
extension of the paper's Fig. 5 study.  On the torus try ``ADV+h`` (the
tornado slab shift) for the starkest MIN-vs-VAL contrast.

Run with::

    python examples/cross_topology_sweep.py
    python examples/cross_topology_sweep.py --scale small --workers 8
    python examples/cross_topology_sweep.py --topologies torus --patterns ADV+h UN
"""

from __future__ import annotations

import argparse

from repro import available_topologies
from repro.experiments import (
    CROSS_TOPOLOGY_ROUTINGS,
    cross_topology_report,
    run_cross_topology,
    supported_routings,
)


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Cross-topology sweep: the adaptive-vs-oblivious "
        "trade-off on every registered topology."
    )
    parser.add_argument(
        "--topologies",
        nargs="+",
        default=None,
        choices=available_topologies(),
        help="topologies to sweep (default: all registered)",
    )
    parser.add_argument(
        "--patterns", nargs="+", default=["ADV+1", "UN"], help="traffic patterns"
    )
    parser.add_argument(
        "--scale", default="tiny", help="experiment scale (tiny/small/...)"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="parallel sweep processes"
    )
    args = parser.parse_args()

    topologies = args.topologies or available_topologies()
    print("Topology / routing support matrix:")
    for topology in topologies:
        print(f"  {topology:22s} {', '.join(supported_routings(topology))}")
    print()

    for pattern in args.patterns:
        rows = run_cross_topology(
            topologies=topologies,
            routings=CROSS_TOPOLOGY_ROUTINGS,
            pattern=pattern,
            scale=args.scale,
            workers=args.workers,
        )
        print(cross_topology_report(rows, pattern))
        print()


if __name__ == "__main__":
    main()
