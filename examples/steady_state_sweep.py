#!/usr/bin/env python
"""Regenerate the steady-state figures of the paper (Figs. 5 and 6).

Runs the offered-load sweeps of Fig. 5 (UN, ADV+1, ADV+h) and the mixed
ADV+1/UN experiment of Fig. 6 at a configurable scale and prints the rows the
paper plots (latency and accepted load per routing and load).

Run with::

    python examples/steady_state_sweep.py [tiny|small|paper] [UN|ADV+1|ADV+h|fig6] [workers]

The default (``tiny UN``) finishes in well under a minute; ``small`` gives
smoother curves in a few minutes; ``paper`` is the full Table I configuration
(very slow in pure Python, provided for completeness).  Passing a worker
count fans the independent (routing, load, seed) points out over that many
processes (see EXPERIMENTS.md).
"""

from __future__ import annotations

import sys

from repro.experiments import (
    figure5_report,
    figure6_report,
    get_scale,
    pivot_series,
    run_figure5,
    run_figure6,
)
from repro.experiments.reporting import format_table


def main() -> None:
    scale_name = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    target = sys.argv[2] if len(sys.argv) > 2 else "UN"
    workers = int(sys.argv[3]) if len(sys.argv) > 3 else None
    scale = get_scale(scale_name)

    if target.lower() == "fig6":
        rows = run_figure6(scale=scale, workers=workers)
        print(figure6_report(rows))
        return

    rows = run_figure5(pattern=target, scale=scale, workers=workers)
    print(figure5_report(rows, target))
    print()
    print(
        format_table(
            pivot_series(rows, "offered_load", "routing", "mean_latency"),
            title=f"Latency (cycles) per routing vs offered load — {target}",
        )
    )
    print()
    print(
        format_table(
            pivot_series(rows, "offered_load", "routing", "accepted_load"),
            title=f"Accepted load per routing vs offered load — {target}",
        )
    )


if __name__ == "__main__":
    main()
