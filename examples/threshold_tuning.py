#!/usr/bin/env python
"""Misrouting-threshold selection (Fig. 10 and Section VI-A).

Sweeps the Base contention threshold under uniform and ADV+1 traffic and
prints the latency/throughput rows of Fig. 10, together with the analytical
threshold window of Section VI-A (roughly twice the average number of VCs per
input port on the UN side, the number of injection ports on the ADV side) and
the measured average counter value under saturated uniform traffic.

Run with::

    python examples/threshold_tuning.py [tiny|small]
"""

from __future__ import annotations

import sys

from repro.experiments import (
    figure10_report,
    get_scale,
    measured_average_counter,
    run_figure10,
    threshold_analysis,
)


def main() -> None:
    scale_name = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    scale = get_scale(scale_name)

    analysis = threshold_analysis(scale.params)
    print("Section VI-A threshold analysis for this router configuration:")
    for key, value in analysis.as_dict().items():
        print(f"  {key:24s} {value:.2f}")
    measured = measured_average_counter(
        scale.params, offered_load=0.9, warmup_cycles=300, sample_cycles=100
    )
    print(f"  measured avg counter     {measured:.2f}  (saturated uniform traffic)")
    print()

    for pattern in ("UN", "ADV+1"):
        rows = run_figure10(pattern=pattern, scale=scale)
        print(figure10_report(rows, pattern))
        print()
    print(
        "Expected shape: thresholds below the UN-safe bound degrade uniform\n"
        "latency/throughput (spurious misrouting); thresholds above the number\n"
        "of injection ports delay misrouting under ADV+1 and raise its latency."
    )


if __name__ == "__main__":
    main()
