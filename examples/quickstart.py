#!/usr/bin/env python
"""Quickstart: simulate a Dragonfly with different routing mechanisms.

Builds a scaled-down Dragonfly (the ``small`` preset), runs MIN, OLM and the
paper's Base contention-counter mechanism under uniform and adversarial
traffic, and prints a latency/throughput comparison — a minimal version of
the paper's Fig. 5.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SimulationParameters, Simulator
from repro.experiments.reporting import format_table


def main() -> None:
    params = SimulationParameters.small()
    print("Simulation parameters (scaled-down Table I):")
    for key, value in params.as_dict().items():
        print(f"  {key:28s} {value}")
    print()

    rows = []
    for pattern in ("UN", "ADV+1"):
        for routing in ("MIN", "OLM", "Base"):
            sim = Simulator(params, routing=routing, pattern=pattern, offered_load=0.25, seed=1)
            result = sim.run_steady_state(warmup_cycles=500, measure_cycles=1500)
            rows.append(
                {
                    "pattern": pattern,
                    "routing": routing,
                    "mean_latency": result.mean_latency,
                    "accepted_load": result.accepted_load,
                    "misrouted": result.global_misroute_fraction,
                }
            )
            print(
                f"ran {routing:5s} under {pattern:6s}: "
                f"latency={result.mean_latency:7.1f} cycles, "
                f"accepted={result.accepted_load:.3f} phits/node/cycle"
            )

    print()
    print(
        format_table(
            rows,
            columns=["pattern", "routing", "mean_latency", "accepted_load", "misrouted"],
            title="Quickstart: latency and accepted load at 25% offered load",
        )
    )
    print()
    print(
        "Expected shape: under UN the contention-based Base matches MIN's latency\n"
        "while OLM pays a small penalty; under ADV+1 MIN saturates (accepted load\n"
        "stuck near 1/(a*p)) while OLM and Base sustain the offered load."
    )


if __name__ == "__main__":
    main()
