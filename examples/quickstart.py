#!/usr/bin/env python
"""Quickstart: simulate a network with different routing mechanisms.

Builds a scaled-down topology from the registry (Dragonfly by default), runs
MIN, the paper's Base contention-counter mechanism (where supported) and the
topology-agnostic UGAL under uniform and adversarial traffic, and prints a
latency/throughput comparison — a minimal version of the paper's Fig. 5.

Run with::

    python examples/quickstart.py
    python examples/quickstart.py --topology flattened_butterfly
    python examples/quickstart.py --topology torus --load 0.15
    python examples/quickstart.py --topology full_mesh --load 0.3
"""

from __future__ import annotations

import argparse

from repro import SimulationParameters, Simulator, available_topologies, topology_preset
from repro.experiments import supported_routings
from repro.experiments.reporting import format_table

#: Mechanisms shown when the topology supports them, in display order.
PREFERRED_ROUTINGS = ("MIN", "OLM", "Base", "UGAL")


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Quickstart: simulate a registered topology with "
        "different routing mechanisms."
    )
    parser.add_argument(
        "--topology",
        default="dragonfly",
        choices=available_topologies(),
        help="registered topology to simulate (default: dragonfly)",
    )
    parser.add_argument(
        "--load", type=float, default=0.25, help="offered load in phits/node/cycle"
    )
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    params = SimulationParameters.small(topology_preset(args.topology, "small"))
    print(f"Simulation parameters (scaled-down Table I, {args.topology}):")
    for key, value in params.as_dict().items():
        print(f"  {key:28s} {value}")
    print()

    routings = supported_routings(args.topology, PREFERRED_ROUTINGS)
    print(f"Routings supported on {args.topology}: {', '.join(routings)}")
    print()

    rows = []
    for pattern in ("UN", "ADV+1"):
        for routing in routings:
            sim = Simulator(
                params,
                routing=routing,
                pattern=pattern,
                offered_load=args.load,
                seed=args.seed,
            )
            result = sim.run_steady_state(warmup_cycles=500, measure_cycles=1500)
            rows.append(
                {
                    "pattern": pattern,
                    "routing": routing,
                    "mean_latency": result.mean_latency,
                    "accepted_load": result.accepted_load,
                    "misrouted": result.global_misroute_fraction
                    + result.local_misroute_fraction,
                }
            )
            print(
                f"ran {routing:5s} under {pattern:6s}: "
                f"latency={result.mean_latency:7.1f} cycles, "
                f"accepted={result.accepted_load:.3f} phits/node/cycle"
            )

    print()
    print(
        format_table(
            rows,
            columns=["pattern", "routing", "mean_latency", "accepted_load", "misrouted"],
            title=(
                f"Quickstart ({args.topology}): latency and accepted load at "
                f"{args.load:.0%} offered load"
            ),
        )
    )
    print()
    print(
        "Expected shape: under UN the minimal-path mechanisms give the lowest\n"
        "latency; under ADV+1 MIN saturates on the direct inter-region channel\n"
        "while the adaptive/nonminimal mechanisms sustain the offered load."
    )


if __name__ == "__main__":
    main()
