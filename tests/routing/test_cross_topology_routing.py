"""Cross-topology routing: UGAL, topology-agnostic VAL, capability gates."""

import pytest

from repro.config.parameters import (
    FatTreeConfig,
    FlattenedButterflyConfig,
    FullMeshConfig,
    SimulationParameters,
    TorusConfig,
)
from repro.network.packet import Packet, RoutingPhase
from repro.routing import UnsupportedTopologyError, available_routings
from repro.simulation.simulator import Simulator
from repro.topology.base import PortKind
from repro.topology.registry import topology_preset


def fb_params():
    return SimulationParameters.tiny(FlattenedButterflyConfig.tiny())


def mesh_params():
    return SimulationParameters.tiny(FullMeshConfig.tiny())


def torus_params():
    return SimulationParameters.tiny(TorusConfig.tiny())


def ft_params():
    return SimulationParameters.tiny(FatTreeConfig.tiny())


def make_packet(src, dst, size=2):
    return Packet(pid=0, src=src, dst=dst, size_phits=size, creation_cycle=0)


class TestValiantOnNewTopologies:
    @pytest.mark.parametrize("params_factory", [fb_params, mesh_params, torus_params])
    def test_intermediate_router_never_in_source_region(self, params_factory):
        sim = Simulator(params_factory(), "VAL", "UN", offered_load=0.0, seed=7)
        topo = sim.topology
        for source_router in range(topo.num_routers):
            src_region = topo.router_region(source_router)
            for _ in range(20):
                intermediate = sim.routing.random_intermediate_router(source_router)
                assert 0 <= intermediate < topo.num_routers
                assert topo.router_region(intermediate) != src_region

    def test_fat_tree_intermediate_is_always_a_root(self):
        """The up/down schedule only covers up-then-down paths, so the fat
        tree constrains the Valiant turn point to a top-level switch."""
        sim = Simulator(ft_params(), "VAL", "UN", offered_load=0.0, seed=7)
        topo = sim.topology
        top = topo.config.levels - 1
        for source_router in range(topo.num_routers):
            for _ in range(20):
                intermediate = sim.routing.random_intermediate_router(source_router)
                assert topo.router_level(intermediate) == top

    @pytest.mark.parametrize(
        "params_factory, pattern",
        [
            (fb_params, "ADV+1"),
            (mesh_params, "ADV+1"),
            (torus_params, "ADV+1"),
            (ft_params, "ADV+1"),
        ],
    )
    def test_valiant_delivers_under_adversarial_traffic(self, params_factory, pattern):
        sim = Simulator(params_factory(), "VAL", pattern, offered_load=0.15, seed=2)
        result = sim.run_steady_state(warmup_cycles=150, measure_cycles=300)
        assert result.delivered_packets > 0
        assert result.accepted_load == pytest.approx(0.15, abs=0.05)

    def test_full_mesh_valiant_detour_counts_as_local_misroute(self):
        sim = Simulator(mesh_params(), "VAL", "ADV+1", offered_load=0.2, seed=4)
        result = sim.run_steady_state(warmup_cycles=150, measure_cycles=300)
        assert result.global_misroute_fraction == 0.0
        assert result.local_misroute_fraction > 0.0


class TestUGAL:
    def test_stays_minimal_on_empty_network(self):
        """With empty queues the UGAL comparison never prefers Valiant."""
        sim = Simulator(fb_params(), "UGAL", "UN", offered_load=0.0, seed=7)
        topo = sim.topology
        router = sim.network.routers[0]
        dst = topo.num_nodes - 1
        packet = make_packet(0, dst)
        sim.routing.on_inject(router, packet, cycle=0)
        assert packet.phase is RoutingPhase.MINIMAL
        assert packet.valiant_router is None

    def test_intra_region_traffic_never_diverted(self):
        sim = Simulator(fb_params(), "UGAL", "UN", offered_load=0.0, seed=7)
        topo = sim.topology
        router = sim.network.routers[0]
        # A destination on another router of the same region (row).
        same_region_router = topo.region_routers(0)[1]
        packet = make_packet(0, topo.router_nodes(same_region_router)[0])
        sim.routing.on_inject(router, packet, cycle=0)
        assert packet.phase is RoutingPhase.MINIMAL
        assert packet.valiant_router is None

    def test_delivers_on_every_topology(self, every_topology):
        params = SimulationParameters.tiny(topology_preset(every_topology))
        sim = Simulator(params, "UGAL", "ADV+1", offered_load=0.2, seed=3)
        result = sim.run_steady_state(warmup_cycles=150, measure_cycles=300)
        assert result.delivered_packets > 0
        assert result.accepted_load == pytest.approx(0.2, abs=0.06)

    def test_uses_oblivious_vc_budget(self):
        params = fb_params()
        sim = Simulator(params, "UGAL", "UN", offered_load=0.0, seed=1)
        assert sim.routing.needs_extra_local_vc
        assert sim.routing.num_vcs(PortKind.LOCAL) == params.local_port_vcs_oblivious


class TestCapabilityGates:
    @pytest.mark.parametrize("routing", ["OLM", "Base", "Hybrid", "ECtN", "PB"])
    def test_mesh_rejects_every_gated_mechanism(self, routing):
        """The full mesh has neither in-transit policy nor group ECN."""
        params = mesh_params()
        with pytest.raises(UnsupportedTopologyError) as excinfo:
            Simulator(params, routing, "UN", offered_load=0.1)
        # The error must name the rejected topology and an alternative,
        # not just refuse.
        assert "UGAL" in str(excinfo.value)
        assert params.topology.kind in str(excinfo.value)

    @pytest.mark.parametrize("routing", ["ECtN", "PB"])
    @pytest.mark.parametrize(
        "params_factory", [fb_params, mesh_params, torus_params, ft_params]
    )
    def test_dragonfly_broadcast_mechanisms_fail_loudly(
        self, routing, params_factory
    ):
        """PB/ECtN need the Dragonfly's intra-group ECN / broadcast even on
        topologies where the in-transit adaptive policy itself exists."""
        params = params_factory()
        with pytest.raises(UnsupportedTopologyError) as excinfo:
            Simulator(params, routing, "UN", offered_load=0.1)
        assert "UGAL" in str(excinfo.value)
        assert params.topology.kind in str(excinfo.value)

    @pytest.mark.parametrize("routing", ["OLM", "Base", "Hybrid"])
    @pytest.mark.parametrize("params_factory", [fb_params, torus_params, ft_params])
    def test_in_transit_adaptive_constructs_beyond_dragonfly(
        self, routing, params_factory
    ):
        """The in-transit family runs wherever a path policy is declared:
        MM+L on the flattened butterfly, the ring escape on the torus, the
        uplink multipath on the fat tree."""
        sim = Simulator(params_factory(), routing, "UN", offered_load=0.0)
        assert sim.routing.uses_in_transit_adaptive

    @pytest.mark.parametrize("routing", available_routings())
    def test_every_mechanism_constructs_on_dragonfly(self, routing):
        Simulator(SimulationParameters.tiny(), routing, "UN", offered_load=0.0)
