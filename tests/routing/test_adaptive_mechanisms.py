"""Tests for the adaptive mechanisms: OLM, Base, Hybrid, ECtN triggers."""

import pytest

from repro.network.packet import Packet, RoutingPhase
from repro.routing import create_routing
from repro.routing.contention.base_contention import BaseContentionRouting
from repro.routing.contention.ectn import ECtNRouting
from repro.routing.contention.hybrid import HybridContentionRouting
from repro.routing.misrouting import global_misroute_candidates, local_misroute_candidates
from repro.routing.olm import OLMRouting
from repro.simulation.simulator import Simulator
from repro.topology.base import PortKind


def make_sim(tiny_params, routing):
    return Simulator(tiny_params, routing, "UN", offered_load=0.0, seed=11)


def remote_packet(topology, src_router=0, dst_group=2, pid=0, size=2):
    dst = topology.group_nodes(dst_group)[0]
    src = topology.router_nodes(src_router)[0]
    return Packet(pid=pid, src=src, dst=dst, size_phits=size, creation_cycle=0)


class TestMisrouteCandidates:
    def test_global_candidates_exclude_minimal_current_and_destination(self, small_params):
        sim = make_sim(small_params, "OLM")
        topo = sim.topology
        router = sim.network.routers[0]
        packet = remote_packet(topo, 0, 3)
        minimal_port = topo.minimal_output_port(0, packet.dst)
        candidates = global_misroute_candidates(
            topo, router, packet, minimal_port, allow_local_proxy=False
        )
        assert candidates, "router with h>=2 should offer at least one global candidate"
        for cand in candidates:
            assert cand.kind is PortKind.GLOBAL
            assert cand.port != minimal_port
            assert cand.target_group not in (0, 3)

    def test_local_proxy_candidates_added_at_injection(self, small_params):
        sim = make_sim(small_params, "OLM")
        topo = sim.topology
        router = sim.network.routers[0]
        packet = remote_packet(topo, 0, 3)
        minimal_port = topo.minimal_output_port(0, packet.dst)
        with_proxy = global_misroute_candidates(
            topo, router, packet, minimal_port, allow_local_proxy=True
        )
        without = global_misroute_candidates(
            topo, router, packet, minimal_port, allow_local_proxy=False
        )
        assert len(with_proxy) > len(without)
        assert any(c.kind is PortKind.LOCAL for c in with_proxy)

    def test_local_candidates_only_for_local_minimal_port(self, small_params):
        sim = make_sim(small_params, "OLM")
        topo = sim.topology
        router = sim.network.routers[0]
        packet = remote_packet(topo, 0, 3)
        global_port = next(iter(topo.global_ports))
        assert local_misroute_candidates(topo, router, packet, global_port) == []
        local_port = next(iter(topo.local_ports))
        candidates = local_misroute_candidates(topo, router, packet, local_port)
        assert all(c.kind is PortKind.LOCAL and c.port != local_port for c in candidates)


class TestOLMTrigger:
    def test_no_misroute_when_network_empty(self, tiny_params):
        sim = make_sim(tiny_params, "OLM")
        topo = sim.topology
        router = sim.network.routers[0]
        packet = remote_packet(topo)
        decision = sim.routing.select_output(router, 0, 0, packet, 0)
        assert decision.output_port == topo.minimal_output_port(0, packet.dst)
        assert not decision.nonminimal_global

    def test_misroutes_when_minimal_output_congested(self, tiny_params):
        sim = make_sim(tiny_params, "OLM")
        topo = sim.topology
        router = sim.network.routers[0]
        packet = remote_packet(topo)
        minimal_port = topo.minimal_output_port(0, packet.dst)
        # Artificially congest the minimal output far beyond the OLM threshold.
        router.output_ports[minimal_port].buffer.commit(
            router.output_ports[minimal_port].buffer.capacity_phits
        )
        router.output_ports[minimal_port].consume_credits(0, 4)
        decision = sim.routing.select_output(router, 0, 0, packet, 0)
        assert decision.output_port != minimal_port
        assert decision.nonminimal_global or topo.port_kind(decision.output_port) is PortKind.LOCAL

    def test_misroute_not_considered_after_global_hop(self, tiny_params):
        sim = make_sim(tiny_params, "OLM")
        topo = sim.topology
        packet = remote_packet(topo, dst_group=2)
        packet.global_hops = 1
        packet.globally_misrouted = True
        dst_router = topo.node_router(packet.dst)
        # At a router of the destination group the packet must go minimally.
        router = sim.network.routers[topo.group_routers(2)[0]]
        if router.router_id == dst_router:
            router = sim.network.routers[topo.group_routers(2)[1]]
        decision = sim.routing.select_output(router, 4, 0, packet, 0)
        assert decision.output_port == topo.minimal_output_port(router.router_id, packet.dst)


class TestBaseTrigger:
    def _congest_counters(self, routing, router, port, amount):
        for _ in range(amount):
            routing.tracker.counters(router.router_id).increment(port)

    def test_threshold_exceeded_triggers_misroute(self, tiny_params):
        sim = make_sim(tiny_params, "Base")
        routing: BaseContentionRouting = sim.routing
        topo = sim.topology
        router = sim.network.routers[0]
        packet = remote_packet(topo)
        minimal_port = topo.minimal_output_port(0, packet.dst)
        threshold = routing.contention_threshold
        self._congest_counters(routing, router, minimal_port, threshold + 1)
        decision = routing.select_output(router, 0, 0, packet, 0)
        assert decision.output_port != minimal_port

    def test_threshold_not_exceeded_stays_minimal(self, tiny_params):
        sim = make_sim(tiny_params, "Base")
        routing: BaseContentionRouting = sim.routing
        topo = sim.topology
        router = sim.network.routers[0]
        packet = remote_packet(topo)
        minimal_port = topo.minimal_output_port(0, packet.dst)
        self._congest_counters(routing, router, minimal_port, routing.contention_threshold)
        decision = routing.select_output(router, 0, 0, packet, 0)
        assert decision.output_port == minimal_port

    def test_candidates_above_threshold_are_excluded(self, tiny_params):
        sim = make_sim(tiny_params, "Base")
        routing: BaseContentionRouting = sim.routing
        topo = sim.topology
        router = sim.network.routers[0]
        packet = remote_packet(topo)
        minimal_port = topo.minimal_output_port(0, packet.dst)
        threshold = routing.contention_threshold
        # Saturate every port's counter: no candidate is usable, stay minimal.
        for port in range(topo.router_radix):
            self._congest_counters(routing, router, port, threshold + 2)
        decision = routing.select_output(router, 0, 0, packet, 0)
        assert decision.output_port == minimal_port

    def test_proxy_grant_sets_must_misroute_flag(self, tiny_params):
        sim = make_sim(tiny_params, "Base")
        routing: BaseContentionRouting = sim.routing
        topo = sim.topology
        router = sim.network.routers[0]
        packet = remote_packet(topo)
        minimal_port = topo.minimal_output_port(0, packet.dst)
        from repro.routing.base import RoutingDecision

        decision = RoutingDecision(output_port=minimal_port, vc=0, set_must_misroute_global=True)
        routing.on_grant(router, 0, 0, packet, decision, cycle=0)
        assert packet.must_misroute_global

    def test_forced_global_decision_leaves_group(self, tiny_params):
        sim = make_sim(tiny_params, "Base")
        routing: BaseContentionRouting = sim.routing
        topo = sim.topology
        router = sim.network.routers[0]
        packet = remote_packet(topo)
        packet.must_misroute_global = True
        decision = routing.select_output(router, 2, 0, packet, 0)
        assert topo.port_kind(decision.output_port) is PortKind.GLOBAL


class TestHybridTrigger:
    def test_uses_its_own_thresholds(self, tiny_params):
        sim = make_sim(tiny_params, "Hybrid")
        routing: HybridContentionRouting = sim.routing
        assert routing.contention_threshold == tiny_params.hybrid_contention_threshold
        assert routing.congestion_threshold == tiny_params.hybrid_congestion_threshold

    def test_credit_trigger_fires_without_contention(self, tiny_params):
        sim = make_sim(tiny_params, "Hybrid")
        topo = sim.topology
        router = sim.network.routers[0]
        packet = remote_packet(topo)
        minimal_port = topo.minimal_output_port(0, packet.dst)
        out = router.output_ports[minimal_port]
        out.buffer.commit(out.buffer.capacity_phits)
        out.consume_credits(0, 4)
        decision = sim.routing.select_output(router, 0, 0, packet, 0)
        assert decision.output_port != minimal_port


class TestECtN:
    def test_partial_counters_follow_injection_traffic(self, tiny_params):
        sim = make_sim(tiny_params, "ECtN")
        routing: ECtNRouting = sim.routing
        topo = sim.topology
        router = sim.network.routers[0]
        packet = remote_packet(topo, dst_group=2)
        offset = routing.link_offset_for_destination(0, 2)

        routing.on_packet_head(router, 0, 0, packet, cycle=0)
        assert routing.partial[0][offset] == 1
        assert packet.ectn_offset == offset
        routing.on_packet_leave_input(router, 0, 0, packet, cycle=1)
        assert routing.partial[0][offset] == 0
        assert packet.ectn_offset is None

    def test_partial_counters_ignore_local_destinations(self, tiny_params):
        sim = make_sim(tiny_params, "ECtN")
        routing: ECtNRouting = sim.routing
        topo = sim.topology
        router = sim.network.routers[0]
        local_dst = topo.router_nodes(1)[0]  # same group
        packet = Packet(pid=0, src=0, dst=local_dst, size_phits=2, creation_cycle=0)
        routing.on_packet_head(router, 0, 0, packet, cycle=0)
        assert sum(routing.partial[0]) == 0

    def test_combined_counters_updated_on_broadcast_period(self, tiny_params):
        sim = make_sim(tiny_params, "ECtN")
        routing: ECtNRouting = sim.routing
        topo = sim.topology
        offset = routing.link_offset_for_destination(0, 2)
        routing.partial[0][offset] = 3
        routing.partial[1][offset] = 2
        # Not a broadcast cycle: combined stays stale.
        routing.post_cycle(sim.network, cycle=routing.params.ectn_update_period + 1)
        assert routing.combined[0][offset] == 0
        # Broadcast cycle: combined becomes the sum of partials in the group.
        routing.post_cycle(sim.network, cycle=2 * routing.params.ectn_update_period)
        assert routing.combined[0][offset] == 5

    def test_injection_misroute_uses_combined_counters(self, tiny_params):
        sim = make_sim(tiny_params, "ECtN")
        routing: ECtNRouting = sim.routing
        topo = sim.topology
        router = sim.network.routers[0]
        packet = remote_packet(topo, dst_group=2)
        offset = routing.link_offset_for_destination(0, 2)
        routing.combined[0][offset] = routing.combined_threshold + 1
        decision = routing.select_output(router, 0, 0, packet, 0)
        minimal_port = topo.minimal_output_port(0, packet.dst)
        # With only one global port per router in the tiny topology a
        # misroute may be impossible; with more it must avoid the minimal port.
        if topo.config.h > 1:
            assert decision.output_port != minimal_port

    def test_partial_underflow_detected(self, tiny_params):
        sim = make_sim(tiny_params, "ECtN")
        routing: ECtNRouting = sim.routing
        topo = sim.topology
        router = sim.network.routers[0]
        packet = remote_packet(topo, dst_group=2)
        packet.ectn_offset = routing.link_offset_for_destination(0, 2)
        with pytest.raises(RuntimeError):
            routing.on_packet_leave_input(router, 0, 0, packet, cycle=0)


class TestRegistry:
    def test_create_routing_known_names(self, tiny_params, tiny_topology, rng):
        from repro.routing import available_routings

        for name in available_routings():
            algo = create_routing(name, tiny_topology, tiny_params, rng)
            assert algo.name == name

    def test_create_routing_case_insensitive(self, tiny_params, tiny_topology, rng):
        assert create_routing("ectn", tiny_topology, tiny_params, rng).name == "ECtN"

    def test_create_routing_unknown_name(self, tiny_params, tiny_topology, rng):
        with pytest.raises(ValueError):
            create_routing("UGAL-G", tiny_topology, tiny_params, rng)


class TestRingEscapePolicy:
    """The torus in-transit policy: contention-triggered nonminimal ring
    direction choice, committed per traversal (see repro.routing.adaptive)."""

    @staticmethod
    def _torus_sim(routing="Base"):
        from repro.config.parameters import SimulationParameters, TorusConfig

        params = SimulationParameters.tiny(TorusConfig.tiny())
        return Simulator(params, routing, "UN", offered_load=0.0, seed=11)

    @staticmethod
    def _packet(topo, src_router, dst_router, pid=0):
        return Packet(
            pid=pid,
            src=topo.router_nodes(src_router)[0],
            dst=topo.router_nodes(dst_router)[0],
            size_phits=2,
            creation_cycle=0,
        )

    def test_escape_candidates_are_the_opposite_direction_port(self):
        from repro.routing.misrouting import compute_ring_escape_candidates

        sim = self._torus_sim()
        topo = sim.topology
        for port in topo.ring_ports:
            candidates = compute_ring_escape_candidates(topo, port)
            assert len(candidates) == 1
            assert candidates[0].kind is PortKind.LOCAL
            assert candidates[0].port == topo.opposite_ring_port(port)
            assert topo.opposite_ring_port(candidates[0].port) == port
        for port in topo.injection_ports:
            assert compute_ring_escape_candidates(topo, port) == []

    def test_no_escape_when_counters_cold(self):
        sim = self._torus_sim()
        topo = sim.topology
        router = sim.network.routers[0]
        packet = self._packet(topo, 0, topo.router_id((2, 0)))
        minimal_port = topo.minimal_output_port(0, packet.dst)
        decision = sim.routing.select_output(router, 0, 0, packet, cycle=0)
        assert decision.output_port == minimal_port
        assert not decision.nonminimal_local

    def test_escape_triggered_when_minimal_port_contended(self):
        sim = self._torus_sim()
        topo = sim.topology
        routing: BaseContentionRouting = sim.routing
        router = sim.network.routers[0]
        packet = self._packet(topo, 0, topo.router_id((2, 0)))
        minimal_port = topo.minimal_output_port(0, packet.dst)
        counts = routing.tracker.counters(0).counts
        counts[minimal_port] = routing.contention_threshold + 1
        decision = routing.select_output(router, 0, 0, packet, cycle=0)
        assert decision.output_port == topo.opposite_ring_port(minimal_port)
        assert decision.nonminimal_local
        # The escape stays on the leg-0 dateline classes (VC 0/1).
        assert decision.vc in (0, 1)

    def test_escape_suppressed_when_opposite_also_contended(self):
        sim = self._torus_sim()
        topo = sim.topology
        routing: BaseContentionRouting = sim.routing
        router = sim.network.routers[0]
        packet = self._packet(topo, 0, topo.router_id((2, 0)))
        minimal_port = topo.minimal_output_port(0, packet.dst)
        counts = routing.tracker.counters(0).counts
        counts[minimal_port] = routing.contention_threshold + 1
        counts[topo.opposite_ring_port(minimal_port)] = routing.contention_threshold
        decision = routing.select_output(router, 0, 0, packet, cycle=0)
        assert decision.output_port == minimal_port
        assert not decision.nonminimal_local

    def test_committed_direction_held_past_the_tie(self):
        """A traversal committed to the long way keeps its direction even
        where the shortest direction flips (re-evaluating could cross the
        dateline twice)."""
        sim = self._torus_sim()
        topo = sim.topology
        router = sim.network.routers[0]
        packet = self._packet(topo, 0, topo.router_id((2, 0)))
        minimal_port = topo.minimal_output_port(0, packet.dst)  # dim 0, plus (tie)
        dim, direction = topo.port_dimension(minimal_port)
        assert (dim, direction) == (0, +1)
        packet.ring_dim = 0
        packet.ring_dir = -1  # committed the other way around
        decision = sim.routing.select_output(router, 0, 0, packet, cycle=0)
        assert decision.output_port == topo.ring_port(0, -1)
        # Continuation hops carry no misroute flag: the escape was
        # accounted once, at the diverting hop.
        assert not decision.nonminimal_local

    def test_no_escape_mid_traversal_even_under_contention(self):
        sim = self._torus_sim()
        topo = sim.topology
        routing: BaseContentionRouting = sim.routing
        router = sim.network.routers[0]
        packet = self._packet(topo, 0, topo.router_id((2, 0)))
        minimal_port = topo.minimal_output_port(0, packet.dst)
        counts = routing.tracker.counters(0).counts
        counts[minimal_port] = routing.contention_threshold + 1
        packet.ring_dim, packet.ring_dir = topo.port_dimension(minimal_port)
        decision = routing.select_output(router, 0, 0, packet, cycle=0)
        assert decision.output_port == minimal_port
        assert not decision.nonminimal_local

    def test_commit_ring_hop_records_direction(self):
        sim = self._torus_sim()
        topo = sim.topology
        packet = self._packet(topo, 0, topo.router_id((2, 0)))
        assert packet.ring_dir == 0
        topo.commit_ring_hop(packet, 0, topo.ring_port(0, -1))
        assert (packet.ring_dim, packet.ring_dir) == (0, -1)
        # The minus-direction hop from coordinate 0 is the wrap (dateline).
        assert packet.ring_crossed


class TestButterflyGroupPolicy:
    """The MM+L policy on the flattened butterfly: rows are the groups,
    column links the global links, and the region gateway is always the
    router's own column port."""

    @staticmethod
    def _fb_sim(routing="Base"):
        from repro.config.parameters import FlattenedButterflyConfig, SimulationParameters

        params = SimulationParameters.tiny(FlattenedButterflyConfig.tiny())
        return Simulator(params, routing, "UN", offered_load=0.0, seed=11)

    def test_region_gateway_is_the_column_port(self):
        sim = self._fb_sim()
        topo = sim.topology
        for router in range(topo.num_routers):
            row = topo.router_region(router)
            for target in range(topo.num_regions):
                if target == row:
                    with pytest.raises(ValueError):
                        topo.region_gateway(router, target)
                    continue
                port, is_global = topo.region_gateway(router, target)
                assert is_global
                assert topo.port_kinds[port] is PortKind.GLOBAL
                assert topo.port_target_region(router, port) == target

    def test_global_candidates_avoid_source_and_destination_rows(self):
        sim = self._fb_sim()
        topo = sim.topology
        router = sim.network.routers[0]
        dst = topo.region_nodes(1)[0]
        packet = Packet(pid=0, src=0, dst=dst, size_phits=2, creation_cycle=0)
        minimal_port = topo.minimal_output_port(0, dst)
        candidates = global_misroute_candidates(
            topo, router, packet, minimal_port, allow_local_proxy=False
        )
        assert candidates, "a 3-row butterfly always has a third row to detour over"
        for cand in candidates:
            assert cand.kind is PortKind.GLOBAL
            assert cand.target_group not in (0, 1)

    def test_contention_escape_over_a_third_row(self):
        """Hot column counter at injection: Base diverts through another
        row's column link and commits the intermediate region."""
        sim = self._fb_sim()
        topo = sim.topology
        routing: BaseContentionRouting = sim.routing
        router = sim.network.routers[0]
        # Destination straight down the column: the minimal port is the
        # column (GLOBAL) link to row 1.
        dst_router = topo.router_id(0, 1)
        dst = topo.router_nodes(dst_router)[0]
        packet = Packet(pid=0, src=0, dst=dst, size_phits=2, creation_cycle=0)
        minimal_port = topo.minimal_output_port(0, dst)
        assert topo.port_kinds[minimal_port] is PortKind.GLOBAL
        counts = routing.tracker.counters(0).counts
        counts[minimal_port] = routing.contention_threshold + 1
        # Heat the row ports too, so the MM+L local-proxy candidates drop
        # out of the preferred set and the direct column escape is the
        # only admissible choice.
        for port in topo.row_ports:
            counts[port] = routing.contention_threshold
        decision = routing.select_output(router, 0, 0, packet, cycle=0)
        assert decision.nonminimal_global
        assert decision.set_intermediate_group == 2
        assert topo.port_target_region(0, decision.output_port) == 2
