"""Fuzz tests for the deadlock validators: accept *exactly* the safe inputs.

``validate_hop_sequences`` and ``validate_dateline_shapes`` are the
construction-time deadlock-freedom proofs; a false *reject* turns a valid
configuration into a crash, but a false *accept* silently ships a
deadlock-prone VC schedule.  These tests therefore compare the validators
against independent reference implementations over seeded-random inputs and
assert agreement in both directions — every accepted input is monotone and
every monotone input is accepted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing.deadlock import (
    BUFFER_CLASS_ORDER,
    validate_dateline_shapes,
    validate_hop_sequences,
    validate_updown_shapes,
)

LOCAL_VCS = 4
GLOBAL_VCS = 2
RING_VCS = 4
LINK_LEVELS = 3
UPDOWN_VCS = 2


# ------------------------------------------------------------------ references
def _reference_hop_classes(hops):
    """Independent re-derivation of the capped path-stage classes."""
    classes = []
    g = 0
    l_in_group = 0
    for kind in hops:
        if kind == "global":
            classes.append(("global", min(g, GLOBAL_VCS - 1)))
            g += 1
            l_in_group = 0
        else:
            l = min(l_in_group, 1)
            vc = l if g == 0 else 2 * g - 1 + l
            classes.append(("local", min(vc, LOCAL_VCS - 1)))
            l_in_group += 1
    return classes


def _reference_accepts_hops(hops) -> bool:
    ranks = [BUFFER_CLASS_ORDER.index(c) for c in _reference_hop_classes(hops)]
    return all(b > a for a, b in zip(ranks, ranks[1:]))


def _reference_accepts_shape(shape) -> bool:
    for leg, dim, crossed in shape:
        if leg < 0 or dim < 0 or crossed not in (0, 1):
            return False
        if 2 * leg + crossed >= RING_VCS:
            return False
    return all(b > a for a, b in zip(shape, shape[1:]))


def _validator_accepts_hops(hops) -> bool:
    try:
        validate_hop_sequences(
            [hops], local_vcs=LOCAL_VCS, global_vcs=GLOBAL_VCS
        )
    except ValueError:
        return False
    return True


def _validator_accepts_shape(shape) -> bool:
    try:
        validate_dateline_shapes([shape], ring_vcs=RING_VCS)
    except ValueError:
        return False
    return True


def _reference_accepts_updown(shape) -> bool:
    """Independent re-derivation of the up/down class-rank walk."""
    ranks = []
    for cls in shape:
        if not (isinstance(cls, tuple) and len(cls) == 2):
            return False
        direction, level = cls
        if direction not in (0, 1):
            return False
        if not 0 <= level < LINK_LEVELS:
            return False
        if direction >= UPDOWN_VCS:
            return False
        ranks.append(level if direction == 0 else 2 * LINK_LEVELS - 1 - level)
    return all(b > a for a, b in zip(ranks, ranks[1:]))


def _validator_accepts_updown(shape) -> bool:
    try:
        validate_updown_shapes(
            [shape], local_vcs=UPDOWN_VCS, link_levels=LINK_LEVELS
        )
    except ValueError:
        return False
    return True


# ----------------------------------------------------------------------- fuzz
class TestHopSequenceFuzz:
    def test_random_sequences_accepted_iff_monotone(self):
        rng = np.random.default_rng(2024)
        accepted = rejected = 0
        for _ in range(600):
            length = int(rng.integers(1, 8))
            hops = tuple(
                "global" if rng.integers(0, 2) else "local" for _ in range(length)
            )
            expected = _reference_accepts_hops(hops)
            assert _validator_accepts_hops(hops) == expected, hops
            accepted += expected
            rejected += not expected
        # The fuzz must actually exercise both outcomes.
        assert accepted > 50 and rejected > 50

    @pytest.mark.parametrize(
        "hops",
        [
            ("local", "local", "local"),        # L0 L1 L1: class repeats
            ("global", "global", "global"),     # G0 G1 G1: cap merges classes
            ("global", "local", "local", "local"),  # L1 L2 L2
            ("local", "global", "local", "global", "local", "global"),  # G1 G1
        ],
    )
    def test_known_false_accept_shapes_are_rejected(self, hops):
        """Sequences whose capped classes merge must be rejected — catching
        false accepts, not just false rejects."""
        assert not _validator_accepts_hops(hops)

    @pytest.mark.parametrize(
        "hops",
        [
            ("local",),
            ("local", "global", "local"),
            ("local", "global", "local", "local", "global", "local"),
        ],
    )
    def test_known_safe_shapes_are_accepted(self, hops):
        assert _validator_accepts_hops(hops)


class TestDatelineShapeFuzz:
    def test_random_shapes_accepted_iff_lexicographically_monotone(self):
        rng = np.random.default_rng(777)
        accepted = rejected = 0
        for _ in range(600):
            length = int(rng.integers(1, 7))
            shape = tuple(
                (int(rng.integers(0, 3)), int(rng.integers(0, 3)), int(rng.integers(0, 2)))
                for _ in range(length)
            )
            expected = _reference_accepts_shape(shape)
            assert _validator_accepts_shape(shape) == expected, shape
            accepted += expected
            rejected += not expected
        assert accepted > 20 and rejected > 50

    def test_sorted_random_shapes_are_accepted(self):
        """Bias the fuzz towards the accept side: deduplicated sorted class
        sets are exactly the monotone shapes and must all pass."""
        rng = np.random.default_rng(31337)
        for _ in range(200):
            classes = {
                (int(rng.integers(0, 2)), int(rng.integers(0, 3)), int(rng.integers(0, 2)))
                for _ in range(int(rng.integers(1, 7)))
            }
            shape = tuple(sorted(classes))
            assert _validator_accepts_shape(shape), shape

    @pytest.mark.parametrize(
        "shape",
        [
            ((0, 0, 1), (0, 0, 0)),            # crossed falls inside a ring
            ((0, 1, 0), (0, 0, 0)),            # dimension order violated
            ((1, 0, 0), (0, 1, 0)),            # later leg before earlier leg
            ((0, 0, 0), (0, 0, 0)),            # class repeats (not strict)
        ],
    )
    def test_known_false_accepts_are_rejected(self, shape):
        assert not _validator_accepts_shape(shape)

    @pytest.mark.parametrize(
        "shape",
        [
            ((0, 0, 0), (0, 0, 1), (0, 1, 0), (0, 1, 1)),
            ((0, 0, 0), (1, 0, 0)),
        ],
    )
    def test_known_safe_shapes_are_accepted(self, shape):
        assert _validator_accepts_shape(shape)

    def test_malformed_classes_always_rejected(self):
        for shape in [
            ((0, 0, 2),),
            ((-1, 0, 0),),
            ((0, -2, 1),),
        ]:
            assert not _validator_accepts_shape(shape)

    def test_vc_budget_is_enforced_not_capped(self):
        """A class needing ring VC >= budget must raise: capping would merge
        it with a lower class and silently void the dateline argument."""
        assert not _validator_accepts_shape(((2, 0, 0),))  # VC 4 of 4
        try:
            validate_dateline_shapes([((2, 0, 0),)], ring_vcs=5)
        except ValueError:  # pragma: no cover - must not happen
            pytest.fail("shape within a larger budget must be accepted")


class TestUpdownShapeFuzz:
    """The up/down validator (fat tree) accepts exactly the monotone walks."""

    def test_random_shapes_accepted_iff_ranks_ascend(self):
        rng = np.random.default_rng(4242)
        accepted = rejected = 0
        for _ in range(600):
            length = int(rng.integers(1, 6))
            shape = tuple(
                (int(rng.integers(0, 2)), int(rng.integers(0, LINK_LEVELS)))
                for _ in range(length)
            )
            expected = _reference_accepts_updown(shape)
            assert _validator_accepts_updown(shape) == expected, shape
            accepted += expected
            rejected += not expected
        assert accepted > 50 and rejected > 50

    @pytest.mark.parametrize(
        "shape",
        [
            ((1, 0), (0, 0)),                  # climbing after the turn
            ((0, 0), (1, 0), (0, 1)),          # second turn up
            ((0, 0), (0, 0)),                  # class repeats (not strict)
            ((0, 1), (0, 0)),                  # descending up-leg levels
            ((1, 0), (1, 1)),                  # down leg climbing levels
        ],
    )
    def test_known_false_accepts_are_rejected(self, shape):
        """A walk that revisits or reorders classes could close a cycle in
        the channel dependency graph — it must be rejected."""
        assert not _validator_accepts_updown(shape)

    @pytest.mark.parametrize(
        "shape",
        [
            ((0, 0), (1, 0)),
            ((0, 0), (0, 1), (0, 2), (1, 2), (1, 1), (1, 0)),
            ((1, 2), (1, 1), (1, 0)),          # pure descent (Valiant leg 2)
        ],
    )
    def test_known_safe_shapes_are_accepted(self, shape):
        assert _validator_accepts_updown(shape)

    def test_malformed_classes_always_rejected(self):
        for shape in [
            ((0, 0, 0),),                      # wrong arity
            ((2, 0),),                         # direction neither up nor down
            ((0, LINK_LEVELS),),               # level beyond the tree
            ((0, -1),),
        ]:
            assert not _validator_accepts_updown(shape)

    def test_vc_budget_is_enforced(self):
        """Down hops need the second local VC; a one-VC budget must raise
        rather than fold both directions onto VC 0."""
        with pytest.raises(ValueError, match="not deadlock-free"):
            validate_updown_shapes(
                [((0, 0), (1, 0))], local_vcs=1, link_levels=LINK_LEVELS
            )

    def test_path_model_with_invalid_shape_rejected_at_construction(self):
        """End to end through validate_path_model: a fat-tree model whose
        declared shapes climb after the turn (a second up leg) must be
        rejected — construction-time proof, no dateline machinery."""
        import dataclasses

        from repro.routing.deadlock import validate_path_model
        from repro.topology.registry import create_topology, topology_preset

        model = create_topology(topology_preset("fat_tree", "tiny")).path_model
        validate_path_model(
            model, local_vcs=4, global_vcs=2,
            include_valiant=True, include_adaptive=True,
        )
        broken = dataclasses.replace(
            model,
            updown_minimal_shapes=(((0, 0), (1, 1), (0, 1)),),
        )
        with pytest.raises(ValueError, match="ascending"):
            validate_path_model(
                broken, local_vcs=4, global_vcs=2,
                include_valiant=True, include_adaptive=True,
            )
        # Adaptive validation without the multipath capability is a
        # contradiction the validator must also surface.
        no_multipath = dataclasses.replace(
            model, supports_uplink_multipath=False
        )
        with pytest.raises(ValueError, match="no uplink multipath"):
            validate_path_model(
                no_multipath, local_vcs=4, global_vcs=2,
                include_valiant=True, include_adaptive=True,
            )


class TestExtendedRingBounds:
    """The extension for the nonminimal ring escape: traversal bounds."""

    def test_traversal_shorter_than_ring_accepted(self):
        validate_dateline_shapes(
            [((0, 0, 0), (0, 0, 1))],
            ring_vcs=RING_VCS,
            ring_lengths=(4, 4),
            max_ring_hops=(3, 3),
        )

    def test_traversal_covering_whole_ring_rejected(self):
        with pytest.raises(ValueError, match="whole ring"):
            validate_dateline_shapes(
                [((0, 0, 0),)],
                ring_vcs=RING_VCS,
                ring_lengths=(4, 4),
                max_ring_hops=(4, 3),
            )

    def test_undeclared_dimension_rejected(self):
        with pytest.raises(ValueError, match="dimension"):
            validate_dateline_shapes(
                [((0, 2, 0),)],
                ring_vcs=RING_VCS,
                ring_lengths=(4, 4),
                max_ring_hops=(3, 3),
            )

    def test_path_model_with_whole_ring_traversal_rejected(self):
        """End to end through validate_path_model: a policy declaring that
        an escaped traversal may cover a whole ring (e.g. one allowed to
        flip direction mid-ring) must be rejected at construction — the
        bound is a falsifiable declaration, not derived from the lengths."""
        import dataclasses

        from repro.routing.deadlock import validate_path_model
        from repro.topology.registry import create_topology, topology_preset

        model = create_topology(topology_preset("torus", "tiny")).path_model
        validate_path_model(
            model, local_vcs=4, global_vcs=2,
            include_valiant=True, include_adaptive=True,
        )
        broken = dataclasses.replace(
            model,
            dateline_adaptive_max_ring_hops=tuple(model.ring_lengths),
        )
        with pytest.raises(ValueError, match="whole ring"):
            validate_path_model(
                broken, local_vcs=4, global_vcs=2,
                include_valiant=True, include_adaptive=True,
            )
