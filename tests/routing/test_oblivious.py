"""Tests for the oblivious mechanisms: MIN and VAL."""

import numpy as np
import pytest

from repro.config.parameters import SimulationParameters
from repro.network.packet import Packet, RoutingPhase
from repro.routing import create_routing
from repro.simulation.simulator import Simulator
from repro.topology.base import PortKind


@pytest.fixture
def sim_min(tiny_params):
    return Simulator(tiny_params, "MIN", "UN", offered_load=0.0, seed=7)


@pytest.fixture
def sim_val(tiny_params):
    return Simulator(tiny_params, "VAL", "UN", offered_load=0.0, seed=7)


def make_packet(src, dst, size=2):
    return Packet(pid=0, src=src, dst=dst, size_phits=size, creation_cycle=0)


class TestMinimalRouting:
    def test_ejection_at_destination_router(self, sim_min):
        topo = sim_min.topology
        packet = make_packet(0, 1)
        router = sim_min.network.routers[topo.node_router(1)]
        decision = sim_min.routing.select_output(router, 0, 0, packet, 0)
        assert topo.port_kind(decision.output_port) is PortKind.INJECTION
        assert decision.output_port == topo.node_port(1)

    def test_minimal_decisions_follow_minimal_path(self, sim_min):
        topo = sim_min.topology
        dst = topo.group_nodes(2)[0]
        packet = make_packet(0, dst)
        rid = 0
        hops = 0
        while rid != topo.node_router(dst):
            router = sim_min.network.routers[rid]
            decision = sim_min.routing.select_output(router, 0, 0, packet, 0)
            assert decision.output_port == topo.minimal_output_port(rid, dst)
            assert not decision.nonminimal_global and not decision.nonminimal_local
            rid = topo.neighbor(rid, decision.output_port)[0]
            packet.record_hop(is_global=topo.port_kind(decision.output_port) is PortKind.GLOBAL)
            hops += 1
            assert hops <= 3

    def test_min_uses_table1_vc_counts(self, sim_min, tiny_params):
        assert sim_min.routing.num_vcs(PortKind.LOCAL) == tiny_params.local_port_vcs
        assert sim_min.routing.num_vcs(PortKind.GLOBAL) == tiny_params.global_port_vcs


class TestValiantRouting:
    def test_needs_extra_local_vc(self, sim_val, tiny_params):
        assert sim_val.routing.needs_extra_local_vc
        assert sim_val.routing.num_vcs(PortKind.LOCAL) == tiny_params.local_port_vcs_oblivious

    def test_intermediate_router_never_in_source_group(self, sim_val):
        topo = sim_val.topology
        routing = sim_val.routing
        for source_router in range(topo.num_routers):
            src_group = topo.router_group(source_router)
            for _ in range(20):
                intermediate = routing.random_intermediate_router(source_router)
                assert 0 <= intermediate < topo.num_routers
                assert topo.router_group(intermediate) != src_group

    def test_on_inject_sets_valiant_state(self, sim_val):
        topo = sim_val.topology
        packet = make_packet(0, topo.group_nodes(2)[0])
        router = sim_val.network.routers[0]
        sim_val.routing.on_inject(router, packet, cycle=0)
        assert packet.phase is RoutingPhase.TO_INTERMEDIATE
        assert packet.valiant_router is not None
        assert packet.source_group == 0

    def test_arrival_at_intermediate_switches_to_minimal(self, sim_val):
        topo = sim_val.topology
        packet = make_packet(0, topo.group_nodes(2)[0])
        router = sim_val.network.routers[0]
        sim_val.routing.on_inject(router, packet, cycle=0)
        intermediate = packet.valiant_router
        sim_val.routing.on_packet_arrival(
            sim_val.network.routers[intermediate], 2, 0, packet, cycle=10
        )
        assert packet.phase is RoutingPhase.MINIMAL
        assert packet.valiant_router is None

    def test_global_hops_towards_wrong_group_flagged_nonminimal(self, sim_val):
        topo = sim_val.topology
        dst = topo.group_nodes(3)[0]
        packet = make_packet(0, dst)
        router = sim_val.network.routers[0]
        sim_val.routing.on_inject(router, packet, cycle=0)
        # Walk the decision chain until the first global hop and check the flag.
        rid = 0
        for _ in range(4):
            router = sim_val.network.routers[rid]
            decision = sim_val.routing.select_output(router, 0, 0, packet, 0)
            kind = topo.port_kind(decision.output_port)
            if kind is PortKind.GLOBAL:
                target = topo.global_port_target_group(rid, decision.output_port)
                assert decision.nonminimal_global == (target != topo.node_group(dst))
                break
            rid = topo.neighbor(rid, decision.output_port)[0]
            packet.record_hop(is_global=False)
        else:  # pragma: no cover - structural guard
            pytest.fail("no global hop found on the Valiant path prefix")

    def test_valiant_delivers_under_adversarial_traffic(self, tiny_params):
        sim = Simulator(tiny_params, "VAL", "ADV+1", offered_load=0.15, seed=2)
        result = sim.run_steady_state(warmup_cycles=150, measure_cycles=300)
        assert result.delivered_packets > 0
        assert result.accepted_load == pytest.approx(0.15, abs=0.05)
