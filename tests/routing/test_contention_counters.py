"""Tests for the contention counters and their maintenance protocol."""

import pytest

from repro.network.packet import Packet
from repro.routing.contention.counters import ContentionCounters, ContentionTracker
from repro.simulation.simulator import Simulator
from repro.topology.dragonfly import DragonflyTopology


class TestContentionCounters:
    def test_increment_decrement(self):
        counters = ContentionCounters(5)
        counters.increment(2)
        counters.increment(2)
        counters.increment(4)
        assert counters.value(2) == 2
        assert counters.value(4) == 1
        assert counters.total() == 3
        counters.decrement(2)
        assert counters.value(2) == 1
        assert counters.snapshot() == [0, 0, 1, 0, 1]

    def test_underflow_detected(self):
        counters = ContentionCounters(2)
        with pytest.raises(RuntimeError):
            counters.decrement(0)

    def test_rejects_empty_router(self):
        with pytest.raises(ValueError):
            ContentionCounters(0)


class TestContentionTracker:
    def test_head_increments_minimal_port_counter(self, tiny_params, tiny_topology):
        sim = Simulator(tiny_params, "Base", "UN", offered_load=0.0, seed=1)
        tracker: ContentionTracker = sim.routing.tracker
        topo: DragonflyTopology = sim.topology
        router = sim.network.routers[0]
        dst = topo.group_nodes(2)[0]
        packet = Packet(pid=0, src=0, dst=dst, size_phits=2, creation_cycle=0)
        minimal_port = topo.minimal_output_port(0, dst)

        tracker.on_head(router, packet)
        assert tracker.value(0, minimal_port) == 1
        assert packet.contention_port == minimal_port
        # A second head event for the same packet must not double count.
        tracker.on_head(router, packet)
        assert tracker.value(0, minimal_port) == 1

        tracker.on_leave(router, packet)
        assert tracker.value(0, minimal_port) == 0
        assert packet.contention_port is None
        # Leaving twice is a no-op.
        tracker.on_leave(router, packet)
        assert tracker.value(0, minimal_port) == 0

    def test_counters_return_to_zero_after_drain(self, tiny_params):
        """Counter conservation: after all traffic drains, every counter is 0.

        This exercises the full increment-at-head / decrement-at-leave
        protocol of Section III-B across a real simulation.
        """
        sim = Simulator(tiny_params, "Base", "UN", offered_load=0.3, seed=4)
        sim.run_cycles(300)
        # Stop injecting and let the network drain completely.
        sim.traffic.set_offered_load(0.0)
        sim.run_cycles(1500)
        assert sim.engine.total_buffered_packets() == 0
        tracker = sim.routing.tracker
        for rid in range(sim.topology.num_routers):
            assert tracker.counters(rid).total() == 0

    def test_counters_track_adversarial_hotspot(self, tiny_params):
        """Under ADV+1 the hot output ports accumulate visible contention."""
        sim = Simulator(tiny_params, "Base", "ADV+1", offered_load=0.4, seed=4)
        sim.run_cycles(400)
        tracker = sim.routing.tracker
        topo = sim.topology
        hot_values = []
        for group in range(topo.num_groups):
            dst_group = (group + 1) % topo.num_groups
            gw_router, gw_port = topo.global_link_endpoint(group, dst_group)
            hot_values.append(tracker.value(gw_router, gw_port))
        # At 0.4 offered load the single minimal global link of each group is
        # heavily demanded; at least some gateways must show contention.
        assert max(hot_values) >= 1
