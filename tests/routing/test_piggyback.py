"""Tests for PiggyBacking (PB) source-adaptive routing."""

import pytest

from repro.network.packet import Packet, RoutingPhase
from repro.routing.piggyback import PiggybackRouting
from repro.simulation.simulator import Simulator


@pytest.fixture
def sim(tiny_params):
    return Simulator(tiny_params, "PB", "UN", offered_load=0.0, seed=9)


def remote_packet(topology, dst_group=2):
    dst = topology.group_nodes(dst_group)[0]
    return Packet(pid=0, src=0, dst=dst, size_phits=2, creation_cycle=0)


class TestSaturationFlags:
    def test_flags_start_clear(self, sim):
        routing: PiggybackRouting = sim.routing
        for group in range(sim.topology.num_groups):
            assert not any(routing.saturation_flags(group))

    def test_flag_set_after_notification_delay(self, sim):
        routing: PiggybackRouting = sim.routing
        topo = sim.topology
        # Saturate the global output of the gateway router of group 0.
        gw_router, gw_port = topo.global_link_endpoint(0, 1)
        out = sim.network.routers[gw_router].output_ports[gw_port]
        out.consume_credits(0, out.max_credits[0])
        offset = routing.global_link_offset(gw_router, gw_port)

        routing.post_cycle(sim.network, cycle=0)
        # The ECN notification needs one local-link latency to spread.
        for cycle in range(1, routing.notification_delay + 1):
            routing.post_cycle(sim.network, cycle=cycle)
        assert routing.is_saturated(0, offset)

    def test_flag_clears_when_occupancy_drops(self, sim):
        routing: PiggybackRouting = sim.routing
        topo = sim.topology
        gw_router, gw_port = topo.global_link_endpoint(0, 1)
        out = sim.network.routers[gw_router].output_ports[gw_port]
        out.consume_credits(0, out.max_credits[0])
        offset = routing.global_link_offset(gw_router, gw_port)
        for cycle in range(routing.notification_delay + 1):
            routing.post_cycle(sim.network, cycle=cycle)
        assert routing.is_saturated(0, offset)
        # Return the credits (through the credit-return protocol, so the
        # port's occupancy aggregate stays consistent) and keep broadcasting:
        # the flag must clear.
        restore_cycle = routing.notification_delay + 1
        out.schedule_credit_return(restore_cycle, 0, out.max_credits[0] - out.credits[0])
        out.apply_credit_returns(restore_cycle)
        for cycle in range(routing.notification_delay + 1, 3 * routing.notification_delay + 2):
            routing.post_cycle(sim.network, cycle=cycle)
        assert not routing.is_saturated(0, offset)


class TestSourceDecision:
    def test_minimal_chosen_when_uncongested(self, sim):
        packet = remote_packet(sim.topology)
        sim.routing.on_inject(sim.network.routers[0], packet, cycle=0)
        assert packet.phase is RoutingPhase.MINIMAL
        assert packet.valiant_router is None

    def test_valiant_chosen_when_minimal_global_link_saturated(self, sim):
        routing: PiggybackRouting = sim.routing
        topo = sim.topology
        packet = remote_packet(topo, dst_group=2)
        gw_router, gw_port = topo.global_link_endpoint(0, 2)
        offset = routing.global_link_offset(gw_router, gw_port)
        routing._flags[0][offset] = True
        routing.on_inject(sim.network.routers[0], packet, cycle=0)
        assert packet.phase is RoutingPhase.TO_INTERMEDIATE
        assert packet.valiant_router is not None
        assert topo.router_group(packet.valiant_router) != 0

    def test_intra_group_traffic_never_diverted(self, sim):
        topo = sim.topology
        dst = topo.router_nodes(1)[0]
        packet = Packet(pid=0, src=0, dst=dst, size_phits=2, creation_cycle=0)
        sim.routing.on_inject(sim.network.routers[0], packet, cycle=0)
        assert packet.phase is RoutingPhase.MINIMAL

    def test_ugal_comparison_prefers_valiant_when_minimal_queue_long(self, sim):
        routing: PiggybackRouting = sim.routing
        topo = sim.topology
        packet = remote_packet(topo, dst_group=2)
        router = sim.network.routers[0]
        minimal_port = topo.minimal_output_port(0, packet.dst)
        out = router.output_ports[minimal_port]
        # Build a long minimal queue estimate via consumed credits.
        out.consume_credits(0, out.max_credits[0])
        out.consume_credits(1, out.max_credits[1] // 2)
        decisions = set()
        for _ in range(10):
            p = remote_packet(topo, dst_group=2)
            routing.on_inject(router, p, cycle=0)
            decisions.add(p.phase)
        assert RoutingPhase.TO_INTERMEDIATE in decisions

    def test_source_routing_is_oblivious_in_transit(self, sim):
        """Once PB picks Valiant at the source, in-transit hops never change it."""
        topo = sim.topology
        packet = remote_packet(topo, dst_group=2)
        packet.valiant_router = topo.group_routers(3)[0]
        packet.phase = RoutingPhase.TO_INTERMEDIATE
        rid = 0
        hops = 0
        while rid != packet.valiant_router and hops < 4:
            router = sim.network.routers[rid]
            decision = sim.routing.select_output(router, 0, 0, packet, 0)
            rid = topo.neighbor(rid, decision.output_port)[0]
            packet.record_hop(
                is_global=topo.port_kind(decision.output_port).value == "global"
            )
            hops += 1
        assert rid == packet.valiant_router
