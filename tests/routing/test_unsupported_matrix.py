"""The (mechanism, topology) probe matrix has no silent third state.

Every pair in the registry cross product either *runs* (the constructor
succeeds and the pair shows up in :func:`supported_routings`) or *raises*
:class:`UnsupportedTopologyError` built through ``for_mechanism`` — naming
the rejected topology by its registry name and suggesting a nearest
alternative that genuinely works there.  Any other exception, or a
constructed mechanism missing from the probe matrix, fails these tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.parameters import SimulationParameters
from repro.experiments.cross_topology import supported_routings
from repro.routing import (
    ROUTING_REGISTRY,
    UnsupportedTopologyError,
    create_routing,
)
from repro.topology.registry import create_topology, topology_preset

#: The expected support matrix after the in-transit generalization.  This is
#: intentionally a literal: if a registry change flips a cell, the test must
#: force a conscious decision (and a docs/matrix update), not auto-adapt.
EXPECTED_MATRIX = {
    "dragonfly": ["MIN", "VAL", "UGAL", "PB", "OLM", "Base", "Hybrid", "ECtN"],
    "flattened_butterfly": ["MIN", "VAL", "UGAL", "OLM", "Base", "Hybrid"],
    "full_mesh": ["MIN", "VAL", "UGAL"],
    "torus": ["MIN", "VAL", "UGAL", "OLM", "Base", "Hybrid"],
    "fat_tree": ["MIN", "VAL", "UGAL", "OLM", "Base", "Hybrid"],
}


def _construct(topology_name: str, routing: str):
    topo = create_topology(topology_preset(topology_name, "tiny"))
    params = SimulationParameters.tiny(topo.config)
    return create_routing(routing, topo, params, np.random.default_rng(0))


class TestProbeMatrix:
    def test_matrix_matches_expectation(self, every_topology):
        assert supported_routings(every_topology) == EXPECTED_MATRIX[every_topology]

    def test_every_pair_runs_or_raises_for_mechanism(
        self, every_topology, every_routing
    ):
        """Cross product: construction succeeds exactly for the supported
        pairs; refusals carry the registry topology name and a real
        nearest-alternative suggestion."""
        supported = supported_routings(every_topology)
        try:
            routing = _construct(every_topology, every_routing)
        except UnsupportedTopologyError as exc:
            message = str(exc)
            assert every_routing not in supported
            # for_mechanism contract: mechanism + registry topology name...
            assert every_routing in message
            assert every_topology in message
            # ...and a nearest-alternative suggestion that actually holds:
            # at least one mechanism named after the marker must construct
            # on this topology.
            marker = "Nearest supported alternative:"
            assert marker in message
            suggestion = message.split(marker, 1)[1]
            alternatives = [
                name for name in ROUTING_REGISTRY if name in suggestion
            ]
            assert alternatives, f"no mechanism named in: {suggestion!r}"
            real = [name for name in alternatives if name in supported]
            assert real, (
                f"{every_routing} on {every_topology} suggests only "
                f"unsupported alternatives: {alternatives}"
            )
        else:
            assert every_routing in supported
            # The probe and the constructor must agree on identity too.
            assert routing.name.lower() == every_routing.lower()

    def test_probe_never_swallows_other_errors(self, monkeypatch):
        """supported_routings must only catch the capability refusal; a
        genuine construction bug has to propagate, not read as
        'unsupported'."""
        from repro.routing import minimal

        def boom(self, topology, params, rng):
            raise RuntimeError("construction bug")

        monkeypatch.setattr(minimal.MinimalRouting, "__init__", boom)
        with pytest.raises(RuntimeError, match="construction bug"):
            supported_routings("dragonfly", ["MIN"])
