"""Tests for the VC assignment / deadlock-avoidance policy."""

import pytest

from repro.network.packet import Packet
from repro.routing.deadlock import (
    VCAssignmentPolicy,
    buffer_class_order,
    class_rank,
    path_buffer_classes,
)
from repro.topology.base import PortKind


@pytest.fixture
def policy():
    return VCAssignmentPolicy(local_vcs=4, global_vcs=2, injection_vcs=3)


def make_packet(global_hops=0, local_in_group=0):
    p = Packet(pid=0, src=0, dst=1, size_phits=4, creation_cycle=0)
    p.global_hops = global_hops
    p.local_hops_in_group = local_in_group
    return p


class TestVCAssignment:
    def test_source_group_local_hops(self, policy):
        assert policy.vc_for_hop(make_packet(0, 0), PortKind.LOCAL) == 0
        assert policy.vc_for_hop(make_packet(0, 1), PortKind.LOCAL) == 1

    def test_intermediate_group_local_hops(self, policy):
        assert policy.vc_for_hop(make_packet(1, 0), PortKind.LOCAL) == 1
        assert policy.vc_for_hop(make_packet(1, 1), PortKind.LOCAL) == 2

    def test_destination_group_after_misroute(self, policy):
        assert policy.vc_for_hop(make_packet(2, 0), PortKind.LOCAL) == 3

    def test_global_hops(self, policy):
        assert policy.vc_for_hop(make_packet(0, 0), PortKind.GLOBAL) == 0
        assert policy.vc_for_hop(make_packet(1, 0), PortKind.GLOBAL) == 1

    def test_injection_always_vc0(self, policy):
        assert policy.vc_for_hop(make_packet(1, 1), PortKind.INJECTION) == 0

    def test_vc_capped_by_available_vcs(self):
        small = VCAssignmentPolicy(local_vcs=3, global_vcs=2, injection_vcs=3)
        assert small.vc_for_hop(make_packet(2, 1), PortKind.LOCAL) == 2

    def test_vc_for_stage_matches_vc_for_hop(self, policy):
        for g in range(3):
            for l in range(3):
                assert policy.vc_for_stage(g, l, PortKind.LOCAL) == policy.vc_for_hop(
                    make_packet(g, l), PortKind.LOCAL
                )

    def test_max_vcs(self, policy):
        assert policy.max_vcs(PortKind.LOCAL) == 4
        assert policy.max_vcs(PortKind.GLOBAL) == 2
        assert policy.max_vcs(PortKind.INJECTION) == 3

    def test_rejects_zero_vcs(self):
        with pytest.raises(ValueError):
            VCAssignmentPolicy(local_vcs=0, global_vcs=1, injection_vcs=1)


#: Every path shape the routing mechanisms may produce, as hop-kind strings.
ALLOWED_PATHS = [
    # minimal paths
    [],
    ["local"],
    ["global"],
    ["local", "global"],
    ["global", "local"],
    ["local", "global", "local"],
    # minimal with a local misroute at the destination group
    ["local", "global", "local", "local"],
    ["global", "local", "local"],
    # intra-group local misroute
    ["local", "local"],
    # MM+L global misroute (with and without the local proxy hop, with and
    # without local misrouting in the intermediate group)
    ["global", "local", "global", "local"],
    ["local", "global", "local", "global", "local"],
    ["local", "global", "local", "local", "global", "local"],
    ["global", "local", "local", "global", "local"],
    # Valiant through an intermediate router in another group
    ["local", "global", "local", "local", "global", "local"],
]


class TestBufferClassOrdering:
    def test_order_definition(self):
        order = buffer_class_order()
        assert order[0] == ("local", 0)
        assert order[-1] == ("local", 3)
        assert class_rank("global", 0) < class_rank("local", 1)
        assert class_rank("local", 2) < class_rank("global", 1)

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            class_rank("local", 9)

    @pytest.mark.parametrize("path", ALLOWED_PATHS, ids=lambda p: "-".join(p) or "ejection-only")
    def test_allowed_paths_visit_strictly_increasing_classes(self, path):
        classes = path_buffer_classes(path)
        ranks = [class_rank(kind, vc) for kind, vc in classes]
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == len(ranks), "buffer classes must be strictly increasing"

    def test_path_buffer_classes_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            path_buffer_classes(["optical"])
