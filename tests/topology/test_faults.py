"""Unit tests for the link-fault model and runtime (repro.topology.faults)."""

from collections import namedtuple

import numpy as np
import pytest

from repro.topology.faults import (
    NO_FAULT_EVENT,
    DegradedLink,
    FaultEvent,
    FaultModel,
    FaultRuntime,
    FaultSchedule,
    NetworkPartitionError,
)


def _rng(seed=7):
    return np.random.default_rng(seed)


def _some_link(topology, rid=0):
    """First router-to-router link out of ``rid``."""
    for port in range(topology.router_radix):
        if topology.neighbor(rid, port) is not None:
            return (rid, port)
    raise AssertionError("router has no links")


def _isolate_links(topology, rid):
    """Every link touching ``rid`` (failing them all isolates the router)."""
    return tuple(
        (rid, port)
        for port in range(topology.router_radix)
        if topology.neighbor(rid, port) is not None
    )


_Cand = namedtuple("_Cand", "port")


class TestDegradedLink:
    def test_rejects_bad_factors(self):
        with pytest.raises(ValueError):
            DegradedLink(bandwidth_factor=0)
        with pytest.raises(ValueError):
            DegradedLink(latency_factor=0)
        with pytest.raises(ValueError):
            DegradedLink(contention_bias=-1)

    def test_bias_defaults_from_physical_factors(self):
        assert DegradedLink().bias_packets == 0
        assert DegradedLink(bandwidth_factor=2).bias_packets == 2
        assert DegradedLink(bandwidth_factor=2, latency_factor=3).bias_packets == 4
        assert DegradedLink(bandwidth_factor=4, contention_bias=1).bias_packets == 1


class TestFaultSchedule:
    def test_events_sorted_by_cycle(self):
        sched = FaultSchedule(
            events=(
                FaultEvent(300, (0, 1), "repair"),
                FaultEvent(100, (0, 1), "fail"),
            )
        )
        assert [e.cycle for e in sched.events] == [100, 300]

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSchedule(events=(FaultEvent(10, (0, 1), "flaky"),))

    def test_rejects_negative_cycle(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultSchedule(events=(FaultEvent(-1, (0, 1), "fail"),))


class TestFaultModel:
    def test_trivial_model(self):
        assert FaultModel().is_trivial
        assert not FaultModel(link_failure_percent=1.0).is_trivial
        assert not FaultModel(failed_links=((0, 1),)).is_trivial
        assert not FaultModel(
            degraded_links={(0, 1): DegradedLink(latency_factor=2)}
        ).is_trivial

    def test_degraded_links_accepts_dict(self):
        deg = DegradedLink(bandwidth_factor=2)
        model = FaultModel(degraded_links={(0, 1): deg})
        assert model.degraded_links == (((0, 1), deg),)

    def test_rejects_bad_percent(self):
        with pytest.raises(ValueError):
            FaultModel(link_failure_percent=101.0)

    def test_is_picklable(self):
        import pickle

        model = FaultModel(
            link_failure_percent=5.0,
            degraded_links={(0, 1): DegradedLink(latency_factor=2)},
            schedule=FaultSchedule(events=(FaultEvent(10, (0, 1), "fail"),)),
        )
        assert pickle.loads(pickle.dumps(model)) == model


class TestFaultRuntime:
    def test_explicit_failure_marks_both_endpoints(self, tiny_topology):
        link = _some_link(tiny_topology)
        runtime = FaultRuntime(
            tiny_topology, FaultModel(failed_links=(link,)), _rng()
        )
        assert runtime.num_failed_links == 1
        assert link[1] in runtime.failed_ports[link[0]]
        nbr_router, nbr_port = tiny_topology.neighbor(*link)
        assert nbr_port in runtime.failed_ports[nbr_router]

    def test_either_endpoint_names_the_same_link(self, tiny_topology):
        link = _some_link(tiny_topology)
        other_end = tiny_topology.neighbor(*link)
        a = FaultRuntime(tiny_topology, FaultModel(failed_links=(link,)), _rng())
        b = FaultRuntime(
            tiny_topology, FaultModel(failed_links=(other_end,)), _rng()
        )
        assert a.failed_links == b.failed_links

    def test_rejects_non_link(self, tiny_topology):
        # Port 0 on a Dragonfly router is an injection port: not a link.
        with pytest.raises(ValueError, match="does not name"):
            FaultRuntime(
                tiny_topology, FaultModel(failed_links=((0, 0),)), _rng()
            )

    def test_percent_sampling_is_deterministic(self, tiny_topology):
        model = FaultModel(link_failure_percent=20.0)
        a = FaultRuntime(tiny_topology, model, _rng(3))
        b = FaultRuntime(tiny_topology, model, _rng(3))
        c = FaultRuntime(tiny_topology, model, _rng(4))
        assert a.failed_links == b.failed_links
        expected = int(round(0.2 * a.num_links))
        assert a.num_failed_links == expected
        # A different stream draws a different set (overwhelmingly likely
        # with 20% of the links involved).
        assert a.failed_links != c.failed_links or a.num_links < 5

    def test_partition_rejected_by_default(self, tiny_topology):
        links = _isolate_links(tiny_topology, 0)
        with pytest.raises(NetworkPartitionError, match="allow_partition"):
            FaultRuntime(tiny_topology, FaultModel(failed_links=links), _rng())

    def test_allow_partition_accepts_and_reports_unreachable(self, tiny_topology):
        links = _isolate_links(tiny_topology, 0)
        runtime = FaultRuntime(
            tiny_topology,
            FaultModel(failed_links=links, allow_partition=True),
            _rng(),
        )
        assert not runtime.reachable(0, 1)
        assert runtime.reachable(1, 2)

    def test_schedule_with_disconnecting_epoch_rejected(self, tiny_topology):
        links = _isolate_links(tiny_topology, 0)
        schedule = FaultSchedule(
            events=tuple(FaultEvent(100, link, "fail") for link in links)
        )
        with pytest.raises(NetworkPartitionError, match="cycle 100"):
            FaultRuntime(tiny_topology, FaultModel(schedule=schedule), _rng())

    def test_schedule_fail_then_repair_passes_validation(self, tiny_topology):
        links = _isolate_links(tiny_topology, 0)
        # Failing all-but-one link never disconnects; the last link fails
        # only after another is repaired.
        schedule = FaultSchedule(
            events=tuple(FaultEvent(100, link, "fail") for link in links[:-1])
            + (
                FaultEvent(200, links[0], "repair"),
                FaultEvent(300, links[-1], "fail"),
            )
        )
        runtime = FaultRuntime(tiny_topology, FaultModel(schedule=schedule), _rng())
        assert runtime.num_failed_links == 0  # nothing applied yet
        assert runtime.pending_event_cycle == 100

    def test_apply_due_batches_and_bumps_epoch(self, tiny_topology):
        link = _some_link(tiny_topology)
        schedule = FaultSchedule(
            events=(
                FaultEvent(100, link, "fail"),
                FaultEvent(250, link, "repair"),
            )
        )
        runtime = FaultRuntime(tiny_topology, FaultModel(schedule=schedule), _rng())
        assert not runtime.apply_due(99)
        assert runtime.epoch == 0
        assert runtime.apply_due(100)
        assert runtime.epoch == 1
        assert runtime.num_failed_links == 1
        assert runtime.pending_event_cycle == 250
        assert runtime.apply_due(300)  # late application still lands
        assert runtime.num_failed_links == 0
        assert runtime.epoch == 2
        assert runtime.pending_event_cycle == NO_FAULT_EVENT

    def test_detour_port_reaches_target_without_loops(self, tiny_topology):
        link = _some_link(tiny_topology)
        runtime = FaultRuntime(
            tiny_topology, FaultModel(failed_links=(link,)), _rng()
        )
        target = tiny_topology.num_routers - 1
        for start in range(tiny_topology.num_routers - 1):
            rid = start
            hops = 0
            while rid != target:
                port = runtime.detour_port(rid, target)
                assert port >= 0
                assert port not in runtime.failed_ports[rid]
                rid, _ = tiny_topology.neighbor(rid, port)
                hops += 1
                assert hops <= tiny_topology.num_routers, "detour loops"

    def test_detour_avoids_failed_links_after_event(self, tiny_topology):
        link = _some_link(tiny_topology)
        nbr_router, _ = tiny_topology.neighbor(*link)
        schedule = FaultSchedule(events=(FaultEvent(50, link, "fail"),))
        runtime = FaultRuntime(tiny_topology, FaultModel(schedule=schedule), _rng())
        # Healthy epoch: the direct port is the shortest path.
        assert runtime.detour_port(link[0], nbr_router) == link[1]
        runtime.apply_due(50)
        port = runtime.detour_port(link[0], nbr_router)
        assert port != link[1]
        assert port not in runtime.failed_ports[link[0]]

    def test_filter_candidates_identity_when_unaffected(self, tiny_topology):
        link = _some_link(tiny_topology)
        runtime = FaultRuntime(
            tiny_topology, FaultModel(failed_links=(link,)), _rng()
        )
        healthy_router = (link[0] + 2) % tiny_topology.num_routers
        assert not runtime.failed_ports[healthy_router]
        candidates = [_Cand(1), _Cand(2)]
        assert runtime.filter_candidates(healthy_router, candidates) is candidates
        # Affected router, unaffected ports: still the same object.
        alive = [
            _Cand(p)
            for p in range(1, tiny_topology.router_radix)
            if p not in runtime.failed_ports[link[0]]
        ][:2]
        assert runtime.filter_candidates(link[0], alive) is alive

    def test_filter_candidates_drops_dead_ports(self, tiny_topology):
        link = _some_link(tiny_topology)
        runtime = FaultRuntime(
            tiny_topology, FaultModel(failed_links=(link,)), _rng()
        )
        candidates = [_Cand(link[1]), _Cand(link[1] + 1)]
        filtered = runtime.filter_candidates(link[0], candidates)
        assert [c.port for c in filtered] == [link[1] + 1]

    def test_degradation_lookup_covers_both_ends(self, tiny_topology):
        link = _some_link(tiny_topology)
        deg = DegradedLink(bandwidth_factor=2, latency_factor=3)
        runtime = FaultRuntime(
            tiny_topology, FaultModel(degraded_links={link: deg}), _rng()
        )
        assert runtime.degradation(*link) == deg
        assert runtime.degradation(*tiny_topology.neighbor(*link)) == deg
        assert runtime.degradation(link[0], link[1] + 1) is None

    def test_runtime_on_every_topology(self, every_tiny_topology):
        """The undirected link table closes over every registered topology."""
        runtime = FaultRuntime(
            every_tiny_topology, FaultModel(link_failure_percent=10.0), _rng(5)
        )
        assert runtime.num_links > 0
        # Both endpoints of each sampled failure are marked.
        marked = sum(len(ports) for ports in runtime.failed_ports)
        assert marked == 2 * runtime.num_failed_links
