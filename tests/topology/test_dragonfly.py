"""Tests for the canonical Dragonfly topology."""

import pytest

from repro.config.parameters import DragonflyConfig
from repro.topology.base import PortKind
from repro.topology.dragonfly import DragonflyTopology


@pytest.fixture(params=["palmtree", "consecutive"])
def topology(request) -> DragonflyTopology:
    return DragonflyTopology(DragonflyConfig(p=2, a=3, h=2, global_arrangement=request.param))


class TestStructure:
    def test_sizes(self, topology):
        cfg = topology.config
        assert topology.num_groups == cfg.a * cfg.h + 1 == 7
        assert topology.num_routers == 21
        assert topology.num_nodes == 42
        assert topology.router_radix == 2 + 2 + 2

    def test_port_kind_layout(self, topology):
        kinds = [topology.port_kind(p) for p in range(topology.router_radix)]
        assert kinds == [
            PortKind.INJECTION,
            PortKind.INJECTION,
            PortKind.LOCAL,
            PortKind.LOCAL,
            PortKind.GLOBAL,
            PortKind.GLOBAL,
        ]
        with pytest.raises(ValueError):
            topology.port_kind(topology.router_radix)

    def test_validate_structural_invariants(self, topology):
        # Checks bidirectional links and node attachment for every router.
        topology.validate()

    def test_each_group_pair_joined_by_exactly_one_global_link(self, topology):
        seen = {}
        for r in range(topology.num_routers):
            g = topology.router_group(r)
            for port in topology.global_ports:
                dst = topology.global_port_target_group(r, port)
                assert dst != g
                key = (g, dst)
                assert key not in seen, f"duplicate global link {key}"
                seen[key] = (r, port)
        expected_pairs = topology.num_groups * (topology.num_groups - 1)
        assert len(seen) == expected_pairs

    def test_global_link_endpoint_is_inverse_of_target_group(self, topology):
        for g in range(topology.num_groups):
            for d in range(topology.num_groups):
                if g == d:
                    continue
                router, port = topology.global_link_endpoint(g, d)
                assert topology.router_group(router) == g
                assert topology.global_port_target_group(router, port) == d

    def test_local_ports_form_complete_graph(self, topology):
        a = topology.config.a
        for pos in range(a):
            peers = set()
            for port in topology.local_ports:
                peers.add(topology.local_port_peer(pos, port))
            assert peers == set(range(a)) - {pos}

    def test_local_port_to_roundtrip(self, topology):
        a = topology.config.a
        for me in range(a):
            for peer in range(a):
                if me == peer:
                    with pytest.raises(ValueError):
                        topology.local_port_to(me, peer)
                    continue
                port = topology.local_port_to(me, peer)
                assert topology.local_port_peer(me, port) == peer


class TestAddressing:
    def test_router_group_position_roundtrip(self, topology):
        for r in range(topology.num_routers):
            g = topology.router_group(r)
            pos = topology.router_position(r)
            assert topology.router_id(g, pos) == r

    def test_router_id_bounds(self, topology):
        with pytest.raises(ValueError):
            topology.router_id(topology.num_groups, 0)
        with pytest.raises(ValueError):
            topology.router_id(0, topology.config.a)

    def test_node_router_mapping(self, topology):
        for n in range(topology.num_nodes):
            r = topology.node_router(n)
            assert n in topology.router_nodes(r)
            assert topology.node_port(n) < topology.config.p
            assert topology.node_group(n) == topology.router_group(r)

    def test_group_nodes_partition(self, topology):
        all_nodes = []
        for g in range(topology.num_groups):
            all_nodes.extend(topology.group_nodes(g))
        assert sorted(all_nodes) == list(range(topology.num_nodes))


class TestMinimalRouting:
    def test_minimal_path_length_at_most_diameter(self, topology):
        # Dragonfly diameter is 3 router-to-router hops (l-g-l).
        nodes = range(topology.num_nodes)
        for src in list(nodes)[:8]:
            for dst in list(nodes)[::5]:
                if src == dst:
                    continue
                assert topology.minimal_path_length(src, dst) <= 3

    def test_minimal_output_port_reaches_destination(self, topology):
        # Following minimal_output_port hop by hop must arrive at the
        # destination router within 3 hops for every (router, node) pair.
        for src_router in range(topology.num_routers):
            for dst in range(0, topology.num_nodes, 3):
                dst_router = topology.node_router(dst)
                r = src_router
                for _ in range(4):
                    if r == dst_router:
                        break
                    port = topology.minimal_output_port(r, dst)
                    assert topology.port_kind(port) is not PortKind.INJECTION
                    r = topology.neighbor(r, port)[0]
                assert r == dst_router

    def test_minimal_output_port_is_ejection_at_destination(self, topology):
        dst = 5
        router = topology.node_router(dst)
        port = topology.minimal_output_port(router, dst)
        assert topology.port_kind(port) is PortKind.INJECTION
        assert port == topology.node_port(dst)

    def test_minimal_route_to_router_progresses(self, topology):
        src, dst = 0, topology.num_routers - 1
        path = topology.minimal_router_path(src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(path) <= 4
        with pytest.raises(ValueError):
            topology.minimal_route_to_router(src, src)

    def test_minimal_global_port_info(self, topology):
        # Same group: no global link on the minimal path.
        same_group_node = topology.router_nodes(1)[0]
        assert topology.minimal_global_port_info(0, same_group_node) is None
        # Remote group: the gateway belongs to the source group.
        remote_node = topology.group_nodes(3)[0]
        gw, port = topology.minimal_global_port_info(0, remote_node)
        assert topology.router_group(gw) == topology.router_group(0)
        assert topology.global_port_target_group(gw, port) == 3

    def test_describe(self, topology):
        info = topology.describe()
        assert info["routers"] == topology.num_routers
        assert info["nodes"] == topology.num_nodes


def test_paper_scale_topology_constructs():
    topo = DragonflyTopology(DragonflyConfig.paper())
    assert topo.num_nodes == 16_512
    assert topo.num_routers == 2_064
    # Spot-check a minimal path across groups at full scale.
    assert topo.minimal_path_length(0, topo.num_nodes - 1) <= 3
