"""Topology-specific tests for the flattened butterfly and the full mesh."""

import pytest

from repro.config.parameters import FlattenedButterflyConfig, FullMeshConfig
from repro.topology.base import PortKind
from repro.topology.flattened_butterfly import FlattenedButterflyTopology
from repro.topology.full_mesh import FullMeshTopology


@pytest.fixture
def fb():
    return FlattenedButterflyTopology(FlattenedButterflyConfig(p=2, rows=3, cols=4))


@pytest.fixture
def mesh():
    return FullMeshTopology(FullMeshConfig.tiny())


class TestFlattenedButterfly:
    def test_sizes_and_port_layout(self, fb):
        assert fb.num_routers == 12
        assert fb.num_nodes == 24
        # radix = p + (cols-1) row ports + (rows-1) column ports.
        assert fb.router_radix == 2 + 3 + 2
        assert list(fb.injection_ports) == [0, 1]
        assert [fb.port_kind(p) for p in fb.row_ports] == [PortKind.LOCAL] * 3
        assert [fb.port_kind(p) for p in fb.column_ports] == [PortKind.GLOBAL] * 2

    def test_coords_round_trip(self, fb):
        for router in range(fb.num_routers):
            x, y = fb.router_coords(router)
            assert fb.router_id(x, y) == router

    def test_rows_are_regions(self, fb):
        assert fb.num_regions == 3
        assert fb.routers_per_region == 4
        for router in range(fb.num_routers):
            _, y = fb.router_coords(router)
            assert fb.router_region(router) == y

    def test_row_links_stay_in_row_column_links_in_column(self, fb):
        for router in range(fb.num_routers):
            x, y = fb.router_coords(router)
            for port in fb.row_ports:
                nx, ny = fb.router_coords(fb.neighbor(router, port)[0])
                assert ny == y and nx != x
            for port in fb.column_ports:
                nx, ny = fb.router_coords(fb.neighbor(router, port)[0])
                assert nx == x and ny != y

    def test_minimal_routing_is_row_first(self, fb):
        # (0, 0) -> router (2, 1): first hop must be the row hop to column 2.
        dst_router = fb.router_id(2, 1)
        dst = fb.router_nodes(dst_router)[0]
        port = fb.minimal_output_port(fb.router_id(0, 0), dst)
        assert fb.port_kind(port) is PortKind.LOCAL
        step = fb.neighbor(fb.router_id(0, 0), port)[0]
        assert fb.router_coords(step) == (2, 0)
        # Second hop corrects the row through a column (GLOBAL) link.
        port2 = fb.minimal_output_port(step, dst)
        assert fb.port_kind(port2) is PortKind.GLOBAL
        assert fb.neighbor(step, port2)[0] == dst_router

    def test_minimal_path_lengths(self, fb):
        same_row = fb.router_nodes(fb.router_id(3, 0))[0]
        same_col = fb.router_nodes(fb.router_id(0, 2))[0]
        diagonal = fb.router_nodes(fb.router_id(3, 2))[0]
        src = fb.router_nodes(fb.router_id(0, 0))[0]
        assert fb.minimal_path_length(src, same_row) == 1
        assert fb.minimal_path_length(src, same_col) == 1
        assert fb.minimal_path_length(src, diagonal) == 2

    def test_each_row_pair_joined_by_one_link_per_column(self, fb):
        links = set()
        for router in range(fb.num_routers):
            x, y = fb.router_coords(router)
            for port in fb.column_ports:
                peer = fb.neighbor(router, port)[0]
                _, py = fb.router_coords(peer)
                links.add((x, y, py))
        # cols columns x rows*(rows-1) ordered row pairs.
        assert len(links) == 4 * 3 * 2


class TestFullMesh:
    def test_sizes_and_port_layout(self, mesh):
        assert mesh.num_routers == 6
        assert mesh.num_nodes == 12
        assert mesh.router_radix == 2 + 5
        assert not mesh.path_model.has_global_ports
        assert all(
            mesh.port_kind(p) is PortKind.LOCAL for p in mesh.mesh_ports
        )
        assert len(list(mesh.global_ports)) == 0

    def test_every_router_directly_linked(self, mesh):
        for a in range(mesh.num_routers):
            peers = {mesh.neighbor(a, p)[0] for p in mesh.mesh_ports}
            assert peers == set(range(mesh.num_routers)) - {a}

    def test_every_router_is_its_own_region(self, mesh):
        assert mesh.num_regions == mesh.num_routers
        assert mesh.routers_per_region == 1
        for r in range(mesh.num_routers):
            assert mesh.router_region(r) == r
            assert mesh.router_position(r) == 0

    def test_minimal_paths_are_single_hop(self, mesh):
        for src in range(mesh.num_nodes):
            for dst in range(mesh.num_nodes):
                expected = (
                    0 if mesh.node_router(src) == mesh.node_router(dst) else 1
                )
                assert mesh.minimal_path_length(src, dst) == expected
