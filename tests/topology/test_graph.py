"""Tests for the networkx export and graph statistics."""

import pytest

from repro.config.parameters import DragonflyConfig
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.graph import link_census, router_graph_stats, to_networkx


@pytest.fixture
def topology() -> DragonflyTopology:
    return DragonflyTopology(DragonflyConfig(p=2, a=3, h=1))


def test_to_networkx_edge_counts(topology):
    g = to_networkx(topology)
    assert g.number_of_nodes() == topology.num_routers
    groups = topology.num_groups
    a = topology.config.a
    local_edges = groups * a * (a - 1) // 2
    global_edges = groups * (groups - 1) // 2
    assert g.number_of_edges() == local_edges + global_edges


def test_router_graph_is_connected_with_small_diameter(topology):
    stats = router_graph_stats(topology)
    assert stats["connected"] == 1.0
    assert stats["diameter"] <= 3
    assert stats["avg_shortest_path"] <= 3


def test_link_census_counts_unidirectional_links(topology):
    census = link_census(topology)
    groups = topology.num_groups
    a = topology.config.a
    assert census["local"] == groups * a * (a - 1)
    assert census["global"] == groups * (groups - 1)
    assert census["injection"] == topology.num_routers * topology.config.p
