"""Fat-tree structure: wiring, ancestor tables, and the up/down contract.

The registry-driven invariant suite already proves the generic topology
contract on the fat tree; this file pins the properties specific to the
k-ary n-tree — the digit-rewrite wiring, ancestor coverage, destination
funneling, the equal-cost-uplink claim the adaptive multipath policy rests
on, the port-indexed up/down VC table, and the unconnected boundary ports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.parameters import FatTreeConfig
from repro.routing.misrouting import compute_uplink_candidates
from repro.topology.base import PortKind
from repro.topology.fat_tree import FatTreeTopology


def build(p=2, k=2, levels=3) -> FatTreeTopology:
    return FatTreeTopology(FatTreeConfig(p=p, k=k, levels=levels))


CONFIGS = [dict(p=2, k=2, levels=3), dict(p=4, k=4, levels=2), dict(p=1, k=4, levels=3)]


@pytest.fixture(params=CONFIGS, ids=lambda c: f"k{c['k']}l{c['levels']}")
def topo(request) -> FatTreeTopology:
    return build(**request.param)


def _walk_hops(topo, router, dst):
    """Minimal-walk hop count from ``router`` to node ``dst``."""
    r = router
    hops = 0
    while r != topo.node_router(dst):
        r = topo.neighbor(r, topo.minimal_output_port(r, dst))[0]
        hops += 1
    return hops


class TestConfigValidation:
    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError, match="p >= 1"):
            FatTreeConfig(p=0, k=2, levels=2)
        with pytest.raises(ValueError, match="k >= 2"):
            FatTreeConfig(p=2, k=1, levels=2)
        with pytest.raises(ValueError, match="levels"):
            FatTreeConfig(p=2, k=2, levels=1)

    def test_presets_describe_their_size(self):
        tiny = FatTreeConfig.tiny()
        assert (tiny.num_routers, tiny.num_nodes) == (12, 8)
        small = FatTreeConfig.small()
        assert (small.num_routers, small.num_nodes) == (8, 16)


class TestStructure:
    def test_counts_follow_the_k_ary_n_tree_formulas(self, topo):
        cfg = topo.config
        m = cfg.k ** (cfg.levels - 1)
        assert topo.num_routers == cfg.levels * m
        assert topo.num_nodes == m * cfg.p
        assert topo.router_radix == cfg.p + 2 * cfg.k
        per_level = [0] * cfg.levels
        for rid in range(topo.num_routers):
            per_level[topo.router_level(rid)] += 1
        assert per_level == [m] * cfg.levels

    def test_up_port_rewrites_exactly_the_level_digit(self, topo):
        """Up port j of <l, w> reaches <l+1, w[l := j]> — the defining
        wiring of the k-ary n-tree."""
        k = topo.config.k
        for rid in range(topo.num_routers):
            level = topo.router_level(rid)
            if level == topo.config.levels - 1:
                continue
            w = topo.router_label(rid)
            for j in range(k):
                parent, back = topo.neighbor(rid, min(topo.uplink_ports) + j)
                assert topo.router_level(parent) == level + 1
                pw = topo.router_label(parent)
                assert (pw // k**level) % k == j
                # Every other digit is preserved.
                assert pw - ((pw // k**level) % k) * k**level == w - (
                    (w // k**level) % k
                ) * k**level
                assert back == min(topo.downlink_ports) + (w // k**level) % k

    def test_ancestors_cover_contiguous_leaf_blocks(self, topo):
        """<l, w> reaches (descending only) exactly the k**l leaves sharing
        its digits at positions >= l."""
        k = topo.config.k
        for rid in range(topo.num_routers):
            level = topo.router_level(rid)
            w = topo.router_label(rid)
            reachable = {w} if level == 0 else set()
            frontier = [rid] if level > 0 else []
            while frontier:
                nxt = []
                for r in frontier:
                    for port in topo.downlink_ports:
                        child = topo.neighbor(r, port)
                        if child is None:
                            continue
                        if topo.router_level(child[0]) == 0:
                            reachable.add(topo.router_label(child[0]))
                        else:
                            nxt.append(child[0])
                frontier = nxt
            block = k**level
            assert reachable == set(
                range((w // block) * block, (w // block) * block + block)
            )

    def test_boundary_ports_are_unconnected(self, topo):
        top = topo.config.levels - 1
        for rid in range(topo.num_routers):
            level = topo.router_level(rid)
            for port in topo.downlink_ports:
                assert topo.port_connected(rid, port) == (level > 0)
                if level == 0:
                    assert topo.neighbor(rid, port) is None
            for port in topo.uplink_ports:
                assert topo.port_connected(rid, port) == (level < top)
                if level == top:
                    assert topo.neighbor(rid, port) is None

    def test_regions_are_msd_subtrees(self, topo):
        k = topo.config.k
        B = topo.config.switches_per_level // k
        assert topo.num_regions == k
        for rid in range(topo.num_routers):
            assert topo.router_region(rid) == topo.router_label(rid) // B


class TestMinimalRouting:
    def test_path_length_is_twice_the_turn_height(self, topo):
        k = topo.config.k
        p = topo.config.p
        for src in range(topo.num_nodes):
            for dst in range(topo.num_nodes):
                w1, w2 = src // p, dst // p
                h = 0
                while w1 != w2:
                    w1 //= k
                    w2 //= k
                    h += 1
                assert topo.minimal_path_length(src, dst) == 2 * h
                assert _walk_hops(topo, topo.node_router(src), dst) == 2 * h

    def test_minimal_routing_is_destination_funneled(self, topo):
        """All traffic towards one leaf funnels through the same uplink of
        any given non-ancestor switch — the hotspot the adaptive multipath
        spreads."""
        for rid in range(topo.num_routers):
            for dst_leaf in range(topo.config.switches_per_level):
                ports = {
                    topo.minimal_output_port(rid, dst_leaf * topo.config.p + i)
                    for i in range(topo.config.p)
                }
                if topo.node_router(dst_leaf * topo.config.p) == rid:
                    assert ports == set(range(topo.config.p))
                else:
                    assert len(ports) == 1


class TestUplinkMultipath:
    def test_every_sibling_uplink_is_equal_cost(self, topo):
        """Whenever the minimal port is an uplink, diverting through any
        other uplink reaches the destination in the same number of hops —
        the claim compute_uplink_candidates rests on."""
        checked = 0
        for rid in range(topo.num_routers):
            for dst in range(topo.num_nodes):
                if topo.node_router(dst) == rid:
                    continue
                minimal_port = topo.minimal_output_port(rid, dst)
                candidates = compute_uplink_candidates(topo, minimal_port)
                if minimal_port not in topo.uplink_ports:
                    assert candidates == []
                    continue
                assert len(candidates) == topo.config.k - 1
                baseline = 1 + _walk_hops(
                    topo, topo.neighbor(rid, minimal_port)[0], dst
                )
                for cand in candidates:
                    assert cand.kind is PortKind.LOCAL
                    diverted = 1 + _walk_hops(
                        topo, topo.neighbor(rid, cand.port)[0], dst
                    )
                    assert diverted == baseline, (rid, dst, cand.port)
                    checked += 1
        assert checked > 0

    def test_updown_vcs_are_a_pure_function_of_the_port(self, topo):
        vcs = topo.updown_port_vcs
        assert len(vcs) == topo.router_radix
        for port in topo.injection_ports:
            assert vcs[port] == 0
        for port in topo.uplink_ports:
            assert vcs[port] == 0
        for port in topo.downlink_ports:
            assert vcs[port] == 1

    def test_path_model_declares_the_multipath_capability(self, topo):
        model = topo.path_model
        assert model.supports_uplink_multipath
        assert model.vc_schedule == "up_down"
        assert model.updown_link_levels == topo.config.levels - 1
        assert not model.has_global_ports
        assert model.updown_adaptive_shapes == model.updown_minimal_shapes


class TestValiant:
    def test_intermediate_is_a_uniform_root(self, topo):
        rng = np.random.default_rng(9)
        top = topo.config.levels - 1
        seen = set()
        for _ in range(200):
            intermediate = topo.valiant_intermediate_router(0, rng)
            assert topo.router_level(intermediate) == top
            seen.add(intermediate)
        assert len(seen) == topo.config.switches_per_level

    def test_root_tables_descend_only(self, topo):
        """From a root every router-path is pure descent, so both Valiant
        legs keep the up-then-down shape."""
        roots = [
            rid
            for rid in range(topo.num_routers)
            if topo.router_level(rid) == topo.config.levels - 1
        ]
        for leaf in range(topo.config.switches_per_level):
            target = topo.leaf_router(leaf)
            for root in roots:
                path = topo.minimal_router_path(root, target)
                levels = [topo.router_level(r) for r in path]
                assert levels == list(range(topo.config.levels - 1, -1, -1))
