"""Topology-invariant property suite, run over every registered topology.

Every topology behind the registry must satisfy the structural contract the
network model and the routing layer rely on: bidirectional kind-consistent
links, a port-kind partition covering the radix, dense node<->router
mapping, contiguous equal-size regions, minimal routing that reaches every
destination within the declared diameter, and a path model whose MIN and
Valiant hop shapes walk strictly increasing buffer classes (the
topology-generic deadlock-freedom argument).
"""

import pytest

from repro.config.parameters import SimulationParameters
from repro.routing.deadlock import validate_path_model
from repro.topology.base import PortKind


@pytest.fixture
def topo(every_tiny_topology):
    """Every registered topology on its tiny preset (shared conftest fixture)."""
    return every_tiny_topology


class TestStructuralInvariants:
    def test_validate_passes(self, topo):
        """Neighbor symmetry / round-trip and port-kind consistency."""
        topo.validate()

    def test_port_kind_partition_covers_radix(self, topo):
        """Every port has exactly one kind; injection ports match p."""
        kinds = [topo.port_kind(port) for port in range(topo.router_radix)]
        assert len(kinds) == topo.router_radix
        assert kinds.count(PortKind.INJECTION) == topo.nodes_per_router
        assert tuple(kinds) == topo.port_kinds
        with pytest.raises(ValueError):
            topo.port_kind(topo.router_radix)
        if not topo.path_model.has_global_ports:
            assert PortKind.GLOBAL not in kinds

    def test_node_router_mapping_is_bijective(self, topo):
        """node -> (router, port) is a bijection onto injection ports."""
        seen = set()
        for node in range(topo.num_nodes):
            router = topo.node_router(node)
            port = topo.node_port(node)
            assert 0 <= router < topo.num_routers
            assert topo.port_kind(port) is PortKind.INJECTION
            seen.add((router, port))
        assert len(seen) == topo.num_nodes
        for router in range(topo.num_routers):
            for node in topo.router_nodes(router):
                assert topo.node_router(node) == router

    def test_neighbor_round_trip(self, topo):
        for router in range(topo.num_routers):
            for port in range(topo.router_radix):
                nbr = topo.neighbor(router, port)
                if topo.port_kind(port) is PortKind.INJECTION:
                    assert nbr is None
                    continue
                if not topo.port_connected(router, port):
                    # Boundary ports (fat-tree leaf down / root up links)
                    # carry no link.
                    assert nbr is None
                    continue
                assert nbr is not None and nbr[0] != router
                assert topo.neighbor(*nbr) == (router, port)

    def test_regions_partition_routers_and_nodes(self, topo):
        assert topo.num_regions * topo.routers_per_region == topo.num_routers
        all_routers = []
        all_nodes = []
        for region in range(topo.num_regions):
            routers = topo.region_routers(region)
            assert all(topo.router_region(r) == region for r in routers)
            all_routers.extend(routers)
            low, high = topo.region_node_range(region)
            assert all(topo.node_region(n) == region for n in range(low, high))
            all_nodes.extend(range(low, high))
        assert all_routers == list(range(topo.num_routers))
        assert all_nodes == list(range(topo.num_nodes))

    def test_port_target_region_matches_neighbor(self, topo):
        for router in range(topo.num_routers):
            for port in range(topo.router_radix):
                if topo.port_kind(port) is PortKind.INJECTION:
                    continue
                if not topo.port_connected(router, port):
                    continue
                nbr = topo.neighbor(router, port)
                assert topo.port_target_region(router, port) == topo.router_region(
                    nbr[0]
                )


class TestMinimalRouting:
    def test_minimal_routing_reaches_every_destination(self, topo):
        """Walking minimal_output_port from any router reaches any node
        within the declared diameter, and the final port ejects to the node."""
        max_hops = topo.path_model.max_minimal_hops
        for router in range(topo.num_routers):
            for dst in range(topo.num_nodes):
                r = router
                hops = 0
                while r != topo.node_router(dst):
                    port = topo.minimal_output_port(r, dst)
                    assert topo.port_kind(port) is not PortKind.INJECTION
                    r = topo.neighbor(r, port)[0]
                    hops += 1
                    assert hops <= max_hops, (router, dst)
                assert topo.minimal_output_port(r, dst) == topo.node_port(dst)

    def test_minimal_path_length_matches_walk(self, topo):
        for src in range(0, topo.num_nodes, max(1, topo.nodes_per_router)):
            for dst in range(topo.num_nodes):
                r = topo.node_router(src)
                hops = 0
                while r != topo.node_router(dst):
                    r = topo.neighbor(r, topo.minimal_output_port(r, dst))[0]
                    hops += 1
                assert topo.minimal_path_length(src, dst) == hops

    def test_minimal_route_to_router_consistent(self, topo):
        for router in range(topo.num_routers):
            with pytest.raises(ValueError):
                topo.minimal_route_to_router(router, router)
            for dst_router in range(topo.num_routers):
                if dst_router == router:
                    continue
                path = topo.minimal_router_path(router, dst_router)
                assert path[0] == router and path[-1] == dst_router
                port = topo.minimal_route_to_router(router, dst_router)
                assert topo.neighbor(router, port)[0] == path[1]


class TestPathModel:
    def test_declared_paths_are_deadlock_free_within_vc_budget(self, topo):
        """MIN and Valiant hop shapes walk strictly increasing buffer
        classes under the Table I VC budget (the cross-topology
        deadlock-freedom invariant)."""
        params = SimulationParameters.tiny(topo.config)
        validate_path_model(
            topo.path_model,
            local_vcs=params.local_port_vcs_oblivious,
            global_vcs=params.global_port_vcs,
            include_valiant=True,
        )

    def test_declared_adaptive_paths_are_deadlock_free(self, topo):
        """Topologies that declare an in-transit adaptive policy must also
        prove its path shapes (MM+L hop kinds / long-way ring traversals)
        deadlock-free under the nonminimal VC budget."""
        model = topo.path_model
        if not (
            model.supports_in_transit_adaptive
            or model.supports_nonminimal_ring_escape
            or model.supports_uplink_multipath
        ):
            pytest.skip("no in-transit adaptive policy declared")
        params = SimulationParameters.tiny(topo.config)
        validate_path_model(
            model,
            local_vcs=params.local_port_vcs_oblivious,
            global_vcs=params.global_port_vcs,
            include_valiant=True,
            include_adaptive=True,
        )

    def test_hop_kind_sequences_match_port_kinds(self, topo):
        model = topo.path_model
        kinds = {"local", "global"}
        for seq in model.minimal_hop_kinds + model.valiant_hop_kinds:
            assert set(seq) <= kinds
            if not model.has_global_ports:
                assert "global" not in seq
        assert model.max_minimal_hops == max(
            len(s) for s in model.minimal_hop_kinds
        )
        assert model.max_valiant_hops >= model.max_minimal_hops

    def test_minimal_walks_stay_within_declared_shapes(self, topo):
        """Observed minimal hop-kind sequences are declared by the model."""
        declared = set(topo.path_model.minimal_hop_kinds)
        observed = set()
        for router in range(topo.num_routers):
            for dst in range(topo.num_nodes):
                r = router
                seq = []
                while r != topo.node_router(dst):
                    port = topo.minimal_output_port(r, dst)
                    seq.append(topo.port_kind(port).value)
                    r = topo.neighbor(r, port)[0]
                if seq:
                    observed.add(tuple(seq))
        assert observed <= declared
