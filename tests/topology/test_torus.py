"""Torus topology: structure, dimension-order routing, dateline VC schedule."""

import pytest

from repro.config.parameters import SimulationParameters, TorusConfig
from repro.network.packet import Packet
from repro.routing.deadlock import validate_dateline_shapes, validate_path_model
from repro.topology.base import PortKind
from repro.topology.registry import create_topology, topology_preset
from repro.topology.torus import TorusTopology


def make_torus(p=2, dims=(4, 4)):
    return TorusTopology(TorusConfig(p=p, dims=dims))


def make_packet(src=0, dst=0, leg=0):
    packet = Packet(pid=0, src=src, dst=dst, size_phits=2, creation_cycle=0)
    packet.vc_leg = leg
    return packet


class TestConfig:
    def test_derived_sizes(self):
        cfg = TorusConfig(p=3, dims=(4, 5))
        assert cfg.num_routers == 20
        assert cfg.num_nodes == 60
        assert cfg.router_radix == 3 + 4  # p + 2 ring ports per dimension

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            TorusConfig(p=2, dims=(4,))
        with pytest.raises(ValueError):
            TorusConfig(p=2, dims=(4, 4, 4, 4))
        with pytest.raises(ValueError):
            TorusConfig(p=2, dims=(4, 1))
        with pytest.raises(ValueError):
            TorusConfig(p=0, dims=(4, 4))

    def test_registry_round_trip(self):
        cfg = topology_preset("torus", "tiny")
        assert isinstance(cfg, TorusConfig)
        topo = create_topology(cfg)
        assert isinstance(topo, TorusTopology)


@pytest.mark.parametrize("dims", [(4, 4), (3, 5), (2, 3), (3, 3, 4), (4, 4, 4)])
class TestStructure:
    def test_validate_2d_and_3d(self, dims):
        topo = make_torus(dims=dims)
        topo.validate()

    def test_coords_round_trip(self, dims):
        topo = make_torus(dims=dims)
        for router in range(topo.num_routers):
            coords = topo.router_coords(router)
            assert len(coords) == len(dims)
            assert all(0 <= c < k for c, k in zip(coords, dims))
            assert topo.router_id(coords) == router

    def test_neighbors_differ_in_exactly_one_coordinate(self, dims):
        topo = make_torus(dims=dims)
        for router in range(topo.num_routers):
            coords = topo.router_coords(router)
            for port in topo.ring_ports:
                dim, direction = topo.port_dimension(port)
                peer, _ = topo.neighbor(router, port)
                peer_coords = topo.router_coords(peer)
                for d, (a, b) in enumerate(zip(coords, peer_coords)):
                    if d == dim:
                        assert b == (a + direction) % dims[d]
                    else:
                        assert a == b

    def test_regions_are_last_dimension_slabs(self, dims):
        topo = make_torus(dims=dims)
        assert topo.num_regions == dims[-1]
        for router in range(topo.num_routers):
            assert topo.router_region(router) == topo.router_coords(router)[-1]


class TestMinimalRouting:
    @pytest.mark.parametrize("dims", [(4, 4), (3, 5), (3, 3, 4)])
    def test_dimension_order_and_shortest_way(self, dims):
        """Minimal walks correct dimensions in ascending order, never revisit
        a corrected dimension, and match the ring distance sum."""
        topo = make_torus(dims=dims)
        p = topo.nodes_per_router
        for src_router in range(topo.num_routers):
            for dst in range(0, topo.num_nodes, max(1, p)):
                r = src_router
                dims_visited = []
                hops = 0
                while r != topo.node_router(dst):
                    port = topo.minimal_output_port(r, dst)
                    dim, _ = topo.port_dimension(port)
                    if not dims_visited or dims_visited[-1] != dim:
                        dims_visited.append(dim)
                    r = topo.neighbor(r, port)[0]
                    hops += 1
                assert dims_visited == sorted(dims_visited)
                assert len(set(dims_visited)) == len(dims_visited)
                assert hops == topo.minimal_path_length(src_router * p, dst)

    def test_per_ring_hops_bounded_by_half(self):
        topo = make_torus(dims=(5, 4))
        assert topo.path_model.max_minimal_hops == 2 + 2
        # Distance 2 on the even ring of length 4 ties; plus direction wins.
        port = topo.minimal_output_port(0, topo.router_nodes(topo.router_id((2, 0)))[0])
        assert topo.port_dimension(port) == (0, +1)

    def test_tornado_offset(self):
        assert make_torus(dims=(4, 4)).hard_adversarial_offset == 2
        assert make_torus(dims=(4, 6)).hard_adversarial_offset == 3
        assert make_torus(dims=(3, 3, 3)).hard_adversarial_offset == 1


class TestDatelineSchedule:
    def test_dateline_links_are_the_wrap_links(self):
        topo = make_torus(dims=(4, 3))
        for router in range(topo.num_routers):
            coords = topo.router_coords(router)
            for port in topo.ring_ports:
                dim, direction = topo.port_dimension(port)
                expected = coords[dim] == (topo.dims[dim] - 1 if direction == +1 else 0)
                assert topo.is_dateline_link(router, port) == expected

    def test_ring_vc_bumps_at_dateline_and_resets_across_dimensions(self):
        topo = make_torus(dims=(4, 4))
        packet = make_packet()
        plus0 = topo.ring_port(0, +1)
        # Walk dimension 0 from coordinate 2: 2 -> 3 (no wrap), 3 -> 0 (wrap).
        r = topo.router_id((2, 0))
        assert topo.ring_vc(packet, r, plus0) == 0
        topo.commit_ring_hop(packet, r, plus0)
        r = topo.router_id((3, 0))
        assert topo.ring_vc(packet, r, plus0) == 1  # the wrap hop itself bumps
        topo.commit_ring_hop(packet, r, plus0)
        r = topo.router_id((0, 0))
        assert topo.ring_vc(packet, r, plus0) == 1  # and stays bumped
        # Entering dimension 1 starts a fresh traversal: back to class 0.
        plus1 = topo.ring_port(1, +1)
        assert topo.ring_vc(packet, r, plus1) == 0

    def test_second_leg_uses_disjoint_class_block(self):
        topo = make_torus(dims=(4, 4))
        packet = make_packet(leg=1)
        plus0 = topo.ring_port(0, +1)
        r = topo.router_id((3, 0))
        assert topo.ring_vc(packet, r, plus0) == 3  # 2 * leg + crossed
        packet2 = make_packet(leg=1)
        assert topo.ring_vc(packet2, topo.router_id((1, 0)), plus0) == 2

    def test_ejection_hop_does_not_touch_ring_state(self):
        topo = make_torus(dims=(4, 4))
        packet = make_packet()
        plus0 = topo.ring_port(0, +1)
        topo.commit_ring_hop(packet, topo.router_id((3, 0)), plus0)
        assert packet.ring_dim == 0 and packet.ring_crossed
        topo.commit_ring_hop(packet, topo.router_id((0, 0)), 0)  # ejection port
        assert packet.ring_dim == 0 and packet.ring_crossed

    @pytest.mark.parametrize("dims", [(4, 4), (3, 3, 4)])
    def test_minimal_walk_vcs_never_decrease_within_a_dimension(self, dims):
        """Driving the real state machine over every minimal walk yields
        (leg, dim, crossed) classes in lexicographically non-decreasing
        order — the runtime counterpart of the declared shapes."""
        topo = make_torus(dims=dims)
        p = topo.nodes_per_router
        for src_router in range(topo.num_routers):
            for dst in range(0, topo.num_nodes, max(1, p)):
                packet = make_packet(dst=dst)
                r = src_router
                classes = []
                while r != topo.node_router(dst):
                    port = topo.minimal_output_port(r, dst)
                    vc = topo.ring_vc(packet, r, port)
                    dim, _ = topo.port_dimension(port)
                    classes.append((packet.vc_leg, dim, vc % 2))
                    assert vc == 2 * packet.vc_leg + (vc % 2)
                    assert vc <= 1  # minimal traffic stays on leg 0
                    topo.commit_ring_hop(packet, r, port)
                    r = topo.neighbor(r, port)[0]
                assert classes == sorted(classes)

    def test_path_model_declares_dateline_schedule(self):
        model = make_torus(dims=(3, 3, 4)).path_model
        assert model.vc_schedule == "dateline"
        assert not model.has_global_ports
        assert model.dateline_minimal_shapes
        assert model.dateline_valiant_shapes
        # One maximal shape per leg structure, covering every dimension.
        (minimal,) = model.dateline_minimal_shapes
        assert minimal == tuple((0, d, c) for d in range(3) for c in (0, 1))
        (valiant,) = model.dateline_valiant_shapes
        assert valiant[: len(minimal)] == minimal
        assert valiant[len(minimal) :] == tuple(
            (1, d, c) for d in range(3) for c in (0, 1)
        )


class TestDatelineValidator:
    def test_accepts_the_torus_shapes_within_the_oblivious_budget(self):
        params = SimulationParameters.tiny(TorusConfig.tiny())
        validate_path_model(
            make_torus().path_model,
            local_vcs=params.local_port_vcs_oblivious,
            global_vcs=params.global_port_vcs,
            include_valiant=True,
        )

    def test_minimal_only_fits_two_ring_vcs(self):
        validate_path_model(
            make_torus().path_model,
            local_vcs=2,
            global_vcs=1,
            include_valiant=False,
        )

    def test_rejects_valiant_shapes_without_the_extra_vcs(self):
        with pytest.raises(ValueError, match="ring VC"):
            validate_path_model(
                make_torus().path_model,
                local_vcs=3,
                global_vcs=2,
                include_valiant=True,
            )

    def test_rejects_dateline_reset_going_backwards(self):
        # Re-entering an earlier dimension on the same leg is a cycle risk.
        with pytest.raises(ValueError, match="strictly increasing"):
            validate_dateline_shapes(
                [((0, 0, 0), (0, 1, 0), (0, 0, 1))], ring_vcs=4
            )

    def test_rejects_uncrossing_a_dateline(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            validate_dateline_shapes([((0, 0, 1), (0, 0, 0))], ring_vcs=4)

    def test_rejects_malformed_classes(self):
        with pytest.raises(ValueError, match="malformed"):
            validate_dateline_shapes([((0, 0, 2),)], ring_vcs=4)


class TestSimulation:
    @pytest.mark.parametrize("routing", ["MIN", "VAL", "UGAL"])
    def test_delivers_deadlock_free_under_tornado(self, routing):
        from repro.simulation.simulator import Simulator

        params = SimulationParameters.tiny(TorusConfig.tiny())
        sim = Simulator(params, routing, "ADV+h", offered_load=0.15, seed=9)
        result = sim.run_steady_state(warmup_cycles=150, measure_cycles=300)
        assert result.delivered_packets > 0
        assert result.global_misroute_fraction == 0.0  # no global ports

    def test_three_dimensional_torus_simulates(self):
        from repro.simulation.simulator import Simulator

        params = SimulationParameters.tiny(TorusConfig(p=1, dims=(3, 3, 3)))
        sim = Simulator(params, "VAL", "ADV+1", offered_load=0.15, seed=3)
        result = sim.run_steady_state(warmup_cycles=150, measure_cycles=300)
        assert result.delivered_packets > 0
        assert result.accepted_load == pytest.approx(0.15, abs=0.05)
