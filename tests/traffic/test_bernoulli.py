"""Tests for the Bernoulli traffic generator."""

import numpy as np
import pytest

from repro.traffic.bernoulli import BernoulliTrafficGenerator
from repro.traffic.uniform import UniformTraffic


def make_generator(topology, load, rng, size=4):
    return BernoulliTrafficGenerator(
        topology=topology,
        pattern=UniformTraffic(topology),
        offered_load=load,
        packet_size_phits=size,
        rng=rng,
    )


def test_packet_probability_is_load_over_size(tiny_topology, rng):
    gen = make_generator(tiny_topology, load=0.4, rng=rng, size=4)
    assert gen.packet_probability == pytest.approx(0.1)


def test_generated_rate_matches_offered_load(tiny_topology, rng):
    load = 0.3
    size = 4
    gen = make_generator(tiny_topology, load=load, rng=rng, size=size)
    cycles = 3000
    total_phits = 0
    for cycle in range(cycles):
        for _src, packet in gen.generate(cycle):
            total_phits += packet.size_phits
    measured = total_phits / (tiny_topology.num_nodes * cycles)
    assert measured == pytest.approx(load, rel=0.1)


def test_zero_load_generates_nothing(tiny_topology, rng):
    gen = make_generator(tiny_topology, load=0.0, rng=rng)
    assert gen.generate(0) == []
    assert gen.generated_packets == 0


def test_packets_have_unique_ids_and_correct_metadata(tiny_topology, rng):
    gen = make_generator(tiny_topology, load=1.0, rng=rng, size=2)
    seen = set()
    for cycle in range(20):
        for src, packet in gen.generate(cycle):
            assert packet.pid not in seen
            seen.add(packet.pid)
            assert packet.src == src
            assert packet.creation_cycle == cycle
            assert packet.size_phits == 2
            assert packet.dst != packet.src


def test_set_offered_load_updates_probability(tiny_topology, rng):
    gen = make_generator(tiny_topology, load=0.2, rng=rng, size=4)
    gen.set_offered_load(0.8)
    assert gen.packet_probability == pytest.approx(0.2)
    with pytest.raises(ValueError):
        gen.set_offered_load(1.5)


def test_rejects_invalid_construction(tiny_topology, rng):
    with pytest.raises(ValueError):
        make_generator(tiny_topology, load=1.5, rng=rng)
    with pytest.raises(ValueError):
        BernoulliTrafficGenerator(tiny_topology, UniformTraffic(tiny_topology), 0.5, 0, rng)
