"""Tests for the synthetic traffic patterns."""

import numpy as np
import pytest

from repro.traffic import (
    AdversarialTraffic,
    MixedTraffic,
    TransientTraffic,
    UniformTraffic,
    create_pattern,
)


class TestUniformTraffic:
    def test_destinations_valid_and_never_self(self, tiny_topology, rng):
        pattern = UniformTraffic(tiny_topology)
        for src in range(tiny_topology.num_nodes):
            for _ in range(5):
                dst = pattern.destination(src, 0, rng)
                assert 0 <= dst < tiny_topology.num_nodes
                assert dst != src

    def test_destinations_cover_many_groups(self, tiny_topology, rng):
        pattern = UniformTraffic(tiny_topology)
        groups = {tiny_topology.node_group(pattern.destination(0, 0, rng)) for _ in range(200)}
        assert len(groups) >= tiny_topology.num_groups - 1


class TestAdversarialTraffic:
    def test_adv1_targets_next_group(self, tiny_topology, rng):
        pattern = AdversarialTraffic(tiny_topology, offset=1)
        for src in range(tiny_topology.num_nodes):
            dst = pattern.destination(src, 0, rng)
            expected = (tiny_topology.node_group(src) + 1) % tiny_topology.num_groups
            assert tiny_topology.node_group(dst) == expected

    def test_adv_offset_wraps_around(self, tiny_topology, rng):
        offset = tiny_topology.num_groups + 1  # equivalent to +1 after wrap
        pattern = AdversarialTraffic(tiny_topology, offset=offset)
        dst = pattern.destination(0, 0, rng)
        assert tiny_topology.node_group(dst) == 1 % tiny_topology.num_groups

    def test_rejects_degenerate_offset(self, tiny_topology):
        with pytest.raises(ValueError):
            AdversarialTraffic(tiny_topology, offset=tiny_topology.num_groups)

    def test_name_reflects_offset(self, tiny_topology):
        assert AdversarialTraffic(tiny_topology, offset=3).name == "ADV+3"


class TestMixedTraffic:
    def test_pure_fraction_matches_component(self, tiny_topology, rng):
        adv = AdversarialTraffic(tiny_topology, offset=1)
        mixed = MixedTraffic(tiny_topology, [(adv, 1.0), (UniformTraffic(tiny_topology), 0.0)])
        for src in range(0, tiny_topology.num_nodes, 3):
            dst = mixed.destination(src, 0, rng)
            assert tiny_topology.node_group(dst) == (tiny_topology.node_group(src) + 1) % tiny_topology.num_groups

    def test_blend_produces_both_components(self, tiny_topology, rng):
        adv = AdversarialTraffic(tiny_topology, offset=1)
        uni = UniformTraffic(tiny_topology)
        mixed = MixedTraffic(tiny_topology, [(adv, 0.5), (uni, 0.5)])
        groups = {tiny_topology.node_group(mixed.destination(0, 0, rng)) for _ in range(300)}
        assert len(groups) > 1  # not everything to group +1

    def test_rejects_invalid_weights(self, tiny_topology):
        uni = UniformTraffic(tiny_topology)
        with pytest.raises(ValueError):
            MixedTraffic(tiny_topology, [])
        with pytest.raises(ValueError):
            MixedTraffic(tiny_topology, [(uni, -1.0)])
        with pytest.raises(ValueError):
            MixedTraffic(tiny_topology, [(uni, 0.0)])


class TestTransientTraffic:
    def test_switches_pattern_at_cycle(self, tiny_topology, rng):
        before = AdversarialTraffic(tiny_topology, offset=1)
        after = AdversarialTraffic(tiny_topology, offset=2)
        transient = TransientTraffic(tiny_topology, before, after, switch_cycle=100)
        dst_before = transient.destination(0, 99, rng)
        dst_after = transient.destination(0, 100, rng)
        assert tiny_topology.node_group(dst_before) == 1
        assert tiny_topology.node_group(dst_after) == 2
        assert transient.active_pattern(99) is before
        assert transient.active_pattern(100) is after


class TestCreatePattern:
    def test_create_by_name(self, tiny_topology):
        assert create_pattern("UN", tiny_topology).name == "UN"
        assert create_pattern("ADV+1", tiny_topology).name == "ADV+1"

    def test_adv_h_uses_topology_h(self, tiny_topology):
        pattern = create_pattern("ADV+h", tiny_topology)
        assert pattern.offset == tiny_topology.config.h

    def test_unknown_pattern_rejected(self, tiny_topology):
        with pytest.raises(ValueError):
            create_pattern("tornado", tiny_topology)
