"""Randomized cross-topology property suite for the contention subsystem.

The in-transit adaptive generalization (MM+L on group topologies, the
nonminimal ring escape on the torus) interacts with the deadlock-avoidance
VC machinery and the per-hop misroute accounting, so these tests pin the
*invariants* rather than values, for every registered topology x {Base,
Hybrid, UGAL} over a seeded-random grid of (pattern, load, seed) points:

* every delivered packet's hop sequence obeys the declared path-model
  classes — strictly increasing ``(kind, vc)`` buffer classes under the
  path-stage schedule, lexicographically monotone ``(leg, dim, crossed)``
  classes under the dateline schedule;
* misroute counts never exceed the per-packet budget (one committed global
  misroute; bounded local detours / one ring escape per dimension);
* a run with the time-warp engine enabled is bit-identical to the
  cycle-by-cycle run.

Unsupported (topology, routing) pairs must refuse at construction — there
is no silent third state (see ``tests/routing/test_unsupported_matrix.py``
for the full matrix).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np
import pytest

from repro.config.parameters import SimulationParameters
from repro.routing.base import UnsupportedTopologyError
from repro.routing.deadlock import class_rank
from repro.simulation.simulator import Simulator
from repro.topology.base import PortKind
from repro.topology.registry import topology_preset

ROUTINGS = ("Base", "Hybrid", "UGAL")

#: Seeded random experiment grid (one point per traffic pattern): the suite
#: is randomized but reproducible — re-running never flakes, bumping the
#: seed re-rolls the whole grid.
_GRID_RNG = np.random.default_rng(0xC0DE)
_POINTS = [
    (pattern, float(load), int(seed))
    for pattern, load, seed in zip(
        ("UN", "ADV+1", "ADV+h"),
        _GRID_RNG.uniform(0.08, 0.35, size=3),
        _GRID_RNG.integers(0, 2**31, size=3),
    )
]


class HopRecorder:
    """Record every granted hop of every packet through ``on_grant``."""

    def __init__(self, sim: Simulator):
        self.topology = sim.topology
        self.dateline = sim.topology.path_model.vc_schedule == "dateline"
        self.updown = sim.topology.path_model.vc_schedule == "up_down"
        #: pid -> list of (output_port, port_kind, vc, router_id) per
        #: granted non-ejection hop, in path order.
        self.hops = defaultdict(list)
        #: pid -> committed global misroutes / local-misroute decisions /
        #: MM+L proxy commitments.
        self.global_commits = defaultdict(int)
        self.local_misroutes = defaultdict(int)
        self.proxy_commits = defaultdict(int)
        original = sim.routing.on_grant
        port_kinds = sim.topology.port_kinds

        def on_grant(router, port, vc, packet, decision, cycle):
            kind = port_kinds[decision.output_port]
            if kind is not PortKind.INJECTION:
                self.hops[packet.pid].append(
                    (decision.output_port, kind, decision.vc, router.router_id)
                )
            if decision.set_intermediate_group is not None:
                self.global_commits[packet.pid] += 1
            if decision.nonminimal_local:
                self.local_misroutes[packet.pid] += 1
            if decision.set_must_misroute_global:
                self.proxy_commits[packet.pid] += 1
            original(router, port, vc, packet, decision, cycle)

        sim.routing.on_grant = on_grant

    def dateline_classes(self, hops):
        """(leg, dim, crossed) buffer class of each recorded ring hop.

        The dateline VC encodes ``2 * leg + crossed``; the ring dimension
        follows from the output port.
        """
        return [
            (vc // 2, self.topology.port_dimension(port)[0], vc % 2)
            for port, _, vc, _ in hops
        ]

    def updown_ranks(self, hops):
        """Buffer-class rank of each recorded fat-tree hop.

        An up hop out of a level-``l`` router rides link level ``l``
        (rank ``l``); a down hop out of a level-``l`` router rides link
        level ``l - 1`` (rank ``2 * L - l`` for ``L`` link levels).  The
        deadlock contract is that every path walks these ranks strictly
        ascending — up legs climb, one turn, down legs descend.
        """
        topo = self.topology
        link_levels = topo.path_model.updown_link_levels
        uplinks = topo.uplink_ports
        ranks = []
        for port, _, _, rid in hops:
            level = topo.router_level(rid)
            ranks.append(level if port in uplinks else 2 * link_levels - level)
        return ranks


def _run_recorded(topology: str, routing: str, pattern: str, load: float, seed: int):
    params = SimulationParameters.tiny(topology_preset(topology))
    sim = Simulator(params, routing, pattern, load, seed=seed)
    recorder = HopRecorder(sim)
    sim.run_steady_state(warmup_cycles=100, measure_cycles=200)
    return sim, recorder


def _supported(topology: str, routing: str) -> bool:
    try:
        Simulator(
            SimulationParameters.tiny(topology_preset(topology)),
            routing,
            "UN",
            offered_load=0.0,
        )
    except UnsupportedTopologyError:
        return False
    return True


@pytest.fixture(params=ROUTINGS)
def contention_routing(request) -> str:
    return request.param


@pytest.fixture
def supported_pair(every_topology, contention_routing):
    """(topology, routing) pairs that construct; unsupported ones skip
    (their loud refusal is asserted by the probe-matrix suite)."""
    if not _supported(every_topology, contention_routing):
        pytest.skip(f"{contention_routing} unsupported on {every_topology}")
    return every_topology, contention_routing


class TestHopSequencesObeyPathModel:
    def test_buffer_classes_monotone(self, supported_pair):
        """Path-stage hops walk strictly increasing (kind, vc) classes;
        dateline hops walk lexicographically non-decreasing
        (leg, dim, crossed) classes — the two deadlock-freedom contracts,
        observed on live traffic instead of declared shapes."""
        topology, routing = supported_pair
        checked = 0
        for pattern, load, seed in _POINTS:
            sim, rec = _run_recorded(topology, routing, pattern, load, seed)
            for pid, hops in rec.hops.items():
                if not hops:
                    continue
                checked += 1
                if rec.dateline:
                    classes = rec.dateline_classes(hops)
                    assert all(
                        b >= a for a, b in zip(classes, classes[1:])
                    ), (topology, routing, pid, classes)
                    assert all(vc < 4 for _, _, vc, _ in hops), (pid, hops)
                elif rec.updown:
                    ranks = rec.updown_ranks(hops)
                    assert all(
                        b > a for a, b in zip(ranks, ranks[1:])
                    ), (topology, routing, pid, hops)
                    # The VC is a pure function of the output port.
                    vcs = sim.topology.updown_port_vcs
                    assert all(vc == vcs[port] for port, _, vc, _ in hops), (
                        pid,
                        hops,
                    )
                else:
                    ranks = [
                        class_rank(kind.value, vc) for _, kind, vc, _ in hops
                    ]
                    assert all(
                        b > a for a, b in zip(ranks, ranks[1:])
                    ), (topology, routing, pid, hops)
        assert checked > 0, "grid produced no routed packets"

    def test_hop_counts_respect_declared_diameters(self, supported_pair):
        """No packet exceeds the worst path its policy allows."""
        topology, routing = supported_pair
        pattern, load, seed = _POINTS[1]
        sim, rec = _run_recorded(topology, routing, pattern, load, seed)
        model = sim.topology.path_model
        if model.vc_schedule == "dateline":
            # Two Valiant legs, each traversal at most k - 1 links per ring
            # with the escape (k // 2 minimally).
            bound = 2 * sum(k - 1 for k in model.ring_lengths)
        else:
            shapes = model.valiant_hop_kinds + model.adaptive_hop_kinds
            bound = max(len(s) for s in shapes)
        for pid, hops in rec.hops.items():
            assert len(hops) <= bound, (pid, len(hops), bound)


class TestMisrouteBudgets:
    def test_misroute_counts_never_exceed_budget(self, supported_pair):
        """At most one committed global misroute (and one MM+L proxy) per
        packet; local detours bounded by the policy — two per group path,
        one ring escape per dimension on the torus, the Valiant detour
        hops on UGAL."""
        topology, routing = supported_pair
        for pattern, load, seed in _POINTS:
            sim, rec = _run_recorded(topology, routing, pattern, load, seed)
            model = sim.topology.path_model
            if routing == "UGAL":
                # Source routing: only the detour hops towards the Valiant
                # intermediate are flagged nonminimal.
                if model.vc_schedule == "dateline":
                    local_budget = sum(k // 2 for k in model.ring_lengths)
                else:
                    local_budget = model.max_valiant_hops or 1
            elif model.vc_schedule == "dateline":
                # One committed direction escape per ring dimension.
                local_budget = len(model.ring_lengths)
            elif model.vc_schedule == "up_down":
                # At most one equal-cost uplink divert per up hop.
                local_budget = model.updown_link_levels
            else:
                # MM+L: at most one local detour per visited region, and the
                # policy admits at most two along any path.
                local_budget = 2
            for pid in rec.hops:
                assert rec.global_commits[pid] <= 1, pid
                assert rec.proxy_commits[pid] <= 1, pid
                assert rec.local_misroutes[pid] <= local_budget, (
                    topology,
                    routing,
                    pid,
                    rec.local_misroutes[pid],
                    local_budget,
                )


class TestWarpBitIdentical:
    @pytest.mark.parametrize("point", range(len(_POINTS)))
    def test_warp_on_off_results_identical(self, supported_pair, point):
        """The time-warp engine only skips provably idle cycles: every
        steady-state field matches the cycle-by-cycle engine bit for bit,
        on every topology the contention mechanisms now reach."""
        topology, routing = supported_pair
        pattern, load, seed = _POINTS[point]
        results = []
        for time_warp in (True, False):
            params = SimulationParameters.tiny(topology_preset(topology))
            sim = Simulator(
                params, routing, pattern, load, seed=seed, time_warp=time_warp
            )
            results.append(
                sim.run_steady_state(warmup_cycles=100, measure_cycles=200)
            )
        assert results[0] == results[1]
