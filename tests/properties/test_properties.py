"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.parameters import DragonflyConfig
from repro.metrics.statistics import aggregate_scalar, average_series
from repro.network.allocator import AllocationRequest, SeparableAllocator
from repro.network.buffer import VCBuffer
from repro.network.packet import Packet
from repro.routing.deadlock import VCAssignmentPolicy, class_rank, path_buffer_classes
from repro.topology.base import PortKind
from repro.topology.dragonfly import DragonflyTopology

# --------------------------------------------------------------------------- topology

dragonfly_configs = st.builds(
    DragonflyConfig,
    p=st.integers(min_value=1, max_value=4),
    a=st.integers(min_value=2, max_value=5),
    h=st.integers(min_value=1, max_value=3),
    global_arrangement=st.sampled_from(["palmtree", "consecutive"]),
)


@given(dragonfly_configs)
@settings(max_examples=25, deadline=None)
def test_dragonfly_structure_invariants(config):
    """Every generated Dragonfly is well-formed: bidirectional links,
    consistent port kinds, one global link per group pair, diameter <= 3."""
    topo = DragonflyTopology(config)
    topo.validate()
    # Exactly one global link per ordered group pair.
    pairs = set()
    for r in range(topo.num_routers):
        for port in topo.global_ports:
            pairs.add((topo.router_group(r), topo.global_port_target_group(r, port)))
    assert len(pairs) == topo.num_groups * (topo.num_groups - 1)


@given(dragonfly_configs, st.data())
@settings(max_examples=25, deadline=None)
def test_minimal_paths_reach_destination_within_diameter(config, data):
    topo = DragonflyTopology(config)
    src = data.draw(st.integers(min_value=0, max_value=topo.num_nodes - 1))
    dst = data.draw(st.integers(min_value=0, max_value=topo.num_nodes - 1))
    router = topo.node_router(src)
    dst_router = topo.node_router(dst)
    hops = 0
    while router != dst_router:
        port = topo.minimal_output_port(router, dst)
        assert topo.port_kind(port) is not PortKind.INJECTION
        router = topo.neighbor(router, port)[0]
        hops += 1
        assert hops <= 3
    assert topo.minimal_path_length(src, dst) == hops


# --------------------------------------------------------------------------- buffers


@given(
    capacity=st.integers(min_value=4, max_value=64),
    sizes=st.lists(st.integers(min_value=1, max_value=8), max_size=30),
)
@settings(max_examples=50, deadline=None)
def test_vc_buffer_occupancy_never_exceeds_capacity(capacity, sizes):
    buf = VCBuffer(capacity)
    pushed = 0
    for i, size in enumerate(sizes):
        if buf.can_accept(size):
            buf.push(Packet(pid=i, src=0, dst=1, size_phits=size, creation_cycle=0))
            pushed += size
        assert 0 <= buf.occupied_phits <= capacity
        assert buf.occupied_phits == pushed
    # Draining returns the buffer to empty.
    while not buf.empty:
        pushed -= buf.pop().size_phits
    assert buf.occupied_phits == 0 == pushed


# --------------------------------------------------------------------------- allocator

requests_strategy = st.lists(
    st.builds(
        AllocationRequest,
        input_port=st.integers(min_value=0, max_value=7),
        input_vc=st.integers(min_value=0, max_value=3),
        output_port=st.integers(min_value=0, max_value=7),
        size_phits=st.just(4),
    ),
    max_size=40,
)


@given(requests_strategy)
@settings(max_examples=60, deadline=None)
def test_separable_allocator_grants_are_a_matching(requests):
    allocator = SeparableAllocator(num_ports=8, max_vcs=4)
    grants = allocator.allocate(requests)
    granted_inputs = [g.input_port for g in grants]
    granted_outputs = [g.output_port for g in grants]
    assert len(set(granted_inputs)) == len(granted_inputs)
    assert len(set(granted_outputs)) == len(granted_outputs)
    # Every grant corresponds to an actual request.
    keys = {(r.input_port, r.input_vc, r.output_port) for r in requests}
    assert all((g.input_port, g.input_vc, g.output_port) in keys for g in grants)
    # If there was at least one request, at least one grant is issued.
    if requests:
        assert grants


# --------------------------------------------------------------------------- VC policy


@given(
    st.lists(st.sampled_from(["local", "global"]), max_size=6),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=60, deadline=None)
def test_vc_assignment_never_decreases_within_a_class(hops, local_vcs, global_vcs):
    """Along any hop sequence, the VC index used on each port class never
    decreases (the capped path-stage assignment is monotone per class)."""
    policy = VCAssignmentPolicy(local_vcs=local_vcs, global_vcs=global_vcs, injection_vcs=3)
    packet = Packet(pid=0, src=0, dst=1, size_phits=4, creation_cycle=0)
    last = {"local": -1, "global": -1}
    for hop in hops:
        kind = PortKind.LOCAL if hop == "local" else PortKind.GLOBAL
        vc = policy.vc_for_hop(packet, kind)
        assert vc >= last[hop]
        assert vc < policy.max_vcs(kind)
        last[hop] = vc
        packet.record_hop(is_global=(hop == "global"))


@given(
    misroute_global=st.booleans(),
    src_local=st.booleans(),
    proxy=st.booleans(),
    int_local_misroute=st.booleans(),
    dst_local=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_allowed_dragonfly_paths_use_strictly_increasing_classes(
    misroute_global, src_local, proxy, int_local_misroute, dst_local
):
    """Every path shape the mechanisms can produce visits buffer classes in
    strictly increasing order (the deadlock-freedom invariant)."""
    hops = []
    if misroute_global:
        if proxy:
            hops.append("local")       # MM+L proxy step
        elif src_local:
            hops.append("local")       # minimal local step in the source group
        hops.append("global")          # nonminimal global hop
        hops.append("local")           # intermediate group, towards gateway
        if int_local_misroute:
            hops.append("local")       # local misroute in the intermediate group
        hops.append("global")          # second global hop
        if dst_local:
            hops.append("local")       # destination group
    else:
        if src_local:
            hops.append("local")
        hops.append("global")
        if dst_local:
            hops.append("local")
    ranks = [class_rank(kind, vc) for kind, vc in path_buffer_classes(hops)]
    assert ranks == sorted(ranks)
    assert len(set(ranks)) == len(ranks)


# --------------------------------------------------------------------------- statistics


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_aggregate_scalar_mean_within_bounds(values):
    result = aggregate_scalar(values)
    assert min(values) - 1e-6 <= result.mean <= max(values) + 1e-6
    assert result.n == len(values)
    assert result.std >= 0 and result.ci95 >= 0


@given(
    st.lists(
        st.lists(st.floats(min_value=0, max_value=1e3, allow_nan=False), min_size=1, max_size=10),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=50, deadline=None)
def test_average_series_length_and_bounds(series):
    merged = average_series(series)
    assert len(merged) == max(len(s) for s in series)
    flat = [v for s in series for v in s]
    assert all(min(flat) - 1e-6 <= v <= max(flat) + 1e-6 for v in merged)
