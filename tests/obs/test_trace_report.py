"""Trace serialization round-trip and the trace_report CLI."""

import json

import pytest

from repro.obs import TRACE_SCHEMA_VERSION, load_trace
from repro.tools.trace_report import first_divergence, main, render_report


@pytest.fixture
def trace_path(traced_run, tmp_path):
    sim, _ = traced_run()
    path = tmp_path / "trace.jsonl"
    sim.obs.dump(path)
    return path


class TestRoundTrip:
    def test_dump_and_load_preserve_the_stream(self, traced_run, tmp_path):
        sim, _ = traced_run()
        path = tmp_path / "trace.jsonl"
        sim.obs.dump(path)
        trace = load_trace(path)
        assert trace["manifest"]["config_hash"] == sim.obs.manifest["config_hash"]
        assert trace["events"] == json.loads(
            "[" + ",".join(json.dumps(e, sort_keys=True) for e in sim.obs.events) + "]"
        )
        assert trace["perf"]["ev"] == "perf"
        assert trace["perf"]["grants"] == sim.obs.perf["grants"]

    def test_newer_trace_schema_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"ev": "manifest", "trace_schema": TRACE_SCHEMA_VERSION + 1})
            + "\n"
        )
        with pytest.raises(ValueError, match="newer than supported"):
            load_trace(path)

    def test_headerless_stream_tolerated(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        path.write_text(json.dumps({"ev": "hop", "pid": 1}) + "\n")
        trace = load_trace(path)
        assert trace["manifest"] is None
        assert trace["perf"] is None
        assert len(trace["events"]) == 1


class TestReport:
    def test_report_sections_render(self, trace_path, capsys):
        assert main(["report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "manifest:" in out and "backend=object" in out
        assert "occupancy heatmap" in out
        assert "link utilization" in out
        assert "trigger decisions:" in out
        assert "timeline" in out  # auto-picked first sampled pid
        assert "perf:" in out and "grants=" in out

    def test_explicit_pid_timeline(self, trace_path, capsys):
        trace = load_trace(trace_path)
        pid = next(e["pid"] for e in trace["events"] if e["ev"] == "deliver")
        main(["report", str(trace_path), "--pid", str(pid)])
        out = capsys.readouterr().out
        assert f"packet {pid} timeline" in out
        assert "deliver" in out

    def test_unsampled_pid_reports_absence(self, trace_path, capsys):
        main(["report", str(trace_path), "--pid", "99999999"])
        assert "not in the sampled flight set" in capsys.readouterr().out

    def test_render_report_without_snapshots(self):
        trace = {"manifest": None, "events": [], "perf": None}
        out = render_report(trace)
        assert "no snapshots recorded" in out
        assert "no hop events recorded" in out


class TestDiff:
    def test_identical_traces_exit_zero(self, trace_path, capsys):
        assert main(["diff", str(trace_path), str(trace_path)]) == 0
        assert "traces identical" in capsys.readouterr().out

    def test_divergence_is_pinpointed(self, trace_path, tmp_path, capsys):
        lines = trace_path.read_text().splitlines()
        # Perturb the first hop event: the diff must name its index within
        # the flight-event stream (manifest and snapshots are not compared).
        flight_index = None
        count = 0
        for i, line in enumerate(lines):
            record = json.loads(line)
            if record.get("ev") in ("inject", "hop", "deliver", "drop"):
                if record["ev"] == "hop":
                    record["out_vc"] = 99
                    lines[i] = json.dumps(record, sort_keys=True)
                    flight_index = count
                    break
                count += 1
        mutated = tmp_path / "mutated.jsonl"
        mutated.write_text("\n".join(lines) + "\n")
        assert main(["diff", str(trace_path), str(mutated)]) == 1
        out = capsys.readouterr().out
        assert f"traces diverge at event {flight_index}" in out
        assert '"out_vc": 99' in out

    def test_truncated_trace_diverges_at_the_tail(self, trace_path, tmp_path, capsys):
        lines = trace_path.read_text().splitlines()
        truncated = tmp_path / "short.jsonl"
        truncated.write_text("\n".join(lines[:-10]) + "\n")
        assert main(["diff", str(trace_path), str(truncated)]) == 1
        assert "(stream ended)" in capsys.readouterr().out

    def test_config_hash_mismatch_warns(self, trace_path, tmp_path, capsys):
        lines = trace_path.read_text().splitlines()
        manifest = json.loads(lines[0])
        manifest["config_hash"] = "deadbeefdeadbeef"
        lines[0] = json.dumps(manifest, sort_keys=True)
        other = tmp_path / "other.jsonl"
        other.write_text("\n".join(lines) + "\n")
        main(["diff", str(trace_path), str(other)])
        assert "config hashes differ" in capsys.readouterr().out


class TestFirstDivergence:
    def test_equal_streams(self):
        events = [{"ev": "hop", "pid": 1}]
        assert first_divergence(events, list(events)) is None

    def test_first_mismatch_index(self):
        a = [{"x": 1}, {"x": 2}, {"x": 3}]
        b = [{"x": 1}, {"x": 9}, {"x": 3}]
        assert first_divergence(a, b) == 1

    def test_length_mismatch(self):
        a = [{"x": 1}, {"x": 2}]
        assert first_divergence(a, a[:1]) == 1
