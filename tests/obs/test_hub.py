"""Per-probe behaviour of the ObservationHub on real tiny runs.

Each probe is exercised through its three states: disabled (the hub is not
attached, or the probe is configured off), enabled, and under time warp.
The zero-overhead contract — results bit-identical with probes on or off —
is asserted here per backend; the cross-backend stream equality lives in
``test_cross_backend.py``.
"""

import pytest

from repro.obs import ObservationConfig
from repro.simulation.simulator import Simulator

BACKENDS = ("object", "soa")


class TestZeroOverheadContract:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_identical_with_probes_on_and_off(self, tiny_params, backend):
        results = []
        for observation in (None, ObservationConfig(snapshot_period=50)):
            sim = Simulator(
                tiny_params.with_backend(backend),
                "Base",
                "ADV+1",
                0.45,
                seed=7,
                observation=observation,
            )
            results.append(sim.run_steady_state(100, 200))
        assert results[0] == results[1]

    def test_probes_never_touch_the_rng_streams(self, tiny_params):
        """After identical runs, every named stream sits at the same position."""
        draws = []
        for observation in (None, ObservationConfig(snapshot_period=50)):
            sim = Simulator(
                tiny_params,
                "Base",
                "ADV+1",
                0.45,
                seed=7,
                observation=observation,
            )
            sim.run_steady_state(100, 200)
            draws.append(
                (
                    sim.rng.random(),
                    sim.arrival_rng.random(),
                    sim.payload_rng.random(),
                )
            )
        assert draws[0] == draws[1]

    def test_disabled_simulator_has_no_hub(self, tiny_params, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        sim = Simulator(tiny_params, "MIN", "UN", 0.2, seed=1)
        assert sim.obs is None
        assert sim.engine.obs is None
        assert sim.network.routing._obs is None


class TestFlightRecorder:
    def test_inject_precedes_hops_and_deliver_closes(self, traced_run):
        sim, _ = traced_run()
        events = sim.obs.flight_events()
        assert events, "sample rate 1.0 must record flights"
        delivered_pids = {e["pid"] for e in events if e["ev"] == "deliver"}
        assert delivered_pids
        pid = sorted(delivered_pids)[0]
        path = sim.obs.flight_events(pid)
        kinds = [e["ev"] for e in path]
        assert kinds[0] == "inject"
        assert kinds[-1] == "deliver"
        assert all(k == "hop" for k in kinds[1:-1]) and len(kinds) >= 3
        hops = [e for e in path if e["ev"] == "hop"]
        # The ejection grant is recorded as a hop event but the packet's hop
        # counter only counts router-to-router traversals.
        assert path[-1]["hops"] == len([h for h in hops if h["kind"] != "eject"])
        cycles = [e["cycle"] for e in hops]
        assert cycles == sorted(cycles)
        assert hops[-1]["kind"] == "eject"
        assert hops[-1]["cls"].startswith("E")

    def test_sample_rate_zero_records_no_flights_but_keeps_links(self, traced_run):
        sim, _ = traced_run(
            observation=ObservationConfig(flight_sample_rate=0.0)
        )
        assert sim.obs.flight_events() == []
        assert sim.obs.link_utilization(), "link counters are not sampled"

    def test_partial_sampling_is_a_subset_of_the_full_stream(self, traced_run):
        full_sim, _ = traced_run()
        part_sim, _ = traced_run(
            observation=ObservationConfig(flight_sample_rate=0.3, snapshot_period=50)
        )
        full_pids = {e["pid"] for e in full_sim.obs.flight_events()}
        part_pids = {e["pid"] for e in part_sim.obs.flight_events()}
        assert part_pids and part_pids < full_pids
        for pid in sorted(part_pids)[:20]:
            assert part_sim.obs.flight_events(pid) == full_sim.obs.flight_events(pid)

    def test_max_events_cap_counts_drops_instead_of_growing(self, traced_run):
        sim, _ = traced_run(observation=ObservationConfig(max_events=25))
        assert len(sim.obs.events) == 25
        assert sim.obs.perf["events_dropped"] > 0


class TestSnapshotsAndWarp:
    def test_snapshot_period_zero_records_none(self, traced_run):
        sim, _ = traced_run(observation=ObservationConfig(snapshot_period=0))
        assert not [e for e in sim.obs.events if e["ev"] == "snapshot"]
        assert sim.obs.perf["snapshots_taken"] == 0

    def test_snapshots_fire_on_schedule(self, traced_run):
        sim, _ = traced_run(observation=ObservationConfig(snapshot_period=50))
        snapshots = [e for e in sim.obs.events if e["ev"] == "snapshot"]
        assert snapshots
        assert sim.obs.perf["snapshots_taken"] == len(snapshots)
        assert all(e["cycle"] % 50 == 0 for e in snapshots)
        first = snapshots[0]
        assert first["inputs"], "a loaded network has buffered packets"
        for rid, port, vc, packets, phits in first["inputs"]:
            assert packets > 0 and phits >= packets

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_warp_records_quiet_ranges_and_skipped_snapshots(
        self, tiny_params, backend
    ):
        sim = Simulator(
            tiny_params.with_backend(backend),
            "MIN",
            "UN",
            0.2,
            seed=3,
            observation=ObservationConfig(snapshot_period=100),
        )
        sim.run_cycles(200)
        sim.traffic.set_offered_load(0.0)
        sim.run_cycles(5_000)  # drain + idle: the engine warps over this
        assert sim.engine.cycles_skipped > 0
        warps = [e for e in sim.obs.events if e["ev"] == "warp"]
        assert warps
        for warp in warps:
            assert warp["end"] > warp["start"]
        skipped = sum(w.get("snapshots_skipped", 0) for w in warps)
        assert skipped > 0
        hub = sim.obs
        hub.finalize(sim.engine)
        assert hub.perf["snapshots_skipped"] == skipped
        assert hub.perf["warp_jumps"] == len(warps)

    def test_warp_on_off_streams_identical_with_probes_on(self, tiny_params):
        flights = []
        for warp in (True, False):
            sim = Simulator(
                tiny_params,
                "Base",
                "UN",
                0.2,
                seed=3,
                time_warp=warp,
                observation=ObservationConfig(),
            )
            sim.run_cycles(300)
            sim.traffic.set_offered_load(0.0)
            sim.run_cycles(3_000)
            flights.append(sim.obs.flight_events())
        assert flights[0] == flights[1]


class TestTriggerTrace:
    def test_adaptive_routing_records_consultations(self, traced_run):
        sim, _ = traced_run(routing="Base")
        summary = sim.obs.trigger_summary()
        assert summary, "ADV+1 past the trigger load must consult counters"
        total = sum(row["consultations"] for row in summary)
        escapes = sum(row["escapes"] for row in summary)
        assert 0 < escapes <= total
        hops = [
            e
            for e in sim.obs.flight_events()
            if e["ev"] == "hop" and "trigger" in e
        ]
        assert len(hops) == total
        for event in hops[:50]:
            trigger = event["trigger"]
            assert trigger["signal"] == "contention"
            assert trigger["threshold"] == sim.network.routing._threshold
            assert trigger["escape"] == (event["kind"] != "minimal")
        last = sim.obs.last_trigger(summary[0]["router"])
        assert last is not None and "pid" in last and "cycle" in last

    def test_oblivious_routing_records_none(self, traced_run):
        sim, _ = traced_run(routing="MIN", pattern="UN", load=0.2)
        assert sim.obs.trigger_summary() == []

    def test_trigger_trace_off_strips_the_probe(self, traced_run):
        sim, _ = traced_run(
            observation=ObservationConfig(trigger_trace=False)
        )
        assert sim.obs.trigger_summary() == []
        assert not [
            e for e in sim.obs.flight_events() if e.get("trigger") is not None
        ]

    @pytest.mark.parametrize(
        "routing,signal,extra_key",
        [
            ("Hybrid", "contention+congestion", "congestion_threshold"),
            ("ECtN", "contention+ectn", "combined_threshold"),
            ("OLM", "occupancy", "min_occupancy"),
        ],
    )
    def test_each_trigger_family_reports_its_signal(
        self, traced_run, routing, signal, extra_key
    ):
        sim, _ = traced_run(routing=routing)
        triggered = [
            e["trigger"]
            for e in sim.obs.flight_events()
            if e.get("trigger") is not None
        ]
        assert triggered
        for trigger in triggered[:20]:
            assert trigger["signal"] == signal
            assert extra_key in trigger
            assert "value" in trigger and "threshold" in trigger


class TestLinkUtilization:
    def test_accumulates_phits_per_directed_link(self, traced_run):
        sim, _ = traced_run()
        rows = sim.obs.link_utilization()
        assert rows
        size = {}
        phits = {}
        for event in sim.obs.flight_events():
            if event["ev"] == "inject":
                size[event["pid"]] = event["size"]
            elif event["ev"] == "hop":
                key = (event["router"], event["out_port"])
                phits[key] = phits.get(key, 0) + size[event["pid"]]
        # Sample rate 1.0: every counted phit comes from a recorded hop.
        for row in rows:
            assert row["phits"] == phits[(row["router"], row["port"])]
            assert row["kind"] in ("G", "L", "E")

    def test_link_probe_off_keeps_no_counters(self, traced_run):
        sim, _ = traced_run(observation=ObservationConfig(link_utilization=False))
        assert sim.obs.link_utilization() == []


class TestPerfBlock:
    def test_run_steady_state_finalizes_telemetry(self, traced_run):
        sim, result = traced_run()
        perf = sim.obs.perf
        assert perf["delivered_packets"] == sim.engine.delivered_packets
        assert perf["cycles_executed"] + perf["cycles_skipped"] == sim.engine.cycle
        assert perf["cycles_observed"] == perf["cycles_executed"]
        assert perf["grants"] > 0
        assert perf["events"] == len(sim.obs.events)
        assert perf["events_dropped"] == 0
        for phase in ("warmup", "measure", "drain"):
            assert perf["phase_seconds"][phase] >= 0.0

    def test_detach_restores_the_unobserved_engine(self, traced_run):
        sim, _ = traced_run()
        sim.engine.detach_observation()
        assert sim.engine.obs is None
        assert sim.network.routing._obs is None
