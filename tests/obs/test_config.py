"""ObservationConfig validation, the hash sampler, and REPRO_OBS parsing."""

import pytest

from repro.obs import ObservationConfig, pid_sampled

FULL = 2**32


class TestPidSampled:
    def test_rate_one_samples_every_pid(self):
        threshold = ObservationConfig(flight_sample_rate=1.0).sample_threshold()
        assert threshold == FULL
        assert all(pid_sampled(pid, threshold) for pid in range(10_000))

    def test_rate_zero_samples_nothing(self):
        threshold = ObservationConfig(flight_sample_rate=0.0).sample_threshold()
        assert threshold == 0
        assert not any(pid_sampled(pid, threshold) for pid in range(10_000))

    def test_partial_rate_hits_roughly_the_requested_fraction(self):
        threshold = ObservationConfig(flight_sample_rate=0.25).sample_threshold()
        hits = sum(pid_sampled(pid, threshold) for pid in range(10_000))
        assert 0.20 < hits / 10_000 < 0.30

    def test_decision_is_deterministic(self):
        threshold = ObservationConfig(flight_sample_rate=0.5).sample_threshold()
        first = [pid_sampled(pid, threshold) for pid in range(1_000)]
        second = [pid_sampled(pid, threshold) for pid in range(1_000)]
        assert first == second


class TestValidation:
    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_sample_rate_out_of_range_rejected(self, rate):
        with pytest.raises(ValueError, match="flight_sample_rate"):
            ObservationConfig(flight_sample_rate=rate)

    def test_negative_snapshot_period_rejected(self):
        with pytest.raises(ValueError, match="snapshot_period"):
            ObservationConfig(snapshot_period=-1)

    def test_negative_max_events_rejected(self):
        with pytest.raises(ValueError, match="max_events"):
            ObservationConfig(max_events=-1)


class TestFromEnv:
    def test_unset_and_zero_mean_disabled(self):
        assert ObservationConfig.from_env({}) is None
        assert ObservationConfig.from_env({"REPRO_OBS": ""}) is None
        assert ObservationConfig.from_env({"REPRO_OBS": "0"}) is None

    def test_one_enables_the_defaults(self):
        assert ObservationConfig.from_env({"REPRO_OBS": "1"}) == ObservationConfig()

    def test_key_value_list_tunes_fields(self):
        config = ObservationConfig.from_env(
            {"REPRO_OBS": "sample=0.25, snapshot=100, link=0, trigger=1, max_events=9"}
        )
        assert config == ObservationConfig(
            flight_sample_rate=0.25,
            snapshot_period=100,
            link_utilization=False,
            trigger_trace=True,
            max_events=9,
        )

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown REPRO_OBS key"):
            ObservationConfig.from_env({"REPRO_OBS": "sampel=0.5"})

    def test_bare_token_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            ObservationConfig.from_env({"REPRO_OBS": "snapshot"})

    # Regression: the parser used to treat anything outside {"0", "false"}
    # as True, so link=False / link=off / link=no all *enabled* the probe.
    @pytest.mark.parametrize("spelling", ["0", "false", "False", "FALSE", "no", "off", "OFF"])
    def test_falsy_spellings_disable(self, spelling):
        config = ObservationConfig.from_env({"REPRO_OBS": f"link={spelling}"})
        assert config.link_utilization is False
        config = ObservationConfig.from_env({"REPRO_OBS": f"trigger={spelling}"})
        assert config.trigger_trace is False

    @pytest.mark.parametrize("spelling", ["1", "true", "True", "yes", "on", "ON"])
    def test_truthy_spellings_enable(self, spelling):
        config = ObservationConfig.from_env(
            {"REPRO_OBS": f"link={spelling},trigger={spelling}"}
        )
        assert config.link_utilization is True
        assert config.trigger_trace is True

    @pytest.mark.parametrize("spelling", ["fasle", "2", "nope", ""])
    def test_unrecognized_boolean_spelling_rejected(self, spelling):
        with pytest.raises(ValueError, match="is not a boolean"):
            ObservationConfig.from_env({"REPRO_OBS": f"link={spelling}"})
        with pytest.raises(ValueError, match="is not a boolean"):
            ObservationConfig.from_env({"REPRO_OBS": f"trigger={spelling}"})
