"""Manifest, config hash, git revision and phase timers."""

import re

import pytest

from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    TRACE_SCHEMA_VERSION,
    ObservationConfig,
    ObservationHub,
    build_manifest,
    config_hash,
    git_revision,
    phase_timer,
)
from repro.simulation.simulator import Simulator


class TestConfigHash:
    def test_stable_for_equal_configurations(self, tiny_params):
        assert config_hash(tiny_params) == config_hash(tiny_params)
        assert re.fullmatch(r"[0-9a-f]{16}", config_hash(tiny_params))

    def test_backend_is_excluded(self, tiny_params):
        """Backends are bit-identical, so their traces share one hash."""
        assert config_hash(tiny_params.with_backend("object")) == config_hash(
            tiny_params.with_backend("soa")
        )

    def test_any_other_field_changes_the_hash(self, tiny_params, small_params):
        assert config_hash(tiny_params) != config_hash(small_params)


class TestGitRevision:
    def test_resolves_this_repository(self):
        rev = git_revision()
        assert rev != "unknown"
        assert re.fullmatch(r"[0-9a-f]{12}", rev)

    def test_unknown_outside_a_repository(self, tmp_path):
        assert git_revision(tmp_path / "nowhere") == "unknown"


class TestManifest:
    def test_simulator_manifest_fields(self, tiny_params):
        sim = Simulator(
            tiny_params,
            "Base",
            "ADV+1",
            0.45,
            seed=7,
            observation=ObservationConfig(),
        )
        manifest = build_manifest(sim)
        assert manifest["ev"] == "manifest"
        assert manifest["schema"] == MANIFEST_SCHEMA_VERSION
        assert manifest["trace_schema"] == TRACE_SCHEMA_VERSION
        assert manifest["config_hash"] == config_hash(tiny_params)
        assert manifest["seed"] == 7
        assert manifest["routing"] == "Base"
        assert manifest["pattern"] == "ADV+1"
        assert manifest["offered_load"] == 0.45
        assert manifest["num_nodes"] == sim.topology.num_nodes
        # attach_observation already stamped the same manifest on the hub.
        assert sim.obs.manifest == manifest


class TestPhaseTimer:
    def test_none_hub_is_a_noop(self):
        with phase_timer(None, "warmup"):
            pass  # must not raise, must not require a hub

    def test_accumulates_into_the_perf_block(self):
        hub = ObservationHub()
        with phase_timer(hub, "measure"):
            pass
        with phase_timer(hub, "measure"):
            pass
        with phase_timer(hub, "drain"):
            pass
        phases = hub.perf["phase_seconds"]
        assert set(phases) == {"measure", "drain"}
        assert phases["measure"] >= 0.0

    def test_records_even_when_the_phase_raises(self):
        hub = ObservationHub()
        with pytest.raises(RuntimeError):
            with phase_timer(hub, "broken"):
                raise RuntimeError("boom")
        assert "broken" in hub.perf["phase_seconds"]


class TestEnvAttach:
    def test_repro_obs_env_attaches_probes(self, tiny_params, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "sample=0.5,snapshot=25")
        sim = Simulator(tiny_params, "MIN", "UN", 0.2, seed=1)
        assert sim.obs is not None
        assert sim.obs.config == ObservationConfig(
            flight_sample_rate=0.5, snapshot_period=25
        )
        assert sim.engine.obs is sim.obs
        assert sim.network.routing._obs is sim.obs

    def test_explicit_config_wins_over_env(self, tiny_params, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        sim = Simulator(
            tiny_params,
            "MIN",
            "UN",
            0.2,
            seed=1,
            observation=ObservationConfig(),
        )
        assert sim.obs is not None
