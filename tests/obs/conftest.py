"""Shared helpers for the observability tests.

Every traced run here uses the ``tiny`` preset with a moderate adversarial
load so the contention triggers actually fire, and sample rate 1.0 so the
flight recorder is exhaustive — the cross-backend equality assertions then
pin the full stream, not a lucky subset.
"""

from __future__ import annotations

import pytest

from repro.obs import ObservationConfig
from repro.simulation.simulator import Simulator


@pytest.fixture
def traced_run(tiny_params):
    """Run one seeded tiny point with probes attached; returns (sim, result)."""

    def _run(
        backend="object",
        routing="Base",
        pattern="ADV+1",
        load=0.45,
        seed=7,
        observation=None,
        warmup=100,
        measure=200,
        **sim_kwargs,
    ):
        if observation is None:
            observation = ObservationConfig(snapshot_period=50)
        sim = Simulator(
            tiny_params.with_backend(backend),
            routing,
            pattern,
            load,
            seed=seed,
            observation=observation,
            **sim_kwargs,
        )
        result = sim.run_steady_state(warmup, measure)
        return sim, result

    return _run
