"""Cross-backend trace equality: object and SoA runs emit identical streams.

The backends are bit-identical by contract; this file pins the stronger
statement that the *observed* streams — flight recorder, link counters,
trigger aggregates and occupancy snapshots — are equal too, which is what
makes ``trace_report diff`` a meaningful debugging tool.
"""

import pytest

from repro.obs import ObservationConfig
from repro.simulation.simulator import Simulator


def _pair(traced_run, **kwargs):
    sims = {}
    for backend in ("object", "soa"):
        sims[backend], _ = traced_run(backend=backend, **kwargs)
    return sims["object"], sims["soa"]


class TestTraceEquality:
    def test_flight_streams_identical(self, traced_run):
        obj, soa = _pair(traced_run)
        events_obj = obj.obs.flight_events()
        events_soa = soa.obs.flight_events()
        assert events_obj, "the traced point must produce events"
        assert events_obj == events_soa

    @pytest.mark.parametrize("routing", ["Hybrid", "OLM"])
    def test_flight_streams_identical_per_trigger_family(self, traced_run, routing):
        obj, soa = _pair(traced_run, routing=routing)
        assert obj.obs.flight_events() == soa.obs.flight_events()

    def test_link_utilization_identical(self, traced_run):
        obj, soa = _pair(traced_run)
        assert obj.obs.link_utilization() == soa.obs.link_utilization()

    def test_trigger_summaries_identical(self, traced_run):
        obj, soa = _pair(traced_run)
        assert obj.obs.trigger_summary() == soa.obs.trigger_summary()

    def test_occupancy_snapshots_identical(self, traced_run):
        obj, soa = _pair(traced_run)
        snaps_obj = [e for e in obj.obs.events if e["ev"] == "snapshot"]
        snaps_soa = [e for e in soa.obs.events if e["ev"] == "snapshot"]
        assert snaps_obj, "snapshot_period=50 must fire within the run"
        assert snaps_obj == snaps_soa

    def test_manifests_share_the_config_hash_but_not_the_backend(self, traced_run):
        obj, soa = _pair(traced_run)
        m_obj, m_soa = obj.obs.manifest, soa.obs.manifest
        assert m_obj["config_hash"] == m_soa["config_hash"]
        assert (m_obj["backend"], m_soa["backend"]) == ("object", "soa")
        for key in ("seed", "routing", "pattern", "offered_load", "num_nodes"):
            assert m_obj[key] == m_soa[key]


class TestWarpIdentityWithProbes:
    @pytest.mark.parametrize("backend", ["object", "soa"])
    def test_warp_on_off_results_identical_with_probes_enabled(
        self, tiny_params, backend
    ):
        results = []
        for warp in (True, False):
            sim = Simulator(
                tiny_params.with_backend(backend),
                "Base",
                "UN",
                0.2,
                seed=3,
                time_warp=warp,
                observation=ObservationConfig(snapshot_period=100),
            )
            results.append(sim.run_steady_state(100, 200))
        assert results[0] == results[1]
