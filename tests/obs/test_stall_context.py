"""Probe-enriched stall diagnostics (`SimulationStallError`)."""

import pytest

from repro.obs import ObservationConfig
from repro.simulation.engine import SimulationStallError
from repro.simulation.simulator import Simulator


@pytest.mark.parametrize("backend", ["object", "soa"])
def test_stall_error_includes_the_recorded_flight_path(
    tiny_params, wedge_ejection_ports, backend
):
    sim = Simulator(
        tiny_params.with_backend(backend),
        "Base",
        "UN",
        offered_load=0.2,
        seed=1,
        stall_watchdog_cycles=100,
        observation=ObservationConfig(),
    )
    wedge_ejection_ports(sim)
    with pytest.raises(SimulationStallError) as excinfo:
        sim.run_cycles(2_000)
    message = str(excinfo.value)
    assert "stall diagnostics" in message
    assert "recorded flight path of pid=" in message


def test_stall_error_without_probes_keeps_the_base_diagnostics(
    tiny_params, wedge_ejection_ports
):
    sim = Simulator(
        tiny_params,
        "MIN",
        "UN",
        offered_load=0.2,
        seed=1,
        stall_watchdog_cycles=100,
    )
    wedge_ejection_ports(sim)
    with pytest.raises(SimulationStallError) as excinfo:
        sim.run_cycles(2_000)
    message = str(excinfo.value)
    assert "oldest buffered packet" in message
    assert "recorded flight path" not in message
