"""Tests for latency/throughput/misrouting statistics, time series and aggregation."""

import math

import numpy as np
import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.latency import LatencyStats
from repro.metrics.misrouting import MisroutingStats
from repro.metrics.statistics import aggregate_rows, aggregate_scalar, average_series
from repro.metrics.throughput import ThroughputStats
from repro.metrics.timeseries import TimeSeriesRecorder
from repro.network.packet import Packet


class TestLatencyStats:
    def test_summary_statistics(self):
        stats = LatencyStats()
        for value in [100, 120, 140, 160, 180]:
            stats.record(value)
        assert stats.count == 5
        assert stats.mean == pytest.approx(140)
        assert stats.minimum == 100 and stats.maximum == 180
        assert stats.percentile(50) == pytest.approx(140)
        assert stats.summary()["p99"] >= stats.summary()["p50"]

    def test_empty_stats_are_nan(self):
        stats = LatencyStats()
        assert math.isnan(stats.mean)
        assert math.isnan(stats.percentile(99))
        assert stats.minimum is None

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().record(-1)


class TestThroughputStats:
    def test_accepted_load_normalisation(self):
        stats = ThroughputStats(num_nodes=10)
        stats.set_window(100)
        for _ in range(50):
            stats.record_delivery(8)
        assert stats.accepted_load == pytest.approx(400 / 1000)

    def test_without_window_is_nan(self):
        stats = ThroughputStats(num_nodes=10)
        stats.record_delivery(8)
        assert math.isnan(stats.accepted_load)

    def test_rejects_invalid_arguments(self):
        with pytest.raises(ValueError):
            ThroughputStats(0)
        with pytest.raises(ValueError):
            ThroughputStats(1).set_window(-5)


class TestMisroutingStats:
    def test_fractions(self):
        stats = MisroutingStats()
        stats.record(globally_misrouted=True, locally_misrouted=False, hops=5)
        stats.record(globally_misrouted=False, locally_misrouted=True, hops=3)
        stats.record(globally_misrouted=False, locally_misrouted=False, hops=2)
        assert stats.global_misroute_fraction == pytest.approx(1 / 3)
        assert stats.local_misroute_fraction == pytest.approx(1 / 3)
        assert stats.mean_hops == pytest.approx(10 / 3)

    def test_empty_is_nan(self):
        assert math.isnan(MisroutingStats().global_misroute_fraction)


class TestTimeSeriesRecorder:
    def test_binning_by_creation_cycle(self):
        recorder = TimeSeriesRecorder(bin_size=10, start_cycle=0, end_cycle=40)
        recorder.record(5, 100, globally_misrouted=False, size_phits=8)
        recorder.record(7, 200, globally_misrouted=True, size_phits=8)
        recorder.record(25, 300, globally_misrouted=True, size_phits=8)
        recorder.record(45, 400, globally_misrouted=True, size_phits=8)  # outside window
        assert recorder.bins() == [0, 20]
        assert recorder.latency_series() == [150.0, 300.0]
        assert recorder.misrouted_series() == [0.5, 1.0]
        rows = recorder.as_rows()
        assert rows[0]["packets"] == 2

    def test_rejects_bad_bin_size(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(bin_size=0)


class TestMetricsCollector:
    def _delivered_packet(self, created, delivered, misrouted=False):
        p = Packet(pid=0, src=0, dst=1, size_phits=8, creation_cycle=created)
        p.delivered_cycle = delivered
        p.globally_misrouted = misrouted
        return p

    def test_window_filtering(self):
        collector = MetricsCollector(num_nodes=4, measure_start=100, measure_end=200)
        collector.finalize_window()
        # Created before the window: throughput counts it, latency does not.
        collector.record_delivery(self._delivered_packet(50, 150), 150)
        # Created and delivered inside the window: both count.
        collector.record_delivery(self._delivered_packet(120, 180, misrouted=True), 180)
        # Delivered after the window: latency counts (created inside), throughput not.
        collector.record_delivery(self._delivered_packet(150, 250), 250)
        assert collector.latency.count == 2
        assert collector.throughput.delivered_packets == 2
        assert collector.misrouting.delivered == 2
        assert collector.misrouting.globally_misrouted == 1
        summary = collector.summary()
        assert summary["latency_count"] == 2.0

    def test_finalize_window_requires_end(self):
        collector = MetricsCollector(num_nodes=4, measure_start=0, measure_end=None)
        with pytest.raises(ValueError):
            collector.finalize_window()


class TestAggregation:
    def test_aggregate_scalar(self):
        result = aggregate_scalar([10.0, 12.0, 14.0])
        assert result.mean == pytest.approx(12.0)
        assert result.n == 3
        assert result.ci95 > 0

    def test_aggregate_scalar_ignores_nan(self):
        result = aggregate_scalar([10.0, float("nan"), 14.0])
        assert result.mean == pytest.approx(12.0)
        assert result.n == 2

    def test_aggregate_scalar_empty(self):
        assert math.isnan(aggregate_scalar([]).mean)

    def test_aggregate_rows(self):
        rows = [{"latency": 10.0, "load": 0.5}, {"latency": 20.0, "load": 0.5}]
        out = aggregate_rows(rows, ["latency", "load"])
        assert out["latency"].mean == pytest.approx(15.0)
        assert out["load"].std == pytest.approx(0.0)

    def test_average_series_handles_ragged_and_nan(self):
        merged = average_series([[1.0, 2.0, 3.0], [3.0, float("nan")]])
        assert merged[0] == pytest.approx(2.0)
        assert merged[1] == pytest.approx(2.0)
        assert merged[2] == pytest.approx(3.0)

    def test_average_series_empty(self):
        assert average_series([]) == []
