"""Tests for the round-robin arbiters and the separable allocator."""

from collections import Counter

import pytest

from repro.network.allocator import AllocationRequest, RoundRobinArbiter, SeparableAllocator


class TestRoundRobinArbiter:
    def test_grants_requested_client(self):
        arb = RoundRobinArbiter(4)
        assert arb.arbitrate([2]) == 2

    def test_empty_requests_return_minus_one(self):
        assert RoundRobinArbiter(4).arbitrate([]) == -1

    def test_rotation_is_fair(self):
        arb = RoundRobinArbiter(3)
        grants = [arb.arbitrate([0, 1, 2]) for _ in range(9)]
        counts = Counter(grants)
        assert counts == {0: 3, 1: 3, 2: 3}
        # Strict rotation: each client granted once every 3 rounds.
        assert grants[:3] != grants[1:4]

    def test_pointer_skips_non_requesting_clients(self):
        arb = RoundRobinArbiter(4)
        assert arb.arbitrate([3]) == 3
        # Pointer is now 0; client 2 requests alone and must win.
        assert arb.arbitrate([2]) == 2

    def test_rejects_zero_clients(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)


def request(in_port, vc, out_port, size=4):
    return AllocationRequest(input_port=in_port, input_vc=vc, output_port=out_port, size_phits=size)


class TestSeparableAllocator:
    def test_single_request_granted(self):
        alloc = SeparableAllocator(num_ports=4, max_vcs=2)
        grants = alloc.allocate([request(0, 0, 3)])
        assert len(grants) == 1
        assert grants[0].output_port == 3

    def test_at_most_one_grant_per_output_port(self):
        alloc = SeparableAllocator(num_ports=4, max_vcs=2)
        grants = alloc.allocate([request(0, 0, 3), request(1, 0, 3), request(2, 0, 3)])
        assert len(grants) == 1

    def test_at_most_one_grant_per_input_port(self):
        alloc = SeparableAllocator(num_ports=4, max_vcs=3)
        grants = alloc.allocate([request(0, 0, 1), request(0, 1, 2), request(0, 2, 3)])
        assert len(grants) == 1
        assert grants[0].input_port == 0

    def test_disjoint_requests_all_granted(self):
        alloc = SeparableAllocator(num_ports=4, max_vcs=2)
        reqs = [request(0, 0, 2), request(1, 0, 3)]
        grants = alloc.allocate(reqs)
        assert {g.input_port for g in grants} == {0, 1}
        assert {g.output_port for g in grants} == {2, 3}

    def test_empty_request_list(self):
        alloc = SeparableAllocator(num_ports=2, max_vcs=1)
        assert alloc.allocate([]) == []

    def test_fairness_across_rounds(self):
        # Two inputs competing for the same output should alternate wins.
        alloc = SeparableAllocator(num_ports=3, max_vcs=1)
        winners = []
        for _ in range(6):
            grants = alloc.allocate([request(0, 0, 2), request(1, 0, 2)])
            winners.append(grants[0].input_port)
        assert Counter(winners) == {0: 3, 1: 3}

    def test_payload_passthrough(self):
        alloc = SeparableAllocator(num_ports=2, max_vcs=1)
        token = object()
        req = AllocationRequest(input_port=0, input_vc=0, output_port=1, size_phits=4, payload=token)
        grants = alloc.allocate([req])
        assert grants[0].payload is token
