"""Tests for input/output port state: credits, arrivals, pipelines."""

import pytest

from repro.network.packet import Packet
from repro.network.ports import InputPort, OutputPort
from repro.topology.base import PortKind


def make_packet(pid=0, size=4):
    return Packet(pid=pid, src=0, dst=1, size_phits=size, creation_cycle=0)


class TestInputPort:
    def test_arrivals_released_in_time_order(self):
        ip = InputPort(router_id=0, port=2, kind=PortKind.LOCAL, num_vcs=2, vc_capacity_phits=16)
        ip.schedule_arrival(10, 0, make_packet(0))
        ip.schedule_arrival(12, 1, make_packet(1))
        assert ip.pop_arrivals(9) == []
        ready = ip.pop_arrivals(11)
        assert [(vc, p.pid) for vc, p in ready] == [(0, 0)]
        ready = ip.pop_arrivals(20)
        assert [(vc, p.pid) for vc, p in ready] == [(1, 1)]

    def test_occupancy_accounting(self):
        ip = InputPort(router_id=0, port=0, kind=PortKind.INJECTION, num_vcs=3, vc_capacity_phits=16)
        ip.vcs[0].buffer.push(make_packet(0))
        ip.vcs[2].buffer.push(make_packet(1))
        assert ip.occupancy_phits() == 8
        assert ip.total_packets() == 2


class TestOutputPort:
    def make_port(self, vcs=2, capacity=8, latency=5):
        return OutputPort(
            router_id=0,
            port=4,
            kind=PortKind.GLOBAL,
            buffer_capacity_phits=16,
            downstream_vcs=vcs,
            downstream_vc_capacity_phits=capacity,
            link_latency=latency,
            neighbor=(1, 4),
        )

    def test_credit_lifecycle(self):
        op = self.make_port()
        assert op.credits == [8, 8]
        assert op.has_credits(0, 4)
        op.consume_credits(0, 4)
        assert op.credits[0] == 4
        assert op.credit_occupancy(0) == 4
        assert op.credit_occupancy() == 4
        op.schedule_credit_return(20, 0, 4)
        op.apply_credit_returns(19)
        assert op.credits[0] == 4  # not yet arrived
        op.apply_credit_returns(20)
        assert op.credits[0] == 8

    def test_credit_underflow_and_overflow_detected(self):
        op = self.make_port()
        with pytest.raises(RuntimeError):
            op.consume_credits(0, 9)
        op.schedule_credit_return(0, 0, 1)
        with pytest.raises(RuntimeError):
            op.apply_credit_returns(0)

    def test_ejection_port_has_effectively_infinite_credits(self):
        op = OutputPort(
            router_id=0,
            port=0,
            kind=PortKind.INJECTION,
            buffer_capacity_phits=16,
            downstream_vcs=3,
            downstream_vc_capacity_phits=16,
            link_latency=1,
            neighbor=None,
        )
        assert op.num_downstream_vcs == 1
        assert op.has_credits(0, 10_000)

    def test_pipeline_drain_respects_ready_cycle(self):
        op = self.make_port()
        op.buffer.commit(4)
        op.push_pipeline(15, make_packet(0))
        op.drain_pipeline(14)
        assert op.buffer.empty
        op.drain_pipeline(15)
        assert op.buffer.head().pid == 0

    def test_total_occupancy_combines_buffer_and_credits(self):
        op = self.make_port()
        op.buffer.commit(4)
        op.consume_credits(1, 8)
        assert op.local_occupancy() == 4
        assert op.total_occupancy() == 12
