"""Tests for the router model, the node injection logic and the network wiring."""

import numpy as np
import pytest

from repro.config.parameters import SimulationParameters
from repro.network.network import Network
from repro.network.packet import Packet
from repro.routing import create_routing
from repro.simulation.simulator import Simulator
from repro.topology.base import PortKind
from repro.topology.dragonfly import DragonflyTopology


@pytest.fixture
def tiny_network(tiny_params):
    topo = DragonflyTopology(tiny_params.topology)
    rng = np.random.default_rng(1)
    routing = create_routing("MIN", topo, tiny_params, rng)
    return Network(topo, tiny_params, routing)


class TestNetworkConstruction:
    def test_router_and_node_counts(self, tiny_network, tiny_params):
        assert len(tiny_network.routers) == tiny_params.topology.num_routers
        assert len(tiny_network.nodes) == tiny_params.topology.num_nodes

    def test_ports_match_topology_kinds(self, tiny_network):
        topo = tiny_network.topology
        for router in tiny_network.routers:
            assert len(router.input_ports) == topo.router_radix
            assert len(router.output_ports) == topo.router_radix
            for port in range(topo.router_radix):
                assert router.input_ports[port].kind == topo.port_kind(port)
                assert router.output_ports[port].kind == topo.port_kind(port)

    def test_credit_counts_match_downstream_buffer(self, tiny_network, tiny_params):
        topo = tiny_network.topology
        for router in tiny_network.routers:
            for port in range(topo.router_radix):
                out = router.output_ports[port]
                kind = topo.port_kind(port)
                if kind is PortKind.INJECTION:
                    continue
                expected = tiny_params.input_buffer_phits(kind.value)
                downstream_router, downstream_port = out.neighbor
                downstream_in = tiny_network.routers[downstream_router].input_ports[downstream_port]
                assert len(out.credits) == len(downstream_in.vcs)
                for vc_buffer, credit in zip(downstream_in.vcs, out.max_credits):
                    assert credit == vc_buffer.buffer.capacity_phits == expected

    def test_link_latencies_by_kind(self, tiny_network, tiny_params):
        topo = tiny_network.topology
        router = tiny_network.routers[0]
        for port in range(topo.router_radix):
            out = router.output_ports[port]
            kind = topo.port_kind(port)
            if kind is PortKind.LOCAL:
                assert out.link_latency == tiny_params.local_link_latency
            elif kind is PortKind.GLOBAL:
                assert out.link_latency == tiny_params.global_link_latency

    def test_group_routers_accessor(self, tiny_network):
        group1 = tiny_network.group_routers(1)
        assert all(r.group == 1 for r in group1)
        assert len(group1) == tiny_network.topology.config.a

    def test_occupancy_summary_empty_at_start(self, tiny_network):
        summary = tiny_network.occupancy_summary()
        assert summary == {"buffered_packets": 0, "source_queued": 0}


class TestSinglePacketTraversal:
    def _deliver_one(self, params, src, dst, routing="MIN"):
        """Inject one packet and run until delivery; return (packet, cycles)."""
        sim = Simulator(params, routing, "UN", offered_load=0.0, seed=3)
        packet = Packet(pid=0, src=src, dst=dst, size_phits=params.packet_size_phits, creation_cycle=0)
        sim.network.nodes[src].enqueue(packet)
        for _ in range(2000):
            sim.engine.step()
            if packet.delivered:
                return packet, sim.engine.cycle
        raise AssertionError("packet was not delivered")

    def test_same_router_delivery_latency(self, tiny_params):
        topo = DragonflyTopology(tiny_params.topology)
        src, dst = 0, 1
        assert topo.node_router(src) == topo.node_router(dst)
        packet, _ = self._deliver_one(tiny_params, src, dst)
        assert packet.hops == 0
        # router pipeline + ejection serialization (+1 cycle granularity slack)
        expected_min = tiny_params.router_latency + tiny_params.packet_size_phits
        assert packet.latency >= expected_min
        assert packet.latency <= expected_min + 4

    def test_cross_group_delivery_hops_and_latency(self, tiny_params):
        topo = DragonflyTopology(tiny_params.topology)
        src = 0
        dst = topo.group_nodes(2)[-1]
        packet, _ = self._deliver_one(tiny_params, src, dst)
        assert 1 <= packet.hops <= 3
        assert packet.global_hops == 1
        assert not packet.misrouted
        # Lower bound: each hop pays router latency + serialization, plus the
        # link latencies of at least one global link.
        lower = (
            (packet.hops + 1) * tiny_params.router_latency
            + tiny_params.global_link_latency
            + tiny_params.packet_size_phits
        )
        assert packet.latency >= lower

    def test_delivery_with_every_routing(self, tiny_params):
        topo = DragonflyTopology(tiny_params.topology)
        dst = topo.group_nodes(1)[0]
        for routing in ("MIN", "VAL", "PB", "OLM", "Base", "Hybrid", "ECtN"):
            packet, _ = self._deliver_one(tiny_params, 0, dst, routing=routing)
            assert packet.delivered, routing


class TestNodeInjection:
    def test_injection_rate_capped_at_one_phit_per_cycle(self, tiny_params):
        sim = Simulator(tiny_params, "MIN", "UN", offered_load=0.0, seed=5)
        node = sim.network.nodes[0]
        size = tiny_params.packet_size_phits
        for pid in range(4):
            node.enqueue(Packet(pid=pid, src=0, dst=6, size_phits=size, creation_cycle=0))
        injected_cycles = []
        for cycle in range(4 * size + 2):
            packet = node.try_inject(cycle)
            if packet is not None:
                injected_cycles.append(cycle)
        assert len(injected_cycles) == 4
        gaps = np.diff(injected_cycles)
        assert all(gap >= size for gap in gaps)

    def test_injection_blocked_when_buffers_full(self, tiny_params):
        sim = Simulator(tiny_params, "MIN", "UN", offered_load=0.0, seed=5)
        node = sim.network.nodes[0]
        port = sim.network.routers[0].input_ports[node.port]
        size = tiny_params.packet_size_phits
        capacity_packets = sum(vc.buffer.capacity_phits // size for vc in port.vcs)
        for pid in range(capacity_packets + 3):
            node.enqueue(Packet(pid=pid, src=0, dst=6, size_phits=size, creation_cycle=0))
        injected = 0
        cycle = 0
        # Inject as fast as allowed without ever running the router (so the
        # buffers never drain): the node must stop at the buffer capacity.
        for _ in range(capacity_packets + 10):
            if node.try_inject(cycle) is not None:
                injected += 1
            cycle += size
        assert injected == capacity_packets
        assert node.source_queue_length == 3
