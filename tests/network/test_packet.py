"""Tests for the packet model."""

from repro.network.packet import Packet, RoutingPhase


def test_latency_properties():
    p = Packet(pid=0, src=0, dst=5, size_phits=8, creation_cycle=10)
    assert p.latency is None
    assert p.queue_latency is None
    assert not p.delivered
    p.injection_cycle = 14
    p.delivered_cycle = 150
    assert p.queue_latency == 4
    assert p.latency == 140
    assert p.delivered


def test_record_hop_updates_counters():
    p = Packet(pid=0, src=0, dst=5, size_phits=8, creation_cycle=0)
    p.record_hop(is_global=False)
    assert (p.local_hops, p.global_hops, p.hops) == (1, 0, 1)
    assert p.local_hops_in_group == 1
    p.record_hop(is_global=True)
    assert (p.local_hops, p.global_hops, p.hops) == (1, 1, 2)
    # Entering a new group resets the per-group local hop counter.
    assert p.local_hops_in_group == 0
    p.record_hop(is_global=False)
    assert p.local_hops_in_group == 1


def test_misrouted_flag_combines_global_and_local():
    p = Packet(pid=0, src=0, dst=5, size_phits=8, creation_cycle=0)
    assert not p.misrouted
    p.locally_misrouted = True
    assert p.misrouted
    p.locally_misrouted = False
    p.globally_misrouted = True
    assert p.misrouted


def test_default_routing_state():
    p = Packet(pid=1, src=2, dst=3, size_phits=4, creation_cycle=7)
    assert p.phase is RoutingPhase.MINIMAL
    assert p.valiant_router is None
    assert p.intermediate_group is None
    assert p.contention_port is None
    assert p.ectn_offset is None
    assert not p.must_misroute_global
