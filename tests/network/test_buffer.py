"""Tests for the VC and output buffers."""

import pytest

from repro.network.buffer import OutputBuffer, VCBuffer
from repro.network.packet import Packet


def make_packet(pid=0, size=4):
    return Packet(pid=pid, src=0, dst=1, size_phits=size, creation_cycle=0)


class TestVCBuffer:
    def test_push_pop_fifo_order(self):
        buf = VCBuffer(16)
        packets = [make_packet(i) for i in range(3)]
        for p in packets:
            buf.push(p)
        assert buf.num_packets == 3
        assert buf.occupied_phits == 12
        assert [buf.pop().pid for _ in range(3)] == [0, 1, 2]
        assert buf.empty

    def test_head_does_not_remove(self):
        buf = VCBuffer(8)
        p = make_packet()
        buf.push(p)
        assert buf.head() is p
        assert buf.num_packets == 1

    def test_virtual_cut_through_admission(self):
        buf = VCBuffer(10)
        buf.push(make_packet(0, size=4))
        buf.push(make_packet(1, size=4))
        assert not buf.can_accept(4)  # only 2 phits left
        assert buf.can_accept(2)
        with pytest.raises(OverflowError):
            buf.push(make_packet(2, size=4))

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            VCBuffer(4).pop()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            VCBuffer(0)

    def test_iteration_and_len(self):
        buf = VCBuffer(32)
        for i in range(4):
            buf.push(make_packet(i))
        assert len(buf) == 4
        assert [p.pid for p in buf] == [0, 1, 2, 3]


class TestOutputBuffer:
    def test_commit_then_enqueue_accounting(self):
        buf = OutputBuffer(16)
        buf.commit(4)
        assert buf.committed_phits == 4
        assert buf.free_phits == 12
        p = make_packet()
        buf.enqueue(p)
        assert buf.head() is p
        popped = buf.pop()
        assert popped is p
        assert buf.committed_phits == 0

    def test_over_commit_raises(self):
        buf = OutputBuffer(8)
        buf.commit(8)
        assert not buf.can_commit(1)
        with pytest.raises(OverflowError):
            buf.commit(1)

    def test_pop_at_releases_space(self):
        buf = OutputBuffer(32)
        packets = [make_packet(i) for i in range(3)]
        for p in packets:
            buf.commit(p.size_phits)
            buf.enqueue(p)
        middle = buf.pop_at(1)
        assert middle.pid == 1
        assert [p.pid for p in buf.packets()] == [0, 2]
        assert buf.committed_phits == 8
        with pytest.raises(IndexError):
            buf.pop_at(5)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            OutputBuffer(8).pop()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            OutputBuffer(0)
