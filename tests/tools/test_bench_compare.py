"""Semantics of the perf-trajectory comparison gate."""

import json

import pytest

from repro.tools.bench_compare import compare, load_timings, main


def _artifact(path, tests, schema="bench-trajectory-v3"):
    path.write_text(json.dumps({"schema": schema, "tests": tests}))
    return path


def _entry(seconds, backend="soa", cps=1000.0):
    return {"seconds": seconds, "cycles_per_second": cps, "backend": backend}


class TestLoadTimings:
    def test_v1_schema(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps({"schema": "bench-trajectory-v1", "timings_s": {"t": 1.5}})
        )
        assert load_timings(path) == {"t": {"seconds": 1.5}}

    def test_v3_schema_carries_backend(self, tmp_path):
        path = _artifact(tmp_path / "b.json", {"t": _entry(2.0)})
        assert load_timings(path)["t"]["backend"] == "soa"

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"schema": "bench-trajectory-v99"}))
        with pytest.raises(ValueError, match="unknown perf-trajectory schema"):
            load_timings(path)


class TestCompare:
    def test_within_tolerance_passes(self):
        assert compare({"t": _entry(1.0)}, {"t": _entry(1.2)}, tolerance=1.5) == 0

    def test_slowdown_beyond_tolerance_fails(self):
        assert compare({"t": _entry(1.0)}, {"t": _entry(2.0)}, tolerance=1.5) == 1

    def test_missing_baseline_test_fails(self):
        baseline = {"a": _entry(1.0), "b": _entry(1.0)}
        assert compare(baseline, {"a": _entry(1.0)}, tolerance=1.5) == 1

    def test_subset_permits_partial_runs(self):
        baseline = {"a": _entry(1.0), "b": _entry(1.0)}
        assert compare(baseline, {"a": _entry(1.0)}, tolerance=1.5, subset=True) == 0

    def test_cross_backend_rows_never_count_as_regressions(self):
        baseline = {"t": _entry(1.0, backend="object")}
        new = {"t": _entry(10.0, backend="soa")}
        assert compare(baseline, new, tolerance=1.5) == 0

    def test_new_tests_without_baseline_pass(self):
        assert compare({"a": _entry(1.0)}, {"a": _entry(1.0), "b": _entry(9.9)}, 1.5) == 0


class TestMain:
    def test_exit_codes(self, tmp_path):
        base = _artifact(tmp_path / "base.json", {"t": _entry(1.0)})
        good = _artifact(tmp_path / "good.json", {"t": _entry(1.1)})
        bad = _artifact(tmp_path / "bad.json", {"t": _entry(9.0)})
        assert main([str(base), str(good)]) == 0
        assert main([str(base), str(bad)]) == 1
        assert main([str(base), str(tmp_path / "absent.json")]) == 2
        assert main([str(base), str(tmp_path / "absent.json"), "--missing-ok"]) == 0
