"""The profiling harness CLI, focused on the machine-readable output."""

import json

from repro.tools.profile_hotpath import main


def _run_json(capsys, *extra):
    assert (
        main(["--preset", "tiny", "--cycles", "120", "--json", *extra]) == 0
    )
    return json.loads(capsys.readouterr().out)


class TestJsonOutput:
    def test_document_shape(self, capsys):
        doc = _run_json(capsys)
        assert doc["schema"] == "profile-hotpath-v1"
        assert doc["scenario"] == "steady"
        assert doc["backend"] == "object"
        assert doc["cycles_executed"] > 0
        assert doc["wall_seconds"] > 0
        assert doc["cycles_per_second"] > 0
        assert doc["top_functions"]

    def test_top_functions_respect_sort_and_limit(self, capsys):
        doc = _run_json(capsys, "--top", "5", "--sort", "cumulative")
        rows = doc["top_functions"]
        assert len(rows) == 5
        cumtimes = [row["cumtime"] for row in rows]
        assert cumtimes == sorted(cumtimes, reverse=True)
        for row in rows:
            assert {"file", "line", "function", "ncalls", "tottime", "cumtime"} <= set(
                row
            )

    def test_text_mode_unchanged(self, capsys):
        assert main(["--preset", "tiny", "--cycles", "120"]) == 0
        out = capsys.readouterr().out
        assert "scenario=steady" in out
        assert "cycles/s" in out
