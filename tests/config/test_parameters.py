"""Tests for the Table I parameter sets and their validation."""

import dataclasses

import pytest

from repro.config.parameters import (
    PAPER_PARAMETERS,
    SMALL_PARAMETERS,
    TINY_PARAMETERS,
    DragonflyConfig,
    SimulationParameters,
    validate_parameters,
)


class TestDragonflyConfig:
    def test_paper_preset_matches_table1(self):
        cfg = DragonflyConfig.paper()
        assert (cfg.p, cfg.a, cfg.h) == (8, 16, 8)
        assert cfg.num_groups == 129
        assert cfg.num_routers == 129 * 16
        assert cfg.num_nodes == 16_512
        assert cfg.router_radix == 31  # 8 injection + 15 local + 8 global
        assert cfg.global_links_per_group == 128

    def test_small_preset_is_balanced(self):
        cfg = DragonflyConfig.small()
        assert cfg.a == 2 * cfg.h  # balanced dragonfly proportions
        assert cfg.num_groups == cfg.a * cfg.h + 1

    def test_derived_quantities_consistent(self):
        cfg = DragonflyConfig(p=3, a=5, h=2)
        assert cfg.num_groups == 11
        assert cfg.routers_per_group == 5
        assert cfg.local_ports_per_router == 4
        assert cfg.nodes_per_group == 15
        assert cfg.num_nodes == cfg.num_groups * 15
        assert cfg.router_radix == 3 + 4 + 2

    @pytest.mark.parametrize("bad", [dict(p=0, a=2, h=1), dict(p=1, a=0, h=1), dict(p=1, a=2, h=0)])
    def test_rejects_nonpositive_parameters(self, bad):
        with pytest.raises(ValueError):
            DragonflyConfig(**bad)

    def test_rejects_unknown_arrangement(self):
        with pytest.raises(ValueError):
            DragonflyConfig(p=1, a=2, h=1, global_arrangement="ring")


class TestSimulationParameters:
    def test_paper_defaults_match_table1(self):
        p = PAPER_PARAMETERS
        assert p.router_latency == 5
        assert p.internal_speedup == 2
        assert p.local_link_latency == 10
        assert p.global_link_latency == 100
        assert p.packet_size_phits == 8
        assert p.global_port_vcs == 2
        assert p.local_port_vcs == 3
        assert p.injection_vcs == 3
        assert p.local_port_vcs_oblivious == 4
        assert p.output_buffer_phits == 32
        assert p.local_input_buffer_phits == 32
        assert p.global_input_buffer_phits == 256
        assert p.base_contention_threshold == 6
        assert p.hybrid_contention_threshold == 7
        assert p.ectn_combined_threshold == 10
        assert p.ectn_update_period == 100

    def test_presets_validate(self):
        for preset in (PAPER_PARAMETERS, SMALL_PARAMETERS, TINY_PARAMETERS,
                       SimulationParameters.transient()):
            validate_parameters(preset)  # should not raise

    def test_vcs_for_port(self):
        p = PAPER_PARAMETERS
        assert p.vcs_for_port("injection") == 3
        assert p.vcs_for_port("global") == 2
        assert p.vcs_for_port("local") == 3
        assert p.vcs_for_port("local", routing_needs_extra_local_vc=True) == 4
        with pytest.raises(ValueError):
            p.vcs_for_port("optical")

    def test_input_buffer_phits_by_kind(self):
        p = PAPER_PARAMETERS
        assert p.input_buffer_phits("global") == 256
        assert p.input_buffer_phits("local") == 32
        assert p.input_buffer_phits("injection") == 32

    def test_with_buffers_returns_modified_copy(self):
        p = SMALL_PARAMETERS
        q = p.with_buffers(local=128, global_=512)
        assert q.local_input_buffer_phits == 128
        assert q.global_input_buffer_phits == 512
        assert p.local_input_buffer_phits != 128  # original untouched

    def test_with_threshold_returns_modified_copy(self):
        q = SMALL_PARAMETERS.with_threshold(9)
        assert q.base_contention_threshold == 9
        assert SMALL_PARAMETERS.base_contention_threshold != 9

    def test_with_topology(self):
        cfg = DragonflyConfig(p=1, a=2, h=1)
        q = SMALL_PARAMETERS.with_topology(cfg)
        assert q.topology is cfg

    def test_as_dict_contains_key_parameters(self):
        d = PAPER_PARAMETERS.as_dict()
        assert d["nodes"] == 16_512
        assert d["router_radix"] == 31
        assert d["packet_size_phits"] == 8
        assert d["base_contention_threshold"] == 6

    def test_buffer_must_hold_a_packet(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TINY_PARAMETERS, output_buffer_phits=1)

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TINY_PARAMETERS, olm_congestion_threshold=0.0)
        with pytest.raises(ValueError):
            dataclasses.replace(TINY_PARAMETERS, base_contention_threshold=0)
        with pytest.raises(ValueError):
            dataclasses.replace(TINY_PARAMETERS, ectn_update_period=0)

    def test_rejects_fewer_oblivious_vcs_than_adaptive(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TINY_PARAMETERS, local_port_vcs_oblivious=1)

    def test_rejects_zero_link_latency(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TINY_PARAMETERS, local_link_latency=0)
