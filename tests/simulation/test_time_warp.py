"""Tests for the time-warp engine path and the block-sampled traffic streams.

The contract under test: a run with ``time_warp=True`` is bit-identical to a
cycle-by-cycle run — every warped-over cycle is one in which ``step`` would
have been a complete no-op — and the pre-sampled arrival stream is invariant
to the block size and to mid-run offered-load changes.
"""

import numpy as np
import pytest

from repro.config.parameters import SimulationParameters
from repro.network.packet import Packet
from repro.routing import ROUTING_REGISTRY
from repro.routing.base import RoutingAlgorithm
from repro.simulation.engine import SimulationStallError
from repro.simulation.simulator import Simulator
from repro.traffic.bernoulli import BernoulliTrafficGenerator
from repro.traffic.uniform import UniformTraffic

ALL_ROUTINGS = sorted(ROUTING_REGISTRY)


def _streams(seed: int):
    payload_seq, arrival_seq = np.random.SeedSequence(seed).spawn(2)
    return np.random.default_rng(payload_seq), np.random.default_rng(arrival_seq)


# ---------------------------------------------------------------- equivalence
class TestWarpEqualsNoWarp:
    @pytest.mark.parametrize("routing", ALL_ROUTINGS)
    def test_steady_state_bit_identical(self, tiny_params, routing):
        results = []
        for time_warp in (True, False):
            sim = Simulator(
                tiny_params, routing, "UN", offered_load=0.1, seed=9, time_warp=time_warp
            )
            results.append(sim.run_steady_state(warmup_cycles=150, measure_cycles=300))
        assert results[0] == results[1]

    def test_transient_series_bit_identical_across_bin_jumps(self, tiny_params):
        """Warping over bin boundaries must not change the binned series."""
        series = []
        skipped = []
        for time_warp in (True, False):
            sim = Simulator.build_transient(
                tiny_params,
                "Base",
                "UN",
                "ADV+1",
                offered_load=0.04,
                switch_cycle=200,
                seed=3,
                time_warp=time_warp,
            )
            result = sim.run_transient(
                warmup_cycles=200, observe_before=100, observe_after=200, bin_size=25
            )
            series.append((result.cycles, result.mean_latency, result.misrouted_fraction))
            skipped.append(sim.engine.cycles_skipped)
        assert series[0] == series[1]
        # The low load must actually have exercised the warp path.
        assert skipped[0] > 0
        assert skipped[1] == 0

    def test_zero_load_run_is_fully_warped(self, tiny_params):
        sim = Simulator(tiny_params, "MIN", "UN", offered_load=0.0, seed=1)
        sim.run_cycles(5_000)
        assert sim.engine.cycle == 5_000
        assert sim.engine.cycles_skipped == 5_000

    def test_drain_is_warped_after_network_empties(self, tiny_params):
        sim = Simulator(tiny_params, "Base", "UN", offered_load=0.3, seed=4)
        sim.run_cycles(300)
        sim.traffic.set_offered_load(0.0)
        sim.run_cycles(20_000)
        assert sim.engine.total_buffered_packets() == 0
        assert sim.engine.cycles_skipped > 15_000
        assert sim.engine.delivered_packets == sim.traffic.generated_packets - (
            sim.network.total_source_queued()
        )

    def test_warp_lands_exactly_on_scheduled_link_arrival(self, tiny_params):
        """A lone packet on a slow link: the engine jumps to its arrival."""
        sim = Simulator(tiny_params, "MIN", "UN", offered_load=0.0, seed=1)
        dst = 0  # node 0 is attached to router 0: next hop is ejection
        packet = Packet(
            pid=0, src=2, dst=dst, size_phits=tiny_params.packet_size_phits,
            creation_cycle=0,
        )
        arrival_cycle = 400
        # Use an injection port: it has no upstream router, so the fabricated
        # arrival does not owe anyone a credit return.
        sim.engine.schedule_arrival(0, 0, arrival_cycle, 0, packet)
        sim.run_cycles(1_000)
        assert sim.engine.delivered_packets == 1
        assert packet.delivered_cycle >= arrival_cycle
        # Everything before the arrival (and after the delivery) warps.
        assert sim.engine.cycles_skipped > 900


# ------------------------------------------------------------------- watchdog
class TestWatchdogUnderWarp:
    def test_genuine_stall_is_detected_despite_far_future_event(self, tiny_params):
        """A far-future event must not let the warp overshoot the watchdog."""
        sim = Simulator(
            tiny_params, "MIN", "UN", offered_load=0.0, seed=1, stall_watchdog_cycles=50
        )
        packet = Packet(pid=0, src=2, dst=0, size_phits=2, creation_cycle=0)
        sim.engine.schedule_arrival(0, tiny_params.topology.p, 10**9, 0, packet)
        with pytest.raises(SimulationStallError):
            sim.run_cycles(2_000)
        # Detected at the watchdog deadline, not at the end of the run.
        assert sim.engine.cycle <= 100

    def test_wedged_network_still_raises(self, tiny_params, wedge_ejection_ports):
        sim = Simulator(
            tiny_params, "MIN", "UN", offered_load=0.2, seed=1, stall_watchdog_cycles=50
        )
        wedge_ejection_ports(sim)
        with pytest.raises(SimulationStallError):
            sim.run_cycles(2_000)

    def test_idle_network_never_trips_watchdog(self, tiny_params):
        sim = Simulator(
            tiny_params, "MIN", "UN", offered_load=0.0, seed=1, stall_watchdog_cycles=50
        )
        sim.run_cycles(5_000)
        assert sim.engine.delivered_packets == 0

    def test_disabled_watchdog_allows_unbounded_jumps(self, tiny_params):
        sim = Simulator(
            tiny_params, "MIN", "UN", offered_load=0.0, seed=1,
            stall_watchdog_cycles=None,
        )
        sim.run_cycles(100_000)
        assert sim.engine.cycle == 100_000
        assert sim.engine.cycles_skipped == 100_000


# ----------------------------------------------------------- routing horizons
class TestRoutingHorizons:
    def test_ectn_broadcast_cycles_are_stepped_not_skipped(self, tiny_params):
        sim = Simulator(tiny_params, "ECtN", "UN", offered_load=0.0, seed=1)
        sim.run_cycles(500)
        period = tiny_params.ectn_update_period
        boundaries = len(range(0, 500, period))
        assert sim.engine.cycles_skipped == 500 - boundaries

    def test_pb_quiet_network_warps_freely(self, tiny_params):
        sim = Simulator(tiny_params, "PB", "UN", offered_load=0.0, seed=1)
        sim.run_cycles(500)
        assert sim.engine.cycles_skipped == 500

    def test_every_post_cycle_override_declares_needs_post_cycle(self):
        for name, cls in ROUTING_REGISTRY.items():
            overrides = cls.post_cycle is not RoutingAlgorithm.post_cycle
            assert overrides == cls.needs_post_cycle, (
                f"{name}: post_cycle override and needs_post_cycle disagree"
            )

    def test_engine_rejects_undeclared_post_cycle_override(self, tiny_params):
        """Overriding post_cycle without the flag must fail fast, not silently
        drop the broadcasts."""
        from repro.routing.minimal import MinimalRouting

        class Sneaky(MinimalRouting):
            name = "sneaky"

            def post_cycle(self, network, cycle):  # pragma: no cover - never runs
                pass

        sim = Simulator(tiny_params, "MIN", "UN", offered_load=0.0, seed=1)
        sneaky = Sneaky(sim.topology, tiny_params, sim.rng)
        sim.network.routing = sneaky
        from repro.simulation.engine import Engine

        with pytest.raises(TypeError, match="needs_post_cycle"):
            Engine(sim.network, sim.traffic)


# ---------------------------------------------------- block-sampled arrivals
class TestBlockSampledTraffic:
    def _collect(self, topology, block_cycles, cycles=600, load=0.3, seed=77):
        payload, arrival = _streams(seed)
        gen = BernoulliTrafficGenerator(
            topology=topology,
            pattern=UniformTraffic(topology),
            offered_load=load,
            packet_size_phits=4,
            rng=payload,
            arrival_rng=arrival,
            block_cycles=block_cycles,
        )
        out = []
        for cycle in range(cycles):
            for src, packet in gen.generate(cycle):
                out.append((cycle, src, packet.dst, packet.pid))
        return out

    def test_block_size_is_a_pure_performance_knob(self, tiny_topology):
        reference = self._collect(tiny_topology, block_cycles=128)
        assert reference  # sanity: the load actually generates packets
        for block_cycles in (1, 7, 64, 1000):
            assert self._collect(tiny_topology, block_cycles=block_cycles) == reference

    def test_next_arrival_cycle_matches_generate(self, tiny_topology):
        payload, arrival = _streams(5)
        gen = BernoulliTrafficGenerator(
            tiny_topology, UniformTraffic(tiny_topology), 0.05, 4, payload,
            arrival_rng=arrival,
        )
        nxt = gen.next_arrival_cycle(0)
        assert nxt is not None
        for cycle in range(nxt):
            assert gen.generate(cycle) == []
        assert gen.generate(nxt) != []

    def test_next_arrival_cycle_respects_limit(self, tiny_topology):
        payload, arrival = _streams(5)
        gen = BernoulliTrafficGenerator(
            tiny_topology, UniformTraffic(tiny_topology), 0.05, 4, payload,
            arrival_rng=arrival,
        )
        assert gen.next_arrival_cycle(0, limit=0) is None
        nxt = gen.next_arrival_cycle(0, limit=10_000)
        assert nxt is not None and nxt < 10_000
        assert gen.next_arrival_cycle(0, limit=nxt) is None
        assert gen.next_arrival_cycle(0, limit=nxt + 1) == nxt

    def test_zero_load_has_no_arrivals(self, tiny_topology):
        payload, arrival = _streams(5)
        gen = BernoulliTrafficGenerator(
            tiny_topology, UniformTraffic(tiny_topology), 0.0, 4, payload,
            arrival_rng=arrival,
        )
        assert gen.next_arrival_cycle(0) is None
        assert gen.generate(0) == []

    def test_offered_load_change_rethresholds_remaining_cycles(self, tiny_topology):
        """Raising the load mid-block must re-use the already-drawn uniforms."""
        seed = 11
        switch = 50

        def run(change_load):
            payload, arrival = _streams(seed)
            gen = BernoulliTrafficGenerator(
                tiny_topology, UniformTraffic(tiny_topology), 0.1, 4, payload,
                arrival_rng=arrival,
            )
            out = []
            for cycle in range(200):
                if cycle == switch and change_load is not None:
                    gen.set_offered_load(change_load)
                for src, packet in gen.generate(cycle):
                    out.append((cycle, src))
            return out

        unchanged = run(None)
        raised = run(0.9)
        lowered = run(0.0)
        # Identical history before the change...
        before = [e for e in unchanged if e[0] < switch]
        assert [e for e in raised if e[0] < switch] == before
        assert [e for e in lowered if e[0] < switch] == before
        # ...a superset of arrivals after raising the probability threshold...
        assert set(e for e in unchanged if e[0] >= switch) <= set(
            e for e in raised if e[0] >= switch
        )
        # ...and silence after dropping the load to zero.
        assert [e for e in lowered if e[0] >= switch] == []

    def test_engine_results_unchanged_by_block_size(self, tiny_params):
        """End-to-end: two simulators differing only in traffic block size."""
        results = []
        for block_cycles in (16, 512):
            sim = Simulator(tiny_params, "Base", "ADV+1", 0.2, seed=42)
            sim.traffic.block_cycles = block_cycles
            results.append(sim.run_steady_state(warmup_cycles=150, measure_cycles=300))
        assert results[0] == results[1]
