"""Stall-watchdog behaviour: warp parity, disabling, drops, diagnostics."""

import pytest

from repro.simulation.engine import SimulationStallError
from repro.simulation.simulator import Simulator
from repro.topology.faults import FaultModel
from repro.topology.registry import create_topology


def _wedge_ejection_ports(sim, tiny_params):
    """Block every ejection port forever: guaranteed total stall.

    Wedges whichever state the backend reads (the SoA engine copies the
    object network at construction and never consults it again).
    """
    engine = sim.engine
    if hasattr(engine, "_st"):
        st = engine._st
        for rid in range(st.R):
            for port in range(tiny_params.topology.p):
                st.link_busy[rid * st.P + port] = 10**9
        return
    for router in sim.network.routers:
        for port in range(tiny_params.topology.p):
            router.output_ports[port].link_busy_until = 10**9


def _isolate_links(topology, rid):
    return tuple(
        (rid, port)
        for port in range(topology.router_radix)
        if topology.neighbor(rid, port) is not None
    )


class TestStallWatchdog:
    def test_warp_and_no_warp_detect_at_the_same_cycle(self, tiny_params):
        """Time warp must not overshoot (or miss) the stall detection point."""
        detection_cycles = []
        for warp in (True, False):
            sim = Simulator(
                tiny_params,
                "MIN",
                "UN",
                offered_load=0.2,
                seed=1,
                stall_watchdog_cycles=200,
                time_warp=warp,
            )
            _wedge_ejection_ports(sim, tiny_params)
            with pytest.raises(SimulationStallError):
                sim.run_cycles(5_000)
            detection_cycles.append(sim.engine.cycle)
        assert detection_cycles[0] == detection_cycles[1]

    def test_watchdog_none_disables_detection(self, tiny_params):
        sim = Simulator(
            tiny_params,
            "MIN",
            "UN",
            offered_load=0.2,
            seed=1,
            stall_watchdog_cycles=None,
        )
        _wedge_ejection_ports(sim, tiny_params)
        sim.run_cycles(2_000)  # wedged solid, but nothing raises
        assert sim.engine.delivered_packets == 0

    def test_unreachable_traffic_drops_instead_of_stalling(self, tiny_params):
        """Partition-stranded packets must count as progress, not wedge."""
        topo = create_topology(tiny_params.topology)
        fm = FaultModel(
            failed_links=_isolate_links(topo, 0), allow_partition=True
        )
        sim = Simulator(
            tiny_params,
            "MIN",
            "UN",
            offered_load=0.3,
            seed=5,
            fault_model=fm,
            stall_watchdog_cycles=500,
        )
        result = sim.run_steady_state(150, 300)  # no SimulationStallError
        assert result.dropped_packets > 0
        assert result.delivered_packets > 0

    def test_stall_error_carries_diagnostics(self, tiny_params):
        sim = Simulator(
            tiny_params,
            "MIN",
            "UN",
            offered_load=0.2,
            seed=1,
            stall_watchdog_cycles=100,
        )
        _wedge_ejection_ports(sim, tiny_params)
        with pytest.raises(SimulationStallError) as excinfo:
            sim.run_cycles(2_000)
        message = str(excinfo.value)
        assert "stall diagnostics" in message
        assert "occupied VCs" in message
        assert "oldest buffered packet" in message
        assert "pid=" in message
