"""The struct-of-arrays backend is bit-identical to the object model.

Three layers of evidence, from broad to microscopic:

* a seeded **property grid** — a random sample of (topology x routing x
  load x pattern x faults) combinations, each run to completion on both
  backends and compared field-for-field (plus a golden-style SHA-256 over
  the canonical JSON of the result, the same "last float bit" contract the
  goldens pin);
* **lockstep state equality** — one simulation stepped cycle-by-cycle on
  both backends, comparing every buffer occupancy, credit count and link
  timer of the network after every cycle, so a divergence is caught at the
  cycle it first appears instead of smeared into end-of-run aggregates;
* **micro-state kernel tests** — the SoA allocator round driven against
  the object model's ``SeparableAllocator`` on hand-built request sets
  (contended, uncontested, single), and the batched numpy kernels checked
  against their scalar reference expressions.

The property grid here complements the golden suite: goldens pin fixed
results forever, while this grid asserts *cross-backend* identity on fresh
scenarios every time the sample is changed.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.config.parameters import (
    SimulationParameters,
    VALID_BACKENDS,
    default_backend,
)
from repro.network.allocator import AllocationRequest, SeparableAllocator
from repro.routing import UnsupportedTopologyError, available_routings
# The golden-style digest (SHA-256 over the canonical JSON of the result)
# is the same one the sweep-service cache verifies on every lookup, so the
# cross-backend identity asserted here is exactly the property that makes
# serving an object-computed cache row to an soa request sound.
from repro.service.keys import result_fingerprint as _result_fingerprint
from repro.simulation.simulator import Simulator
from repro.topology.faults import FaultModel
from repro.topology.registry import topology_preset

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


def _run(backend: str, combo) -> tuple:
    params = SimulationParameters.tiny().with_topology(
        topology_preset(combo["topology"], "tiny")
    )
    params = params.with_backend(backend)
    fault_model = (
        FaultModel(link_failure_percent=10.0) if combo["faults"] else None
    )
    sim = Simulator(
        params,
        combo["routing"],
        combo["pattern"],
        combo["load"],
        seed=combo["seed"],
        fault_model=fault_model,
    )
    result = sim.run_steady_state(warmup_cycles=80, measure_cycles=160)
    return result.as_dict(), _result_fingerprint(result), sim.engine.cycle


def _sample_grid(n: int):
    """Seeded random sample over the full combination space.

    Unsupported (topology, routing) pairs are skipped *after* drawing, so
    the sample stays deterministic when new mechanisms register.
    """
    rng = random.Random(20260808)
    topologies = ("dragonfly", "flattened_butterfly", "full_mesh", "torus")
    routings = tuple(sorted(available_routings()))
    combos = []
    while len(combos) < n:
        combo = {
            "topology": rng.choice(topologies),
            "routing": rng.choice(routings),
            "pattern": rng.choice(("UN", "ADV+1")),
            "load": rng.choice((0.2, 0.45, 0.7)),
            "faults": rng.random() < 0.4,
            "seed": rng.randrange(1, 10_000),
        }
        try:
            _probe = Simulator(
                SimulationParameters.tiny().with_topology(
                    topology_preset(combo["topology"], "tiny")
                ),
                combo["routing"],
                combo["pattern"],
                0.1,
                seed=1,
            )
        except UnsupportedTopologyError:
            continue
        del _probe
        if combo not in combos:
            combos.append(combo)
    return combos


GRID = _sample_grid(8)


class TestPropertyGrid:
    @pytest.mark.parametrize(
        "combo",
        GRID,
        ids=lambda c: (
            f"{c['topology']}-{c['routing']}-{c['pattern']}-{c['load']}"
            f"-{'faults' if c['faults'] else 'clean'}-s{c['seed']}"
        ),
    )
    def test_object_and_soa_agree_bit_for_bit(self, combo):
        obj_dict, obj_hash, obj_cycle = _run("object", combo)
        soa_dict, soa_hash, soa_cycle = _run("soa", combo)
        assert soa_dict == obj_dict
        assert soa_hash == obj_hash
        assert soa_cycle == obj_cycle

    def test_soa_numba_matches_soa(self):
        # Without numba installed this exercises the documented fallback;
        # with numba it checks the compiled kernels change nothing.
        combo = GRID[0]
        assert _run("soa-numba", combo) == _run("soa", combo)


class TestLockstepState:
    def _snapshot(self, engine):
        """Every buffer/credit/link observable of the network, any backend."""
        if hasattr(engine, "_st"):
            st = engine._st
            return (
                tuple(st.in_free),
                tuple(st.credits),
                tuple(st.out_committed),
                tuple(st.out_free),
                tuple(st.credit_occ),
                tuple(st.link_busy),
            )
        in_free, credits, committed, out_free, cred_occ, busy = [], [], [], [], [], []
        network = engine.network
        max_vcs = max(
            len(ip.vcs) for r in network.routers for ip in r.input_ports
        )
        for router in network.routers:
            for ip in router.input_ports:
                vals = [ivc.buffer.free_phits for ivc in ip.vcs]
                in_free.extend(vals + [0] * (max_vcs - len(vals)))
            for op in router.output_ports:
                vals = list(op.credits)
                credits.extend(vals + [0] * (max_vcs - len(vals)))
                committed.append(op.buffer.committed_phits)
                out_free.append(op.buffer.free_phits)
                cred_occ.append(op.credit_occupied)
                busy.append(op.link_busy_until)
        return (
            tuple(in_free),
            tuple(credits),
            tuple(committed),
            tuple(out_free),
            tuple(cred_occ),
            tuple(busy),
        )

    @pytest.mark.parametrize("routing", ["OLM", "PB"])
    def test_every_cycle_state_is_identical(self, routing):
        sims = {
            backend: Simulator(
                SimulationParameters.tiny().with_backend(backend),
                routing,
                "ADV+1",
                0.5,
                seed=3,
            )
            for backend in ("object", "soa")
        }
        for cycle in range(120):
            snaps = {}
            for backend, sim in sims.items():
                sim.run_cycles(1)
                snaps[backend] = self._snapshot(sim.engine)
            assert snaps["soa"] == snaps["object"], f"diverged at cycle {cycle}"
        assert (
            sims["soa"].engine.delivered_packets
            == sims["object"].engine.delivered_packets
        )


def _soa_engine():
    sim = Simulator(
        SimulationParameters.tiny().with_backend("soa"), "MIN", "UN", 0.1, seed=1
    )
    return sim.engine


class TestAllocRoundMicroStates:
    """``_alloc_round`` vs the object ``SeparableAllocator``, same requests."""

    def _compare_sequences(self, engine, request_rounds):
        st = engine._st
        P, nvc = st.P, st.alloc_nvc[0]
        reference = SeparableAllocator(num_ports=P, max_vcs=nvc)
        for requests in request_rounds:
            ref_grants = reference.allocate(requests)
            soa_grants = engine._alloc_round(0, 0, requests)
            assert [
                (g[0], g[1], g[2]) for g in soa_grants
            ] == [
                (g.input_port, g.input_vc, g.output_port) for g in ref_grants
            ]

    def _request(self, in_port, vc, out_port, size=4):
        return AllocationRequest(
            input_port=in_port, input_vc=vc, output_port=out_port, size_phits=size
        )

    def test_single_request_rotates_and_grants(self):
        self._compare_sequences(
            _soa_engine(),
            [[self._request(0, 0, 3)], [self._request(0, 1, 3)]],
        )

    def test_output_port_conflict_round_robin(self):
        # Three inputs fight over one output across rounds: the round-robin
        # pointers must hand the output around in the same order.
        conflict = [
            self._request(0, 0, 3),
            self._request(1, 0, 3),
            self._request(2, 0, 3),
        ]
        self._compare_sequences(_soa_engine(), [conflict] * 4)

    def test_input_vc_conflict_round_robin(self):
        conflict = [
            self._request(0, 0, 2),
            self._request(0, 1, 3),
        ]
        self._compare_sequences(_soa_engine(), [conflict] * 3)

    def test_all_distinct_fast_path(self):
        self._compare_sequences(
            _soa_engine(),
            [[self._request(0, 0, 2), self._request(1, 1, 3)]],
        )

    def test_randomized_contention_sequences(self):
        engine = _soa_engine()
        st = engine._st
        P, nvc = st.P, st.alloc_nvc[0]
        rng = random.Random(7)
        rounds = []
        for _ in range(60):
            seen = set()
            requests = []
            for _ in range(rng.randrange(1, 6)):
                key = (rng.randrange(P), rng.randrange(nvc))
                if key in seen:  # one request per (input port, VC)
                    continue
                seen.add(key)
                requests.append(self._request(key[0], key[1], rng.randrange(P)))
            rounds.append(requests)
        self._compare_sequences(engine, rounds)


class TestBatchedKernels:
    def test_pb_saturation_flags_match_scalar_expression(self):
        from repro.simulation.soa.kernels import pb_saturation_flags

        rng = np.random.default_rng(11)
        occupancy = rng.integers(0, 64, size=200)
        capacity = rng.integers(1, 64, size=200)
        for fraction in (0.0, 0.25, 0.5, 0.875, 1.0):
            flags = pb_saturation_flags(occupancy, capacity, fraction)
            expected = [
                occ >= fraction * cap for occ, cap in zip(occupancy, capacity)
            ]
            assert flags.tolist() == expected

    def test_combine_rows_matches_column_sums(self):
        from repro.simulation.soa.kernels import combine_rows

        rng = random.Random(13)
        rows = [[rng.randrange(0, 50) for _ in range(16)] for _ in range(9)]
        expected = [sum(col) for col in zip(*rows)]
        combined = combine_rows(rows)
        assert combined == expected
        assert all(isinstance(value, int) for value in combined)

    def test_numba_request_degrades_to_numpy(self):
        from repro.simulation.soa.kernels import (
            NUMBA_AVAILABLE,
            NumpyKernels,
            get_kernels,
        )

        assert get_kernels(False) is NumpyKernels
        kernels = get_kernels(True)
        if NUMBA_AVAILABLE:
            assert kernels.backend_name == "numba"
        else:
            assert kernels is NumpyKernels


class TestBackendPlumbing:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SimulationParameters.tiny().with_backend("vectorized")

    def test_create_engine_rejects_unknown_backend(self):
        from repro.simulation.backends import create_engine

        with pytest.raises(ValueError, match="unknown backend"):
            create_engine("simd", None, None)

    def test_backend_recorded_in_as_dict(self):
        params = SimulationParameters.tiny().with_backend("soa")
        assert params.as_dict()["backend"] == "soa"

    def test_env_variable_sets_default_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "soa")
        assert default_backend() == "soa"
        assert SimulationParameters.tiny().backend == "soa"
        monkeypatch.delenv("REPRO_BACKEND")
        assert SimulationParameters.tiny().backend == "object"

    def test_valid_backends_build_engines(self):
        from repro.simulation.engine import Engine
        from repro.simulation.soa import SoAEngine

        for backend in sorted(VALID_BACKENDS):
            sim = Simulator(
                SimulationParameters.tiny().with_backend(backend),
                "MIN",
                "UN",
                0.1,
                seed=1,
            )
            if backend == "object":
                assert type(sim.engine) is Engine
            else:
                assert isinstance(sim.engine, SoAEngine)
