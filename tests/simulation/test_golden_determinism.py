"""Golden fixed-seed results: the simulation must be bit-identical forever.

The values below were captured from the seed implementation (commit
``5184318``, full per-router/per-VC scans in the engine) before the
active-set rewrite.  Any engine, router, allocator or routing change that
alters a fixed-seed result — even in the last float bit — fails here, which
is the contract that allows aggressive performance work on the hot path.

The parallel-executor tests assert the other half of the contract: fanning a
sweep out over worker processes returns byte-identical rows to the serial
path.
"""

import dataclasses

import pytest

from repro.config.parameters import SimulationParameters
from repro.experiments.scales import TINY_SCALE
from repro.experiments.sweep import load_sweep
from repro.experiments.transient_runner import transient_comparison
from repro.simulation.simulator import Simulator

#: (routing, pattern, offered_load, seed) -> exact SteadyStateResult fields
#: for a tiny-preset run with warmup=150 / measure=300 cycles.
GOLDEN_STEADY = {
    ("Base", "ADV+1", 0.2, 42): {
        "mean_latency": 51.24034334763949,
        "p99_latency": 88.01999999999998,
        "accepted_load": 0.19611111111111112,
        "global_misroute_fraction": 0.2732474964234621,
        "local_misroute_fraction": 0.011444921316165951,
        "mean_hops": 2.977110157367668,
        "delivered_packets": 699,
    },
    ("ECtN", "UN", 0.35, 7): {
        "mean_latency": 30.500392772977218,
        "p99_latency": 52.0,
        "accepted_load": 0.3502777777777778,
        "global_misroute_fraction": 0.007855459544383346,
        "local_misroute_fraction": 0.002356637863315004,
        "mean_hops": 1.988216810683425,
        "delivered_packets": 1273,
    },
    ("OLM", "ADV+h", 0.25, 3): {
        "mean_latency": 51.94835164835165,
        "p99_latency": 83.90999999999997,
        "accepted_load": 0.26555555555555554,
        "global_misroute_fraction": 0.4747252747252747,
        "local_misroute_fraction": 0.07692307692307693,
        "mean_hops": 3.6186813186813187,
        "delivered_packets": 910,
    },
}

#: Base UN->ADV+1 transient at load 0.3, switch cycle 150, seed 11,
#: observe_before=50 / observe_after=150 / bin=25.
GOLDEN_TRANSIENT = {
    "cycles": [-50, -25, 0, 25, 50, 75, 100, 125],
    "mean_latency": [
        30.225806451612904,
        29.477272727272727,
        46.21333333333333,
        56.58974358974359,
        59.01,
        62.89655172413793,
        67.24271844660194,
        61.45333333333333,
    ],
    "misrouted_fraction": [
        0.0,
        0.0,
        0.14666666666666667,
        0.41025641025641024,
        0.56,
        0.5747126436781609,
        0.6019417475728155,
        0.4533333333333333,
    ],
}

FAST_SCALE = dataclasses.replace(
    TINY_SCALE,
    warmup_cycles=100,
    measure_cycles=200,
    seeds=(1, 2),
    un_loads=(0.2,),
    adv_loads=(0.2,),
)


class TestGoldenSteadyState:
    @pytest.mark.parametrize(
        "config", sorted(GOLDEN_STEADY), ids=lambda c: f"{c[0]}-{c[1]}-{c[3]}"
    )
    def test_fixed_seed_results_are_bit_identical(self, config):
        routing, pattern, load, seed = config
        expected = GOLDEN_STEADY[config]
        sim = Simulator(SimulationParameters.tiny(), routing, pattern, load, seed=seed)
        result = sim.run_steady_state(warmup_cycles=150, measure_cycles=300)
        for field, value in expected.items():
            assert getattr(result, field) == value, field


class TestGoldenTransient:
    def test_fixed_seed_transient_is_bit_identical(self):
        sim = Simulator.build_transient(
            SimulationParameters.tiny(),
            "Base",
            "UN",
            "ADV+1",
            offered_load=0.3,
            switch_cycle=150,
            seed=11,
        )
        result = sim.run_transient(
            warmup_cycles=150, observe_before=50, observe_after=150, bin_size=25
        )
        assert result.cycles == GOLDEN_TRANSIENT["cycles"]
        assert result.mean_latency == GOLDEN_TRANSIENT["mean_latency"]
        assert result.misrouted_fraction == GOLDEN_TRANSIENT["misrouted_fraction"]


class TestParallelEqualsSerial:
    def test_parallel_load_sweep_rows_byte_identical(self):
        serial = load_sweep(FAST_SCALE, ["MIN", "Base"], "UN")
        parallel = load_sweep(FAST_SCALE, ["MIN", "Base"], "UN", workers=2)
        assert parallel == serial

    def test_parallel_transient_series_byte_identical(self):
        serial = transient_comparison(FAST_SCALE, ["Base"], before="UN", after="ADV+1")
        parallel = transient_comparison(
            FAST_SCALE, ["Base"], before="UN", after="ADV+1", workers=2
        )
        assert parallel == serial
