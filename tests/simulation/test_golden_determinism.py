"""Golden fixed-seed results: the simulation must be bit-identical forever.

The values in ``goldens.json`` pin a handful of fixed-seed simulation
results down to the last float bit.  Any engine, router, allocator or
routing change that alters a fixed-seed result — even in the last float bit
— fails here, which is the contract that allows aggressive performance work
on the hot path (active sets, fused phases, time warp).

The goldens are re-recorded exactly once per *intentional* change of the RNG
consumption contract and never for a pure performance change.  They were
last recorded when the traffic RNG was split into named arrival and
destination streams (PR 2); regenerate with::

    PYTHONPATH=src python -m repro.tools.record_goldens

The parallel-executor tests assert the other half of the contract: fanning a
sweep out over worker processes returns byte-identical rows to the serial
path.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.config.parameters import SimulationParameters
from repro.experiments.scales import TINY_SCALE
from repro.experiments.sweep import load_sweep
from repro.experiments.transient_runner import transient_comparison
from repro.simulation.simulator import Simulator

GOLDENS = json.loads((Path(__file__).parent / "goldens.json").read_text())

FAST_SCALE = dataclasses.replace(
    TINY_SCALE,
    warmup_cycles=100,
    measure_cycles=200,
    seeds=(1, 2),
    un_loads=(0.2,),
    adv_loads=(0.2,),
)


class TestGoldenSteadyState:
    @pytest.mark.parametrize(
        "golden",
        GOLDENS["steady"],
        ids=lambda g: f"{g['routing']}-{g['pattern']}-{g['seed']}",
    )
    def test_fixed_seed_results_are_bit_identical(self, golden):
        sim = Simulator(
            SimulationParameters.tiny(),
            golden["routing"],
            golden["pattern"],
            golden["offered_load"],
            seed=golden["seed"],
        )
        result = sim.run_steady_state(warmup_cycles=150, measure_cycles=300)
        for field, value in golden["expected"].items():
            assert getattr(result, field) == value, field


class TestGoldenCrossTopology:
    """MIN/VAL/UGAL pinned bit-identically on every registered topology."""

    @pytest.mark.parametrize(
        "golden",
        GOLDENS["cross_topology"],
        ids=lambda g: f"{g['topology']}-{g['routing']}-{g['seed']}",
    )
    def test_fixed_seed_results_are_bit_identical(self, golden):
        from repro.topology.registry import topology_preset

        params = SimulationParameters.tiny(topology_preset(golden["topology"]))
        sim = Simulator(
            params,
            golden["routing"],
            golden["pattern"],
            golden["offered_load"],
            seed=golden["seed"],
        )
        result = sim.run_steady_state(warmup_cycles=150, measure_cycles=300)
        for field, value in golden["expected"].items():
            assert getattr(result, field) == value, field


class TestGoldenTransient:
    def test_fixed_seed_transient_is_bit_identical(self):
        cfg = GOLDENS["transient"]["config"]
        expected = GOLDENS["transient"]["expected"]
        sim = Simulator.build_transient(
            SimulationParameters.tiny(),
            cfg["routing"],
            cfg["before"],
            cfg["after"],
            offered_load=cfg["offered_load"],
            switch_cycle=cfg["switch_cycle"],
            seed=cfg["seed"],
        )
        result = sim.run_transient(
            warmup_cycles=cfg["switch_cycle"],
            observe_before=cfg["observe_before"],
            observe_after=cfg["observe_after"],
            bin_size=cfg["bin_size"],
        )
        assert result.cycles == expected["cycles"]
        assert result.mean_latency == expected["mean_latency"]
        assert result.misrouted_fraction == expected["misrouted_fraction"]

    def test_goldens_file_matches_recorder(self):
        """The committed goldens must be reproducible by the recording tool."""
        from repro.tools.record_goldens import compute_goldens

        assert compute_goldens() == GOLDENS


class TestParallelEqualsSerial:
    def test_parallel_load_sweep_rows_byte_identical(self):
        serial = load_sweep(FAST_SCALE, ["MIN", "Base"], "UN")
        parallel = load_sweep(FAST_SCALE, ["MIN", "Base"], "UN", workers=2)
        assert parallel == serial

    def test_parallel_transient_series_byte_identical(self):
        serial = transient_comparison(FAST_SCALE, ["Base"], before="UN", after="ADV+1")
        parallel = transient_comparison(
            FAST_SCALE, ["Base"], before="UN", after="ADV+1", workers=2
        )
        assert parallel == serial
