"""End-to-end fault injection: determinism, delivery, degradation, drops."""

import dataclasses

import pytest

from repro.config.parameters import SimulationParameters
from repro.simulation.simulator import Simulator
from repro.topology.faults import (
    DegradedLink,
    FaultEvent,
    FaultModel,
    FaultSchedule,
)
from repro.topology.registry import create_topology, topology_preset


def _isolate_links(topology, rid):
    return tuple(
        (rid, port)
        for port in range(topology.router_radix)
        if topology.neighbor(rid, port) is not None
    )


def _first_link(topology, rid=0):
    for port in range(topology.router_radix):
        if topology.neighbor(rid, port) is not None:
            return (rid, port)
    raise AssertionError


class TestHealthyRunIsolation:
    """The fault subsystem must be invisible when no faults are injected."""

    def test_trivial_model_builds_no_runtime(self, tiny_params):
        sim = Simulator(tiny_params, "MIN", "UN", 0.2, seed=1, fault_model=FaultModel())
        assert sim.faults is None

    def test_healthy_results_identical_with_and_without_fault_model(self, tiny_params):
        base = Simulator(tiny_params, "Base", "UN", 0.3, seed=9)
        with_trivial = Simulator(
            tiny_params, "Base", "UN", 0.3, seed=9, fault_model=FaultModel()
        )
        a = base.run_steady_state(150, 300)
        b = with_trivial.run_steady_state(150, 300)
        assert a == b
        assert a.dropped_packets == 0
        assert a.fault_rerouted_packets == 0


class TestDeterministicReplay:
    def test_sampled_failures_replay_bit_identically(self, tiny_params):
        fm = FaultModel(link_failure_percent=10.0)
        runs = [
            Simulator(
                tiny_params, "Hybrid", "UN", 0.3, seed=3, fault_model=fm
            ).run_steady_state(150, 300)
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        assert runs[0].fault_rerouted_packets > 0

    def test_schedule_replay_bit_identical_and_warp_invariant(self, tiny_params):
        topo = create_topology(tiny_params.topology)
        link = _first_link(topo)
        fm = FaultModel(
            schedule=FaultSchedule(
                events=(
                    FaultEvent(200, link, "fail"),
                    FaultEvent(350, link, "repair"),
                )
            )
        )
        results = []
        for warp in (True, True, False):
            sim = Simulator(
                tiny_params, "Base", "UN", 0.3, seed=5, fault_model=fm, time_warp=warp
            )
            results.append(sim.run_steady_state(150, 300))
        assert results[0] == results[1], "replay is not deterministic"
        assert results[0] == results[2], "fault events break warp identity"
        assert results[0].fault_rerouted_packets > 0

    def test_fault_event_is_a_work_event_for_the_warp(self, tiny_params):
        """An idle network must still apply a far-future scheduled fault."""
        topo = create_topology(tiny_params.topology)
        link = _first_link(topo)
        fm = FaultModel(
            schedule=FaultSchedule(events=(FaultEvent(5_000, link, "fail"),))
        )
        sim = Simulator(
            tiny_params,
            "MIN",
            "UN",
            offered_load=0.0,
            seed=1,
            fault_model=fm,
            stall_watchdog_cycles=None,
        )
        sim.run_cycles(10_000)
        assert sim.faults.num_failed_links == 1
        assert sim.faults.epoch == 1


@pytest.mark.parametrize("topology_name", ["dragonfly", "torus"])
@pytest.mark.parametrize("routing", ["MIN", "VAL", "UGAL", "Base", "Hybrid"])
class TestDeliveryUnderFaults:
    def test_packets_deliver_around_static_failures(self, topology_name, routing):
        params = SimulationParameters.tiny(topology_preset(topology_name))
        fm = FaultModel(link_failure_percent=10.0)
        sim = Simulator(params, routing, "UN", 0.3, seed=3, fault_model=fm)
        result = sim.run_steady_state(150, 300)
        assert sim.faults.num_failed_links > 0
        assert result.delivered_packets > 0
        assert result.dropped_packets == 0  # graph stays connected
        assert result.accepted_load > 0.1


class TestDegradedLinks:
    def test_degraded_latency_slows_delivery(self, tiny_params):
        topo = create_topology(tiny_params.topology)
        degraded = {
            (rid, port): DegradedLink(latency_factor=4)
            for rid in range(topo.num_routers)
            for port in range(topo.router_radix)
            if topo.neighbor(rid, port) is not None
        }
        healthy = Simulator(tiny_params, "MIN", "UN", 0.2, seed=3).run_steady_state(
            150, 300
        )
        slowed = Simulator(
            tiny_params,
            "MIN",
            "UN",
            0.2,
            seed=3,
            fault_model=FaultModel(degraded_links=degraded),
        ).run_steady_state(150, 300)
        assert slowed.mean_latency > healthy.mean_latency

    def test_degraded_bandwidth_reduces_accepted_load(self, tiny_params):
        topo = create_topology(tiny_params.topology)
        degraded = {
            (rid, port): DegradedLink(bandwidth_factor=4)
            for rid in range(topo.num_routers)
            for port in range(topo.router_radix)
            if topo.neighbor(rid, port) is not None
        }
        healthy = Simulator(tiny_params, "MIN", "UN", 0.4, seed=3).run_steady_state(
            150, 300
        )
        slowed = Simulator(
            tiny_params,
            "MIN",
            "UN",
            0.4,
            seed=3,
            fault_model=FaultModel(degraded_links=degraded),
        ).run_steady_state(150, 300)
        assert slowed.accepted_load < healthy.accepted_load

    def test_contention_bias_steers_base_away(self, tiny_params):
        """A heavily degraded link biases the contention counters at both ends."""
        topo = create_topology(tiny_params.topology)
        link = _first_link(topo)
        deg = DegradedLink(bandwidth_factor=4, latency_factor=2)
        sim = Simulator(
            tiny_params,
            "Base",
            "UN",
            0.2,
            seed=3,
            fault_model=FaultModel(degraded_links={link: deg}),
        )
        counts = sim.routing._counter_arrays[link[0]].counts
        assert counts[link[1]] == deg.bias_packets
        nbr_router, nbr_port = topo.neighbor(*link)
        assert sim.routing._counter_arrays[nbr_router].counts[nbr_port] == deg.bias_packets
        # The bias must survive a full run without ever underflowing.
        sim.run_steady_state(150, 300)


class TestPartitionDrops:
    def test_unreachable_destinations_drop_and_count(self, tiny_params):
        topo = create_topology(tiny_params.topology)
        links = _isolate_links(topo, 0)
        fm = FaultModel(failed_links=links, allow_partition=True)
        sim = Simulator(
            tiny_params, "MIN", "UN", 0.3, seed=5, fault_model=fm,
            stall_watchdog_cycles=2_000,
        )
        result = sim.run_steady_state(150, 300)
        # Packets to/from the isolated router's nodes cannot be delivered.
        assert result.dropped_packets > 0
        assert sim.engine.dropped_packets == sim.faults.dropped_packets
        assert result.delivered_packets > 0  # the rest of the network still works

    def test_drop_accounting_consistent_across_warp(self, tiny_params):
        topo = create_topology(tiny_params.topology)
        links = _isolate_links(topo, 0)
        fm = FaultModel(failed_links=links, allow_partition=True)
        results = []
        for warp in (True, False):
            sim = Simulator(
                tiny_params, "MIN", "UN", 0.3, seed=5, fault_model=fm,
                time_warp=warp, stall_watchdog_cycles=2_000,
            )
            results.append(sim.run_steady_state(150, 300))
        assert results[0] == results[1]


class TestMidRunFailures:
    def test_mid_run_failure_reroutes_in_flight_traffic(self, tiny_params):
        topo = create_topology(tiny_params.topology)
        link = _first_link(topo)
        fm = FaultModel(
            schedule=FaultSchedule(events=(FaultEvent(250, link, "fail"),))
        )
        sim = Simulator(tiny_params, "MIN", "UN", 0.4, seed=7, fault_model=fm)
        result = sim.run_steady_state(150, 300)
        assert result.fault_rerouted_packets > 0
        assert result.dropped_packets == 0
        assert sim.faults.epoch == 1

    def test_repair_restores_the_link(self, tiny_params):
        topo = create_topology(tiny_params.topology)
        link = _first_link(topo)
        fm = FaultModel(
            schedule=FaultSchedule(
                events=(
                    FaultEvent(100, link, "fail"),
                    FaultEvent(200, link, "repair"),
                )
            )
        )
        sim = Simulator(tiny_params, "MIN", "UN", 0.2, seed=7, fault_model=fm)
        sim.run_cycles(300)
        assert sim.faults.num_failed_links == 0
        assert sim.faults.epoch == 2
        assert not sim.faults.failed_ports[link[0]]

    @pytest.mark.parametrize("topology_name", ["dragonfly", "torus"])
    def test_unreachable_valiant_intermediate_is_abandoned(self, topology_name):
        # Isolating a router mid-run strands the in-flight VAL packets whose
        # *intermediate* (not destination) sits on it: the fault fallback
        # must abandon the intermediate and head straight for the
        # destination (on the torus, spending the Valiant leg so the
        # dateline classes stay monotone), so only traffic addressed to the
        # victim's own nodes is ever dropped.
        params = SimulationParameters.tiny(topology_preset(topology_name))
        topo = create_topology(params.topology)
        victim = topo.num_routers - 1
        fm = FaultModel(
            schedule=FaultSchedule(
                events=tuple(
                    FaultEvent(120, link, "fail")
                    for link in _isolate_links(topo, victim)
                )
            ),
            allow_partition=True,
        )
        sim = Simulator(
            params, "VAL", "UN", 0.4, seed=5, fault_model=fm,
            stall_watchdog_cycles=2_000,
        )
        result = sim.run_steady_state(150, 400)
        assert result.fault_rerouted_packets > 0
        # Drops are bounded by the victim's share of the traffic: every
        # packet that merely *routed through* the victim was re-steered,
        # and the rest of the network keeps delivering.
        assert 0 < result.dropped_packets < result.delivered_packets
        assert result.accepted_load > 0.1
