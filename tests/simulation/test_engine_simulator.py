"""Tests for the cycle engine and the simulator facade."""

import pytest

from repro.config.parameters import SimulationParameters
from repro.simulation.engine import SimulationStallError
from repro.simulation.simulator import Simulator
from repro.traffic import TransientTraffic


class TestDeterminism:
    def test_same_seed_same_results(self, tiny_params):
        results = []
        for _ in range(2):
            sim = Simulator(tiny_params, "Base", "ADV+1", offered_load=0.2, seed=42)
            results.append(sim.run_steady_state(warmup_cycles=150, measure_cycles=300))
        first, second = results
        assert first.mean_latency == second.mean_latency
        assert first.accepted_load == second.accepted_load
        assert first.delivered_packets == second.delivered_packets

    def test_different_seeds_differ(self, tiny_params):
        a = Simulator(tiny_params, "Base", "UN", offered_load=0.3, seed=1)
        b = Simulator(tiny_params, "Base", "UN", offered_load=0.3, seed=2)
        ra = a.run_steady_state(warmup_cycles=150, measure_cycles=300)
        rb = b.run_steady_state(warmup_cycles=150, measure_cycles=300)
        assert ra.mean_latency != rb.mean_latency


class TestConservation:
    def test_packets_conserved(self, tiny_params):
        """generated == delivered + buffered + source-queued at any time."""
        sim = Simulator(tiny_params, "OLM", "UN", offered_load=0.4, seed=3)
        sim.run_cycles(400)
        generated = sim.traffic.generated_packets
        delivered = sim.engine.delivered_packets
        in_network = sim.engine.total_buffered_packets()
        queued = sim.network.total_source_queued()
        assert generated == delivered + in_network + queued

    def test_network_drains_when_injection_stops(self, tiny_params):
        sim = Simulator(tiny_params, "Hybrid", "ADV+1", offered_load=0.3, seed=3)
        sim.run_cycles(300)
        sim.traffic.set_offered_load(0.0)
        sim.run_cycles(2000)
        assert sim.engine.total_buffered_packets() == 0
        assert sim.engine.delivered_packets == sim.traffic.generated_packets - sim.network.total_source_queued()


class TestSteadyStateProtocol:
    def test_result_fields_populated(self, tiny_params):
        sim = Simulator(tiny_params, "MIN", "UN", offered_load=0.2, seed=1)
        result = sim.run_steady_state(warmup_cycles=100, measure_cycles=300)
        assert result.routing == "MIN"
        assert result.pattern == "UN"
        assert result.offered_load == 0.2
        assert result.delivered_packets > 0
        assert result.mean_latency > 0
        assert 0 <= result.global_misroute_fraction <= 1
        assert result.accepted_load == pytest.approx(0.2, abs=0.05)
        assert result.as_dict()["mean_latency"] == result.mean_latency

    def test_accepted_load_saturates_under_adversarial_minimal(self, tiny_params):
        """MIN cannot exceed 1/(a*p) accepted load under ADV+1 (Section IV-A)."""
        sim = Simulator(tiny_params, "MIN", "ADV+1", offered_load=0.5, seed=1)
        result = sim.run_steady_state(warmup_cycles=200, measure_cycles=400)
        topo_cfg = tiny_params.topology
        saturation = 1.0 / (topo_cfg.a * topo_cfg.p)
        assert result.accepted_load <= saturation * 1.3
        assert result.accepted_load >= saturation * 0.5


class TestTransientProtocol:
    def test_requires_transient_pattern(self, tiny_params):
        sim = Simulator(tiny_params, "Base", "UN", offered_load=0.2, seed=1)
        with pytest.raises(TypeError):
            sim.run_transient(warmup_cycles=100, observe_before=50, observe_after=100)

    def test_switch_cycle_must_match_warmup(self, tiny_params):
        sim = Simulator.build_transient(
            tiny_params, "Base", "UN", "ADV+1", offered_load=0.2, switch_cycle=100, seed=1
        )
        with pytest.raises(ValueError):
            sim.run_transient(warmup_cycles=50, observe_before=20, observe_after=50)

    def test_transient_series_covers_observation_window(self, tiny_params):
        sim = Simulator.build_transient(
            tiny_params, "Base", "UN", "ADV+1", offered_load=0.2, switch_cycle=150, seed=1
        )
        result = sim.run_transient(
            warmup_cycles=150, observe_before=50, observe_after=150, bin_size=25
        )
        assert result.routing == "Base"
        assert min(result.cycles) >= -50
        assert max(result.cycles) < 150
        assert len(result.cycles) == len(result.mean_latency) == len(result.misrouted_fraction)
        assert result.as_rows()[0]["routing"] == "Base"

    def test_misrouting_rises_after_adversarial_switch(self, tiny_params):
        sim = Simulator.build_transient(
            tiny_params, "Base", "UN", "ADV+1", offered_load=0.4, switch_cycle=200, seed=1
        )
        result = sim.run_transient(
            warmup_cycles=200, observe_before=100, observe_after=200, bin_size=50
        )
        before = [m for c, m in zip(result.cycles, result.misrouted_fraction) if c < 0]
        after = [m for c, m in zip(result.cycles, result.misrouted_fraction) if c >= 50]
        assert before and after
        assert max(after) > max(before)


class TestWatchdog:
    def test_stall_detection_raises(self, tiny_params, wedge_ejection_ports):
        sim = Simulator(tiny_params, "MIN", "UN", offered_load=0.2, seed=1,
                        stall_watchdog_cycles=50)
        # Artificially wedge the network: block every ejection port forever.
        wedge_ejection_ports(sim)
        with pytest.raises(SimulationStallError):
            sim.run_cycles(2000)

    def test_idle_network_does_not_trip_watchdog(self, tiny_params):
        sim = Simulator(tiny_params, "MIN", "UN", offered_load=0.0, seed=1,
                        stall_watchdog_cycles=50)
        sim.run_cycles(500)  # no traffic, no stall error
        assert sim.engine.delivered_packets == 0
