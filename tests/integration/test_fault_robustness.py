"""Paper-level robustness claim under link failures.

The nonminimal adaptive mechanisms route around failed links with the same
candidate machinery they use against congestion, so under moderate fault
rates they must retain at least MIN's throughput — on the Dragonfly *and*
on the torus, where the fault detours additionally thread the dateline VC
schedule.
"""

from statistics import mean

import pytest

from repro.config.parameters import SimulationParameters
from repro.simulation.simulator import Simulator
from repro.topology.faults import FaultModel
from repro.topology.registry import topology_preset

SEEDS = (1, 2, 3)


def _mean_accepted(topology_name, routing, failure_percent):
    accepted = []
    for seed in SEEDS:
        params = SimulationParameters.tiny(topology_preset(topology_name))
        sim = Simulator(
            params,
            routing,
            "UN",
            0.3,
            seed=seed,
            fault_model=FaultModel(link_failure_percent=failure_percent),
        )
        result = sim.run_steady_state(150, 300)
        assert result.dropped_packets == 0  # fault set keeps the graph connected
        accepted.append(result.accepted_load)
    return mean(accepted)


@pytest.mark.parametrize("topology_name", ["dragonfly", "torus"])
@pytest.mark.parametrize("failure_percent", [5.0, 10.0])
class TestAdaptiveRetainsMinThroughput:
    def test_base_and_hybrid_at_least_min(self, topology_name, failure_percent):
        min_accepted = _mean_accepted(topology_name, "MIN", failure_percent)
        assert min_accepted > 0.1  # MIN itself must keep moving traffic
        for routing in ("Base", "Hybrid"):
            accepted = _mean_accepted(topology_name, routing, failure_percent)
            # >= MIN with a small seed-noise tolerance.
            assert accepted >= 0.95 * min_accepted, (
                f"{routing} on {topology_name} at {failure_percent}% failures: "
                f"accepted {accepted:.4f} vs MIN {min_accepted:.4f}"
            )
