"""Integration tests: the paper's key qualitative claims at reduced scale.

These tests run full simulations (seconds each) and check the *shape* of the
paper's results rather than absolute numbers:

* Fig. 5a — under uniform traffic, Base and ECtN match MIN's latency while
  the congestion-based mechanisms (PB, OLM) pay a latency penalty.
* Fig. 5b — under ADV+1, minimal routing saturates at the single-global-link
  limit while all the adaptive mechanisms sustain the offered load.
* Section III  — contention counters keep working when buffers grow (the
  trigger is decoupled from buffer size), and no mechanism deadlocks under
  sustained adversarial saturation.
"""

import pytest

from repro.config.parameters import SimulationParameters
from repro.simulation.simulator import Simulator

ADAPTIVE = ("PB", "OLM", "Base", "Hybrid", "ECtN")


def steady(params, routing, pattern, load, seed=1, warmup=400, measure=900):
    sim = Simulator(params, routing, pattern, load, seed=seed)
    return sim.run_steady_state(warmup_cycles=warmup, measure_cycles=measure)


@pytest.fixture(scope="module")
def small_params():
    return SimulationParameters.small()


@pytest.fixture(scope="module")
def uniform_results(small_params):
    load = 0.25
    return {
        routing: steady(small_params, routing, "UN", load)
        for routing in ("MIN", "PB", "OLM", "Base", "ECtN")
    }


class TestUniformTraffic:
    def test_contention_mechanisms_match_min_latency(self, uniform_results):
        """Fig. 5a: Base and ECtN achieve MIN's optimal latency before saturation."""
        min_latency = uniform_results["MIN"].mean_latency
        assert uniform_results["Base"].mean_latency <= min_latency * 1.05
        assert uniform_results["ECtN"].mean_latency <= min_latency * 1.05

    def test_congestion_mechanisms_pay_latency_penalty(self, uniform_results):
        """Fig. 5a: PB and OLM misroute occasionally and have higher latency."""
        min_latency = uniform_results["MIN"].mean_latency
        assert uniform_results["OLM"].mean_latency > min_latency * 1.02
        assert uniform_results["PB"].mean_latency > min_latency * 1.02

    def test_contention_mechanisms_do_not_misroute_under_uniform(self, uniform_results):
        assert uniform_results["Base"].global_misroute_fraction < 0.05
        assert uniform_results["ECtN"].global_misroute_fraction < 0.05

    def test_all_mechanisms_deliver_offered_load(self, uniform_results):
        for routing, result in uniform_results.items():
            assert result.accepted_load == pytest.approx(0.25, abs=0.04), routing


class TestAdversarialTraffic:
    def test_min_saturates_at_single_link_limit(self, small_params):
        """Fig. 5b: MIN cannot exceed 1/(a*p) under ADV+1."""
        result = steady(small_params, "MIN", "ADV+1", 0.3)
        limit = 1.0 / (small_params.topology.a * small_params.topology.p)
        assert result.accepted_load <= limit * 1.25
        assert result.accepted_load >= limit * 0.6

    @pytest.mark.parametrize("routing", ADAPTIVE)
    def test_adaptive_mechanisms_sustain_adversarial_load(self, small_params, routing):
        """Fig. 5b: every adaptive mechanism delivers the offered 0.3 load."""
        result = steady(small_params, routing, "ADV+1", 0.3)
        assert result.accepted_load == pytest.approx(0.3, abs=0.05)
        assert result.global_misroute_fraction > 0.2  # most traffic is diverted

    def test_adaptive_latency_beats_min_under_adversarial(self, small_params):
        min_result = steady(small_params, "MIN", "ADV+1", 0.3)
        olm_result = steady(small_params, "OLM", "ADV+1", 0.3)
        base_result = steady(small_params, "Base", "ADV+1", 0.3)
        assert olm_result.mean_latency < min_result.mean_latency
        assert base_result.mean_latency < min_result.mean_latency


class TestBufferSizeDecoupling:
    def test_contention_trigger_unaffected_by_large_buffers(self, small_params):
        """Section II/III: Base misroutes under ADV+1 regardless of buffer depth."""
        large = small_params.with_buffers(
            local=small_params.local_input_buffer_phits * 8,
            global_=small_params.global_input_buffer_phits * 8,
        )
        small_run = steady(small_params, "Base", "ADV+1", 0.3)
        large_run = steady(large, "Base", "ADV+1", 0.3)
        assert large_run.global_misroute_fraction > 0.2
        assert large_run.accepted_load == pytest.approx(small_run.accepted_load, abs=0.05)


class TestNoDeadlock:
    @pytest.mark.parametrize("routing", ("MIN", "VAL") + ADAPTIVE)
    def test_sustained_adversarial_saturation_keeps_progressing(self, routing):
        """The VC assignment is deadlock-free: even far beyond saturation the
        network keeps delivering packets (the stall watchdog would raise)."""
        params = SimulationParameters.tiny()
        sim = Simulator(params, routing, "ADV+1", offered_load=0.9, seed=3,
                        stall_watchdog_cycles=1500)
        sim.run_cycles(3000)
        assert sim.engine.delivered_packets > 0
