"""Qualitative cross-topology claims: the adversarial MIN-vs-VAL crossover.

The paper's central trade-off — minimal routing collapses under adversarial
traffic while Valiant-style nonminimal routing sustains it, at the cost of
extra latency under benign traffic — is topology-generic.  These tests pin
it on the flattened butterfly, the full mesh, and the torus: under ``ADV+1``
the region shift saturates the direct minimal channel at ``1/p`` of the
injection bandwidth, while VAL (and the source-adaptive UGAL) spread the
same traffic over the other regions' links.  On the torus the hard pattern
is the tornado (``ADV+h`` = a half-ring slab shift): minimal dimension-order
routing funnels every packet the same way around the last ring and caps at
``1/(2p)``, while VAL uses both directions and all intermediate slabs.
"""

import pytest

from repro.config.parameters import (
    FatTreeConfig,
    FlattenedButterflyConfig,
    FullMeshConfig,
    SimulationParameters,
    TorusConfig,
)
from repro.simulation.simulator import Simulator


def _steady(params, routing, pattern, load, seed=1):
    sim = Simulator(params, routing, pattern, load, seed=seed)
    return sim.run_steady_state(warmup_cycles=300, measure_cycles=600)


@pytest.fixture(scope="module")
def fb_params():
    # p == rows == cols == 4: MIN's adversarial ceiling is 1/p = 0.25 while
    # VAL's per-dimension ceiling is (k-1)/(2p) = 0.375 (see the config
    # preset notes), so a 0.35 offered load separates them cleanly.
    return SimulationParameters.tiny(FlattenedButterflyConfig(p=4, rows=4, cols=4))


@pytest.fixture(scope="module")
def mesh_params():
    return SimulationParameters.tiny(FullMeshConfig(p=4, a=8))


class TestFlattenedButterflyCrossover:
    def test_val_out_delivers_min_under_adversarial(self, fb_params):
        min_result = _steady(fb_params, "MIN", "ADV+1", 0.35)
        val_result = _steady(fb_params, "VAL", "ADV+1", 0.35)
        # MIN saturates near its 1/p = 0.25 ceiling; VAL sails past it.
        assert min_result.accepted_load < 0.27
        assert val_result.accepted_load > 1.2 * min_result.accepted_load
        assert val_result.mean_latency < min_result.mean_latency

    def test_ugal_tracks_the_better_mechanism(self, fb_params):
        min_result = _steady(fb_params, "MIN", "ADV+1", 0.35)
        ugal_result = _steady(fb_params, "UGAL", "ADV+1", 0.35)
        assert ugal_result.accepted_load > 1.1 * min_result.accepted_load

    def test_min_beats_val_latency_under_uniform(self, fb_params):
        min_result = _steady(fb_params, "MIN", "UN", 0.2)
        val_result = _steady(fb_params, "VAL", "UN", 0.2)
        assert min_result.mean_latency < val_result.mean_latency
        assert min_result.global_misroute_fraction == 0.0


class TestFlattenedButterflyContentionCrossover:
    """In-transit contention routing (MM+L policy) beyond the Dragonfly:
    under the row-shift adversary the contention counters divert traffic
    over the other rows' column links well past MIN's 1/p ceiling, while at
    low load the counters stay under threshold and the latency is MIN's."""

    def test_base_and_hybrid_beat_min_throughput_under_adversarial(
        self, fb_params
    ):
        min_result = _steady(fb_params, "MIN", "ADV+1", 0.35)
        base_result = _steady(fb_params, "Base", "ADV+1", 0.35)
        hybrid_result = _steady(fb_params, "Hybrid", "ADV+1", 0.35)
        assert base_result.accepted_load >= 1.3 * min_result.accepted_load
        assert hybrid_result.accepted_load >= 1.3 * min_result.accepted_load
        # The gain comes from contention-triggered global (column) detours.
        assert base_result.global_misroute_fraction > 0.0

    def test_base_matches_min_latency_at_low_load(self, fb_params):
        min_result = _steady(fb_params, "MIN", "ADV+1", 0.1)
        base_result = _steady(fb_params, "Base", "ADV+1", 0.1)
        assert base_result.mean_latency <= 1.05 * min_result.mean_latency
        # Under threshold nothing is diverted.
        assert base_result.global_misroute_fraction < 0.02


class TestTorusContentionCrossover:
    """The nonminimal ring-escape policy under the tornado: minimal DOR
    funnels every packet one way around the last ring; the contention
    trigger sends part of the traffic the other direction, using capacity
    MIN cannot reach, with MIN's latency when the counters stay cold."""

    def test_base_and_hybrid_beat_min_throughput_under_tornado(
        self, torus_params
    ):
        min_result = _steady(torus_params, "MIN", "ADV+h", 0.25)
        base_result = _steady(torus_params, "Base", "ADV+h", 0.25)
        hybrid_result = _steady(torus_params, "Hybrid", "ADV+h", 0.25)
        assert base_result.accepted_load >= 1.3 * min_result.accepted_load
        assert hybrid_result.accepted_load >= 1.3 * min_result.accepted_load
        # A torus has no global links: the escape is a local misroute.
        assert base_result.global_misroute_fraction == 0.0
        assert base_result.local_misroute_fraction > 0.0

    def test_base_matches_min_latency_at_low_load(self, torus_params):
        min_result = _steady(torus_params, "MIN", "ADV+h", 0.08)
        base_result = _steady(torus_params, "Base", "ADV+h", 0.08)
        assert base_result.mean_latency <= 1.05 * min_result.mean_latency
        assert base_result.local_misroute_fraction < 0.02


@pytest.fixture(scope="module")
def ft_params():
    # 4-ary 2-tree, p=4: ADV+1 shifts every leaf's traffic one root subtree
    # over, and destination-funneled minimal routing concentrates each
    # leaf's k uplink-loads onto a single uplink (a 1/p = 0.25 ceiling).
    # The adaptive uplink multipath spreads the same traffic over all k
    # equal-cost uplinks, whose aggregate capacity covers full injection.
    return SimulationParameters.tiny(FatTreeConfig.small())


class TestFatTreeContentionCrossover:
    """The uplink-multipath policy under the subtree shift: contention
    counters divert blocked heads onto sibling uplinks (equal cost, no
    global links involved), sailing past MIN's funnel ceiling while
    matching MIN's latency when the counters stay cold."""

    def test_base_and_hybrid_beat_min_throughput_under_subtree_shift(
        self, ft_params
    ):
        min_result = _steady(ft_params, "MIN", "ADV+1", 0.35)
        base_result = _steady(ft_params, "Base", "ADV+1", 0.35)
        hybrid_result = _steady(ft_params, "Hybrid", "ADV+1", 0.35)
        # MIN saturates near the 1/p = 0.25 funnel ceiling.
        assert min_result.accepted_load < 0.27
        assert base_result.accepted_load >= 1.3 * min_result.accepted_load
        assert hybrid_result.accepted_load >= 1.3 * min_result.accepted_load
        # A fat tree has no global links: every divert is a local misroute
        # onto a sibling uplink.
        assert base_result.global_misroute_fraction == 0.0
        assert base_result.local_misroute_fraction > 0.0

    def test_base_matches_min_latency_at_low_load(self, ft_params):
        min_result = _steady(ft_params, "MIN", "ADV+1", 0.1)
        base_result = _steady(ft_params, "Base", "ADV+1", 0.1)
        assert base_result.mean_latency <= 1.05 * min_result.mean_latency
        assert base_result.local_misroute_fraction < 0.02


class TestFullMeshCrossover:
    def test_val_and_ugal_out_deliver_min_under_adversarial(self, mesh_params):
        min_result = _steady(mesh_params, "MIN", "ADV+1", 0.35)
        val_result = _steady(mesh_params, "VAL", "ADV+1", 0.35)
        ugal_result = _steady(mesh_params, "UGAL", "ADV+1", 0.35)
        assert min_result.accepted_load < 0.27
        assert val_result.accepted_load > 1.5 * min_result.accepted_load
        assert ugal_result.accepted_load > 1.5 * min_result.accepted_load


@pytest.fixture(scope="module")
def torus_params():
    # 4x4 torus, p=2: ADV+h is the tornado (slab shift by dims[-1]//2 = 2).
    # Minimal DOR concentrates the whole last-ring load on one direction
    # (two consecutive plus hops per packet -> per-link load 2*p*rho, a
    # 1/(2p) = 0.25 theoretical ceiling, roughly halved by the tiny
    # buffers), while VAL's dateline VCs let it spread over both directions
    # and the intermediate slabs.
    return SimulationParameters.tiny(TorusConfig.tiny())


class TestTorusCrossover:
    def test_val_out_delivers_min_under_tornado(self, torus_params):
        min_result = _steady(torus_params, "MIN", "ADV+h", 0.25)
        val_result = _steady(torus_params, "VAL", "ADV+h", 0.25)
        assert min_result.accepted_load < 0.14
        assert val_result.accepted_load > 1.5 * min_result.accepted_load
        assert val_result.mean_latency < min_result.mean_latency

    def test_ugal_tracks_the_better_mechanism(self, torus_params):
        min_result = _steady(torus_params, "MIN", "ADV+h", 0.25)
        ugal_result = _steady(torus_params, "UGAL", "ADV+h", 0.25)
        assert ugal_result.accepted_load > 1.15 * min_result.accepted_load

    def test_min_beats_val_latency_under_uniform(self, torus_params):
        min_result = _steady(torus_params, "MIN", "UN", 0.1)
        val_result = _steady(torus_params, "VAL", "UN", 0.1)
        assert min_result.mean_latency < val_result.mean_latency
        # A torus has no global links: VAL's detours are local misroutes.
        assert min_result.local_misroute_fraction == 0.0
        assert min_result.global_misroute_fraction == 0.0
        assert val_result.global_misroute_fraction == 0.0
        assert val_result.local_misroute_fraction > 0.5
