"""Qualitative cross-topology claims: the adversarial MIN-vs-VAL crossover.

The paper's central trade-off — minimal routing collapses under adversarial
traffic while Valiant-style nonminimal routing sustains it, at the cost of
extra latency under benign traffic — is topology-generic.  These tests pin
it on the flattened butterfly and the full mesh: under ``ADV+1`` the region
shift saturates the direct minimal channel at ``1/p`` of the injection
bandwidth, while VAL (and the source-adaptive UGAL) spread the same traffic
over the other regions' links.
"""

import pytest

from repro.config.parameters import (
    FlattenedButterflyConfig,
    FullMeshConfig,
    SimulationParameters,
)
from repro.simulation.simulator import Simulator


def _steady(params, routing, pattern, load, seed=1):
    sim = Simulator(params, routing, pattern, load, seed=seed)
    return sim.run_steady_state(warmup_cycles=300, measure_cycles=600)


@pytest.fixture(scope="module")
def fb_params():
    # p == rows == cols == 4: MIN's adversarial ceiling is 1/p = 0.25 while
    # VAL's per-dimension ceiling is (k-1)/(2p) = 0.375 (see the config
    # preset notes), so a 0.35 offered load separates them cleanly.
    return SimulationParameters.tiny(FlattenedButterflyConfig(p=4, rows=4, cols=4))


@pytest.fixture(scope="module")
def mesh_params():
    return SimulationParameters.tiny(FullMeshConfig(p=4, a=8))


class TestFlattenedButterflyCrossover:
    def test_val_out_delivers_min_under_adversarial(self, fb_params):
        min_result = _steady(fb_params, "MIN", "ADV+1", 0.35)
        val_result = _steady(fb_params, "VAL", "ADV+1", 0.35)
        # MIN saturates near its 1/p = 0.25 ceiling; VAL sails past it.
        assert min_result.accepted_load < 0.27
        assert val_result.accepted_load > 1.2 * min_result.accepted_load
        assert val_result.mean_latency < min_result.mean_latency

    def test_ugal_tracks_the_better_mechanism(self, fb_params):
        min_result = _steady(fb_params, "MIN", "ADV+1", 0.35)
        ugal_result = _steady(fb_params, "UGAL", "ADV+1", 0.35)
        assert ugal_result.accepted_load > 1.1 * min_result.accepted_load

    def test_min_beats_val_latency_under_uniform(self, fb_params):
        min_result = _steady(fb_params, "MIN", "UN", 0.2)
        val_result = _steady(fb_params, "VAL", "UN", 0.2)
        assert min_result.mean_latency < val_result.mean_latency
        assert min_result.global_misroute_fraction == 0.0


class TestFullMeshCrossover:
    def test_val_and_ugal_out_deliver_min_under_adversarial(self, mesh_params):
        min_result = _steady(mesh_params, "MIN", "ADV+1", 0.35)
        val_result = _steady(mesh_params, "VAL", "ADV+1", 0.35)
        ugal_result = _steady(mesh_params, "UGAL", "ADV+1", 0.35)
        assert min_result.accepted_load < 0.27
        assert val_result.accepted_load > 1.5 * min_result.accepted_load
        assert ugal_result.accepted_load > 1.5 * min_result.accepted_load
