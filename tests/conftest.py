"""Shared fixtures for the test suite.

All simulation-based tests use the ``tiny`` parameter preset (a 24-node
Dragonfly with short link latencies) so that individual tests run in well
under a second; the integration tests that check the paper's qualitative
claims use the ``small`` preset with short measurement windows.

The registry-driven fixtures (``every_topology`` / ``every_routing`` /
``every_tiny_topology``) are the single source of truth for "run this over
everything registered": test files must parametrize through them instead of
hand-copying the registry lists, so a newly registered topology or routing
mechanism is picked up by the whole suite automatically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.parameters import DragonflyConfig, SimulationParameters
from repro.routing import available_routings
from repro.topology.base import Topology
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.registry import (
    available_topologies,
    create_topology,
    topology_preset,
)


@pytest.fixture
def tiny_params() -> SimulationParameters:
    return SimulationParameters.tiny()


@pytest.fixture
def small_params() -> SimulationParameters:
    return SimulationParameters.small()


@pytest.fixture
def tiny_topology(tiny_params) -> DragonflyTopology:
    return DragonflyTopology(tiny_params.topology)


@pytest.fixture
def small_topology(small_params) -> DragonflyTopology:
    return DragonflyTopology(small_params.topology)


@pytest.fixture
def paper_config() -> DragonflyConfig:
    return DragonflyConfig.paper()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


# ---------------------------------------------------------- registry fixtures
@pytest.fixture(params=available_topologies())
def every_topology(request) -> str:
    """Registry name of each registered topology (parametrized)."""
    return request.param


@pytest.fixture(params=available_routings())
def every_routing(request) -> str:
    """Registry name of each registered routing mechanism (parametrized)."""
    return request.param


@pytest.fixture
def every_tiny_topology(every_topology) -> Topology:
    """Each registered topology instantiated on its ``tiny`` preset."""
    return create_topology(topology_preset(every_topology, "tiny"))
