"""Shared fixtures for the test suite.

All simulation-based tests use the ``tiny`` parameter preset (a 24-node
Dragonfly with short link latencies) so that individual tests run in well
under a second; the integration tests that check the paper's qualitative
claims use the ``small`` preset with short measurement windows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.parameters import DragonflyConfig, SimulationParameters
from repro.topology.dragonfly import DragonflyTopology


@pytest.fixture
def tiny_params() -> SimulationParameters:
    return SimulationParameters.tiny()


@pytest.fixture
def small_params() -> SimulationParameters:
    return SimulationParameters.small()


@pytest.fixture
def tiny_topology(tiny_params) -> DragonflyTopology:
    return DragonflyTopology(tiny_params.topology)


@pytest.fixture
def small_topology(small_params) -> DragonflyTopology:
    return DragonflyTopology(small_params.topology)


@pytest.fixture
def paper_config() -> DragonflyConfig:
    return DragonflyConfig.paper()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
