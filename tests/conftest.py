"""Shared fixtures for the test suite.

All simulation-based tests use the ``tiny`` parameter preset (a 24-node
Dragonfly with short link latencies) so that individual tests run in well
under a second; the integration tests that check the paper's qualitative
claims use the ``small`` preset with short measurement windows.

The registry-driven fixtures (``every_topology`` / ``every_routing`` /
``every_tiny_topology``) are the single source of truth for "run this over
everything registered": test files must parametrize through them instead of
hand-copying the registry lists, so a newly registered topology or routing
mechanism is picked up by the whole suite automatically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.parameters import DragonflyConfig, SimulationParameters
from repro.routing import available_routings
from repro.topology.base import Topology
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.registry import (
    available_topologies,
    create_topology,
    topology_preset,
)


@pytest.fixture
def tiny_params() -> SimulationParameters:
    return SimulationParameters.tiny()


@pytest.fixture
def small_params() -> SimulationParameters:
    return SimulationParameters.small()


@pytest.fixture
def tiny_topology(tiny_params) -> DragonflyTopology:
    return DragonflyTopology(tiny_params.topology)


@pytest.fixture
def small_topology(small_params) -> DragonflyTopology:
    return DragonflyTopology(small_params.topology)


@pytest.fixture
def paper_config() -> DragonflyConfig:
    return DragonflyConfig.paper()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


# ---------------------------------------------------------- registry fixtures
@pytest.fixture(params=available_topologies())
def every_topology(request) -> str:
    """Registry name of each registered topology (parametrized)."""
    return request.param


@pytest.fixture(params=available_routings())
def every_routing(request) -> str:
    """Registry name of each registered routing mechanism (parametrized)."""
    return request.param


@pytest.fixture
def every_tiny_topology(every_topology) -> Topology:
    """Each registered topology instantiated on its ``tiny`` preset."""
    return create_topology(topology_preset(every_topology, "tiny"))


# ------------------------------------------------------- backend-aware helpers
@pytest.fixture
def wedge_ejection_ports():
    """Block every ejection port forever — a guaranteed total stall.

    Returns a function of a built ``Simulator``.  The wedge goes through
    whichever state the engine backend actually reads: the SoA engine
    copies the object network at construction and never consults it again,
    so mutating the object routers would be a silent no-op there.
    """
    from repro.topology.base import PortKind

    def _wedge(sim):
        engine = sim.engine
        kinds = sim.network.topology.port_kinds
        ejection = [p for p, kind in enumerate(kinds) if kind is PortKind.INJECTION]
        if hasattr(engine, "_st"):
            st = engine._st
            for rid in range(st.R):
                for port in ejection:
                    st.link_busy[rid * st.P + port] = 10**9
            return
        for router in sim.network.routers:
            for port in ejection:
                router.output_ports[port].link_busy_until = 10**9

    return _wedge
