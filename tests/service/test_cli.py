"""The sweep-service CLI, driven in-process through ``main``.

Pins the exact contract the CI service-smoke lane relies on: exit code 0
with all assertions green on a warm replay, exit code 2 when an
``--assert-*`` / ``--expect-rows`` check fails, exit code 1 on usage
errors, and telemetry documents that embed the BENCH baseline.
"""

from __future__ import annotations

import json

import pytest

from repro.tools.sweep_service import main, run_experiment
from repro.service import CachingSweepExecutor

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


def _run_args(tmp_path, *extra: str):
    return [
        "run",
        "--experiment",
        "figure5",
        "--scale",
        "tiny",
        "--pattern",
        "UN",
        "--routings",
        "MIN",
        "--loads",
        "0.1",
        "--cache-dir",
        str(tmp_path / "cache"),
        "--quiet",
        *extra,
    ]


class TestRunCommand:
    def test_cold_then_warm_with_all_assertions(self, tmp_path):
        cold = _run_args(
            tmp_path,
            "--rows-out",
            str(tmp_path / "out" / "rows-cold.json"),
            "--telemetry-out",
            str(tmp_path / "out" / "tele-cold.json"),
        )
        assert main(cold) == 0
        tele_cold = json.loads((tmp_path / "out" / "tele-cold.json").read_text())
        assert tele_cold["schema"] == "sweep-service-run-v1"
        assert tele_cold["cache"]["hits"] == 0
        assert tele_cold["cache"]["misses"] == tele_cold["points"] > 0

        warm = _run_args(
            tmp_path,
            "--rows-out",
            str(tmp_path / "out" / "rows-warm.json"),
            "--telemetry-out",
            str(tmp_path / "out" / "tele-warm.json"),
            "--expect-rows",
            str(tmp_path / "out" / "rows-cold.json"),
            "--assert-min-hit-rate",
            "0.9",
            "--cold-telemetry",
            str(tmp_path / "out" / "tele-cold.json"),
            # The warm run serves from cache; even a modest floor proves
            # the replay path without making the test timing-sensitive.
            "--assert-min-speedup",
            "1.0",
        )
        assert main(warm) == 0
        tele_warm = json.loads((tmp_path / "out" / "tele-warm.json").read_text())
        assert tele_warm["cache"]["hit_rate"] == 1.0
        rows_cold = (tmp_path / "out" / "rows-cold.json").read_text()
        rows_warm = (tmp_path / "out" / "rows-warm.json").read_text()
        assert rows_warm == rows_cold  # byte-identical replay

    def test_failed_row_expectation_exits_2(self, tmp_path):
        assert main(_run_args(tmp_path)) == 0
        wrong = tmp_path / "wrong-rows.json"
        wrong.write_text(json.dumps([{"routing": "nope"}]))
        assert main(_run_args(tmp_path, "--expect-rows", str(wrong))) == 2

    def test_unmet_hit_rate_exits_2(self, tmp_path):
        # Cold run: zero hits, so any positive floor fails.
        assert main(_run_args(tmp_path, "--assert-min-hit-rate", "0.5")) == 2

    def test_speedup_without_cold_telemetry_is_a_usage_error(self, tmp_path):
        assert main(_run_args(tmp_path, "--assert-min-speedup", "10")) == 1

    def test_bench_baseline_is_embedded(self, tmp_path):
        baseline = tmp_path / "BENCH_fake.json"
        baseline.write_text(
            json.dumps(
                {
                    "schema": "bench-trajectory-v3",
                    "tests": {
                        "t": {"seconds": 1.5, "cycles_per_second": 2.0, "backend": "soa"}
                    },
                }
            )
        )
        tele = tmp_path / "tele.json"
        args = _run_args(
            tmp_path, "--bench-baseline", str(baseline), "--telemetry-out", str(tele)
        )
        assert main(args) == 0
        doc = json.loads(tele.read_text())
        assert doc["bench_baseline"]["schema"] == "bench-trajectory-v3"
        assert doc["bench_baseline"]["tests"]["t"]["seconds"] == 1.5


class TestAdminCommands:
    def test_stats_prune_clear_cycle(self, tmp_path, capsys):
        assert main(_run_args(tmp_path)) == 0
        cache_dir = str(tmp_path / "cache")

        assert main(["stats", "--cache-dir", cache_dir]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["entries"] > 0
        assert summary["kinds"] == {"steady": summary["entries"]}

        # Nothing is stale under the current schema revision.
        assert main(["prune", "--cache-dir", cache_dir]) == 0
        assert "pruned 0 stale entries" in capsys.readouterr().out

        assert main(["clear", "--cache-dir", cache_dir]) == 0
        assert f"removed {summary['entries']} entries" in capsys.readouterr().out
        assert main(["stats", "--cache-dir", cache_dir]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0


class TestRunExperimentDispatch:
    def test_unknown_experiment_rejected(self):
        exe = CachingSweepExecutor()
        try:
            with pytest.raises(ValueError, match="unknown experiment"):
                run_experiment("figure99", exe)
        finally:
            exe.close()

    def test_fault_sweep_routes_through_the_executor(self, tmp_path):
        exe = CachingSweepExecutor()
        try:
            rows, report = run_experiment(
                "fault_sweep", exe, scale="tiny", pattern="UN", routings=["MIN"]
            )
        finally:
            exe.close()
        assert rows and "MIN" in report
        # Healthy baseline points of the fault sweep are cacheable; the
        # sweep must have gone through the caching layer.
        assert exe.stats.lookups > 0
