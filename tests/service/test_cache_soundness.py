"""Cross-backend cache soundness: cached rows are bit-identical everywhere.

The cache key deliberately excludes the ``backend`` field, so a point
computed under ``REPRO_BACKEND=object`` may be served to an soa request
(and vice versa).  That is sound only if the served row equals what the
requesting backend would have computed — bit for bit, by the same SHA-256
fingerprint the golden suite and ``tests/simulation/test_soa_backend.py``
pin.  This suite closes the loop end-to-end through the real cache:
compute on one backend, serve from cache to the other, recompute fresh on
the other, compare fingerprints.
"""

from __future__ import annotations

import pytest

from repro.config.parameters import SimulationParameters
from repro.experiments.parallel import (
    SteadyPointSpec,
    TransientPointSpec,
    run_steady_point,
    run_transient_point_spec,
)
from repro.service import (
    CachingSweepExecutor,
    DirectoryResultCache,
    point_key,
    result_fingerprint,
)
from repro.topology.faults import FaultModel

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


def _steady_spec(backend: str, *, faults: bool = False) -> SteadyPointSpec:
    return SteadyPointSpec(
        params=SimulationParameters.tiny().with_backend(backend),
        routing="Base",
        pattern="ADV+1",
        offered_load=0.45,
        warmup_cycles=80,
        measure_cycles=160,
        seed=11,
        fault_model=FaultModel(link_failure_percent=10.0) if faults else None,
    )


def _transient_spec(backend: str) -> TransientPointSpec:
    return TransientPointSpec(
        params=SimulationParameters.tiny().with_backend(backend),
        routing="Base",
        before="UN",
        after="ADV+1",
        offered_load=0.3,
        warmup_cycles=120,
        observe_before=40,
        observe_after=80,
        bin_size=20,
        seed=5,
    )


@pytest.mark.parametrize("producer,consumer", [("object", "soa"), ("soa", "object")])
def test_steady_row_cached_on_one_backend_serves_the_other(
    tmp_path, producer, consumer
):
    cache = DirectoryResultCache(tmp_path / "cache")
    exe = CachingSweepExecutor(cache=cache)
    try:
        # Cold: compute under the producer backend; the row enters the cache.
        (produced,) = exe.map(run_steady_point, [_steady_spec(producer)])
        assert exe.stats.misses == 1 and exe.stats.stores == 1

        # Warm: the consumer backend's request maps to the same key and is
        # served from cache without computing.
        consumer_spec = _steady_spec(consumer)
        assert point_key(consumer_spec) == point_key(_steady_spec(producer))
        (served,) = exe.map(run_steady_point, [consumer_spec])
        assert exe.stats.hits == 1
    finally:
        exe.close()

    # The served row must equal a *fresh* computation on the consumer
    # backend — the cross-backend bit-identity contract, via fingerprints.
    fresh = run_steady_point(consumer_spec)
    assert result_fingerprint(served) == result_fingerprint(fresh)
    assert result_fingerprint(served) == result_fingerprint(produced)
    assert served == fresh


def test_faulty_steady_row_is_cross_backend_sound(tmp_path):
    # Fault-aware routing exercises the fault RNG stream and the reroute /
    # drop counters; the cached row must still match an soa recomputation.
    cache = DirectoryResultCache(tmp_path / "cache")
    exe = CachingSweepExecutor(cache=cache)
    try:
        (served,) = exe.map(run_steady_point, [_steady_spec("object", faults=True)])
    finally:
        exe.close()
    fresh = run_steady_point(_steady_spec("soa", faults=True))
    assert result_fingerprint(served) == result_fingerprint(fresh)


def test_transient_row_cached_on_object_serves_soa(tmp_path):
    cache = DirectoryResultCache(tmp_path / "cache")
    exe = CachingSweepExecutor(cache=cache)
    try:
        exe.map(run_transient_point_spec, [_transient_spec("object")])
        (served,) = exe.map(run_transient_point_spec, [_transient_spec("soa")])
        assert exe.stats.hits == 1
    finally:
        exe.close()
    fresh = run_transient_point_spec(_transient_spec("soa"))
    assert result_fingerprint(served) == result_fingerprint(fresh)
    assert served == fresh


def test_cache_hit_is_byte_round_trip_of_the_stored_row(tmp_path):
    # A hit must be the fingerprint-verified deserialization of the stored
    # file, not a re-computation: corrupting the file after the cold run
    # must turn the warm request into a recomputation, never a wrong row.
    cache = DirectoryResultCache(tmp_path / "cache")
    exe = CachingSweepExecutor(cache=cache)
    try:
        spec = _steady_spec("object")
        (produced,) = exe.map(run_steady_point, [spec])
        path = cache._path(point_key(spec))
        path.write_text(path.read_text().replace("mean_latency", "mean_lateness"))
        (recomputed,) = exe.map(run_steady_point, [spec])
        assert exe.stats.invalidated == 0  # executor counts via cache.stats
        assert cache.stats.invalidated == 1
        assert result_fingerprint(recomputed) == result_fingerprint(produced)
    finally:
        exe.close()
