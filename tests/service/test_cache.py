"""Soundness of the cache entry envelope and both cache backends.

The one property everything rests on: a lookup either returns the
bit-exact result that was stored, or a miss.  There is no third outcome —
corruption, schema drift, and key collisions all degrade to recomputation,
never to a wrong row.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.experiments.parallel import PointFailure
from repro.service.cache import (
    CACHE_ENTRY_SCHEMA,
    STALE_TMP_GRACE_SECONDS,
    CacheStats,
    DirectoryResultCache,
    InMemoryResultCache,
    decode_entry,
    encode_entry,
)
from repro.service.keys import result_fingerprint
from repro.simulation.results import (
    GOLDENS_SCHEMA_REV,
    SteadyStateResult,
    TransientResult,
)

KEY = "ab" * 32
OTHER_KEY = "cd" * 32


def steady_result(**overrides) -> SteadyStateResult:
    base = dict(
        routing="Base",
        pattern="ADV+1",
        offered_load=0.3,
        seed=42,
        mean_latency=123.456789,
        p99_latency=987.654321,
        accepted_load=0.29,
        global_misroute_fraction=0.125,
        local_misroute_fraction=0.0625,
        mean_hops=3.5,
        delivered_packets=12345,
        dropped_packets=3,
        fault_rerouted_packets=7,
    )
    base.update(overrides)
    return SteadyStateResult(**base)


def transient_result() -> TransientResult:
    return TransientResult(
        routing="Hybrid",
        offered_load=0.2,
        seed=7,
        switch_cycle=500,
        cycles=[-20, -10, 0, 10, 20],
        mean_latency=[10.0, 11.5, 40.25, 22.125, 15.0],
        misrouted_fraction=[0.0, 0.0, 0.5, 0.25, 0.125],
    )


class TestEntryEnvelope:
    @pytest.mark.parametrize("result", [steady_result(), transient_result()])
    def test_round_trip_is_bit_exact(self, result):
        entry = encode_entry(KEY, result)
        # Force the JSON byte round-trip the directory cache performs.
        entry = json.loads(json.dumps(entry, sort_keys=True))
        decoded = decode_entry(entry, KEY)
        assert decoded == result
        assert result_fingerprint(decoded) == result_fingerprint(result)

    def test_envelope_carries_schema_and_fingerprint(self):
        entry = encode_entry(KEY, steady_result())
        assert entry["entry_schema"] == CACHE_ENTRY_SCHEMA
        assert entry["schema"] == GOLDENS_SCHEMA_REV
        assert entry["key"] == KEY
        assert entry["kind"] == "steady"
        assert entry["fingerprint"] == result_fingerprint(steady_result())

    def test_failures_are_never_encodable(self):
        failure = PointFailure(spec=None, error="boom", kind="error")
        with pytest.raises(TypeError):
            encode_entry(KEY, failure)

    def test_stale_goldens_schema_rev_invalidates(self):
        entry = encode_entry(KEY, steady_result())
        entry["schema"] = "golden-results-v1"
        assert decode_entry(entry, KEY) is None

    def test_foreign_envelope_layout_invalidates(self):
        entry = encode_entry(KEY, steady_result())
        entry["entry_schema"] = CACHE_ENTRY_SCHEMA + 1
        assert decode_entry(entry, KEY) is None

    def test_key_mismatch_invalidates(self):
        entry = encode_entry(KEY, steady_result())
        assert decode_entry(entry, OTHER_KEY) is None

    def test_unknown_kind_invalidates(self):
        entry = encode_entry(KEY, steady_result())
        entry["kind"] = "mystery"
        assert decode_entry(entry, KEY) is None

    def test_tampered_result_fails_the_fingerprint_check(self):
        entry = encode_entry(KEY, steady_result())
        entry["result"]["mean_latency"] += 1e-9
        assert decode_entry(entry, KEY) is None

    def test_missing_result_fields_invalidate(self):
        entry = encode_entry(KEY, steady_result())
        del entry["result"]["mean_latency"]
        assert decode_entry(entry, KEY) is None


class TestInMemoryCache:
    def test_miss_then_store_then_hit(self):
        cache = InMemoryResultCache()
        assert cache.lookup(KEY) is None
        cache.store(KEY, steady_result())
        assert cache.lookup(KEY) == steady_result()
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert len(cache) == 1 and KEY in cache

    def test_tampered_entry_is_dropped_not_served(self):
        cache = InMemoryResultCache()
        cache.store(KEY, steady_result())
        cache._entries[KEY]["result"]["seed"] = 999.0
        assert cache.lookup(KEY) is None
        assert cache.stats.invalidated == 1
        assert KEY not in cache  # dropped, so the next store can heal it

    def test_clear(self):
        cache = InMemoryResultCache()
        cache.store(KEY, steady_result())
        cache.clear()
        assert len(cache) == 0


class TestDirectoryCache:
    def test_entries_survive_across_instances(self, tmp_path):
        DirectoryResultCache(tmp_path / "c").store(KEY, steady_result())
        reopened = DirectoryResultCache(tmp_path / "c")
        assert reopened.lookup(KEY) == steady_result()
        assert len(reopened) == 1 and KEY in reopened

    def test_fan_out_layout_and_no_leftover_temp_files(self, tmp_path):
        cache = DirectoryResultCache(tmp_path / "c")
        cache.store(KEY, steady_result())
        assert (tmp_path / "c" / KEY[:2] / f"{KEY}.json").exists()
        assert not list((tmp_path / "c").rglob("*.tmp"))

    def test_corrupt_file_is_a_miss_and_removed(self, tmp_path):
        cache = DirectoryResultCache(tmp_path / "c")
        cache.store(KEY, steady_result())
        path = tmp_path / "c" / KEY[:2] / f"{KEY}.json"
        path.write_text("{ not json")
        assert cache.lookup(KEY) is None
        assert cache.stats.invalidated == 1
        assert not path.exists()

    def test_tampered_file_is_a_miss_and_removed(self, tmp_path):
        cache = DirectoryResultCache(tmp_path / "c")
        cache.store(KEY, steady_result())
        path = tmp_path / "c" / KEY[:2] / f"{KEY}.json"
        entry = json.loads(path.read_text())
        entry["result"]["accepted_load"] = 1.0
        path.write_text(json.dumps(entry))
        assert cache.lookup(KEY) is None
        assert not path.exists()

    def test_prune_stale_drops_only_old_schema_entries(self, tmp_path):
        cache = DirectoryResultCache(tmp_path / "c")
        cache.store(KEY, steady_result())
        cache.store(OTHER_KEY, transient_result())
        path = tmp_path / "c" / KEY[:2] / f"{KEY}.json"
        entry = json.loads(path.read_text())
        entry["schema"] = "golden-results-v1"
        path.write_text(json.dumps(entry))
        assert cache.prune_stale() == 1
        assert KEY not in cache and OTHER_KEY in cache

    def test_clear_and_summary(self, tmp_path):
        cache = DirectoryResultCache(tmp_path / "c")
        cache.store(KEY, steady_result())
        cache.store(OTHER_KEY, transient_result())
        summary = cache.summary()
        assert summary["entries"] == 2
        assert summary["corrupt"] == 0
        assert summary["tmp_files"] == 0
        assert summary["kinds"] == {"steady": 1, "transient": 1}
        assert summary["schemas"] == {GOLDENS_SCHEMA_REV: 2}
        assert cache.clear() == 2
        assert len(cache) == 0

    @staticmethod
    def _orphan_tmp(cache: DirectoryResultCache, key: str, age: float):
        """Plant a ``.tmp`` file as a writer dying mid-store would leave it."""
        fan_out = cache.root / key[:2]
        fan_out.mkdir(parents=True, exist_ok=True)
        path = fan_out / f"tmp{key[:6]}.tmp"
        path.write_text('{"half": ')
        when = time.time() - age
        os.utime(path, (when, when))
        return path

    # Regression: orphaned temp files (writer died between mkstemp and
    # os.replace) were invisible to the ``??/*.json`` glob, so neither
    # prune_stale nor clear ever removed them and they accumulated forever.
    def test_prune_stale_sweeps_orphaned_tmp_files(self, tmp_path):
        cache = DirectoryResultCache(tmp_path / "c")
        cache.store(KEY, steady_result())
        old = self._orphan_tmp(cache, KEY, age=2 * STALE_TMP_GRACE_SECONDS)
        fresh = self._orphan_tmp(cache, OTHER_KEY, age=0.0)
        assert cache.prune_stale() == 1
        assert not old.exists()
        # A live writer's temp file is younger than the grace period and
        # must survive the sweep.
        assert fresh.exists()
        assert cache.lookup(KEY) == steady_result()

    def test_clear_removes_stale_tmp_files_too(self, tmp_path):
        cache = DirectoryResultCache(tmp_path / "c")
        cache.store(KEY, steady_result())
        old = self._orphan_tmp(cache, KEY, age=2 * STALE_TMP_GRACE_SECONDS)
        assert cache.clear() == 2
        assert not old.exists()
        assert len(cache) == 0

    # Regression: summary() counted unreadable files in ``entries`` while
    # excluding them from bytes/kinds/schemas, so the numbers disagreed.
    def test_summary_reports_corrupt_and_tmp_files_separately(self, tmp_path):
        cache = DirectoryResultCache(tmp_path / "c")
        cache.store(KEY, steady_result())
        cache.store(OTHER_KEY, transient_result())
        (tmp_path / "c" / KEY[:2] / f"{KEY}.json").write_text("{ not json")
        self._orphan_tmp(cache, KEY, age=2 * STALE_TMP_GRACE_SECONDS)
        summary = cache.summary()
        assert summary["entries"] == 1
        assert summary["corrupt"] == 1
        assert summary["tmp_files"] == 1
        assert summary["kinds"] == {"transient": 1}
        assert summary["schemas"] == {GOLDENS_SCHEMA_REV: 1}


class TestCacheStats:
    def test_hit_rate_and_lookups(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        assert CacheStats().hit_rate == 0.0

    def test_merge_accumulates_every_counter(self):
        a = CacheStats(hits=1, misses=2, stores=3, coalesced=4, invalidated=5)
        b = CacheStats(hits=10, misses=20, stores=30, coalesced=40, invalidated=50)
        a.merge(b)
        assert (a.hits, a.misses, a.stores, a.coalesced, a.invalidated) == (
            11,
            22,
            33,
            44,
            55,
        )

    def test_as_dict_is_json_serializable(self):
        json.dumps(CacheStats(hits=1, misses=1).as_dict())
