"""Concurrency and robustness of the async sweep service.

No pytest-asyncio in the toolchain: every test is a sync function driving
``asyncio.run`` over a scripted scenario.  Blocking points are modeled
with ``threading.Event`` (the pool side runs in ``asyncio.to_thread``),
so every race this suite exercises — coalescing while in flight,
backpressure at a full queue, cancellation of undispatched points — is
deterministic, not sleep-and-hope.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.config.parameters import SimulationParameters
from repro.experiments.parallel import PointFailure, SteadyPointSpec
from repro.service import (
    InMemoryResultCache,
    Job,
    PointOutcome,
    ServiceClient,
    ServiceConfig,
    ServiceOverloadedError,
    SweepService,
    point_key,
)
from repro.simulation.results import SteadyStateResult


def spec(seed: int) -> SteadyPointSpec:
    return SteadyPointSpec(
        params=SimulationParameters.tiny(),
        routing="MIN",
        pattern="UN",
        offered_load=0.1,
        warmup_cycles=30,
        measure_cycles=60,
        seed=seed,
    )


def fake_result(point: SteadyPointSpec) -> SteadyStateResult:
    """Deterministic stand-in result derived from the spec coordinates."""
    return SteadyStateResult(
        routing=point.routing,
        pattern=point.pattern,
        offered_load=point.offered_load,
        seed=point.seed,
        mean_latency=100.0 + point.seed,
        p99_latency=200.0 + point.seed,
        accepted_load=point.offered_load,
        global_misroute_fraction=0.0,
        local_misroute_fraction=0.0,
        mean_hops=3.0,
        delivered_packets=1000 + point.seed,
    )


class BlockingRunner:
    """A point runner that parks until the test releases it."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, point):
        self.started.set()
        assert self.release.wait(timeout=10.0), "test never released the runner"
        with self._lock:
            self.calls += 1
        return fake_result(point)

    async def dispatched(self):
        """Await (without blocking the loop) until a point is computing."""
        for _ in range(1000):
            if self.started.is_set():
                return
            await asyncio.sleep(0.005)
        raise AssertionError("runner was never dispatched")


def _hang_forever(point):  # module-level: pool workers must pickle it
    time.sleep(60.0)
    return fake_result(point)


class TestCoalescing:
    def test_duplicate_in_flight_requests_share_one_computation(self):
        async def scenario():
            runner = BlockingRunner()
            cache = InMemoryResultCache()
            async with SweepService(cache=cache, point_runner=runner) as service:
                first = await service.submit([spec(1)])
                await runner.dispatched()
                # Same key while the first computation is parked: coalesce.
                second = await service.submit([spec(1)])
                assert service.stats.coalesced == 1
                runner.release.set()
                (value_a,) = await first.results()
                (value_b,) = await second.results()
                assert value_a == value_b == fake_result(spec(1))
                assert runner.calls == 1
                assert service.computed_points == 1
                telemetry = service.telemetry()
            assert telemetry["cache"]["coalesced"] == 1
            assert telemetry["cache"]["misses"] == 1
            assert point_key(spec(1)) in cache

        asyncio.run(scenario())

    def test_after_resolution_new_requests_hit_the_cache_instead(self):
        async def scenario():
            runner = BlockingRunner()
            runner.release.set()
            cache = InMemoryResultCache()
            async with SweepService(cache=cache, point_runner=runner) as service:
                job = await service.submit([spec(1)])
                await job.results()
                again = await service.submit([spec(1)])
                (value,) = await again.results()
                assert value == fake_result(spec(1))
                assert service.stats.hits == 1
                assert service.stats.coalesced == 0
                assert runner.calls == 1

        asyncio.run(scenario())


class TestFailureIsolation:
    def test_raising_point_surfaces_as_failure_and_is_not_cached(self):
        def explode(point):
            raise RuntimeError("worker crashed")

        async def scenario():
            cache = InMemoryResultCache()
            config = ServiceConfig(retries=0)
            async with SweepService(
                cache=cache, config=config, point_runner=explode
            ) as service:
                job = await service.submit([spec(1)])
                (value,) = await job.results()
                assert isinstance(value, PointFailure)
                assert value.kind == "error"
                assert "worker crashed" in value.error
                assert service.failed_points == 1
                assert service.telemetry()["inflight"] == 0
            assert point_key(spec(1)) not in cache
            assert len(cache) == 0

            # The failure did not poison anything: a healthy service over
            # the *same* cache computes and stores the point normally.
            runner = BlockingRunner()
            runner.release.set()
            async with SweepService(cache=cache, point_runner=runner) as service:
                job = await service.submit([spec(1)])
                (value,) = await job.results()
                assert value == fake_result(spec(1))
            assert point_key(spec(1)) in cache

        asyncio.run(scenario())

    def test_mixed_batch_keeps_good_points(self):
        def flaky(point):
            if point.seed == 2:
                raise ValueError("bad point")
            return fake_result(point)

        async def scenario():
            cache = InMemoryResultCache()
            config = ServiceConfig(retries=0)
            async with SweepService(
                cache=cache, config=config, point_runner=flaky
            ) as service:
                job = await service.submit([spec(1), spec(2), spec(3)])
                values = await job.results()
            assert values[0] == fake_result(spec(1))
            assert isinstance(values[1], PointFailure)
            assert values[2] == fake_result(spec(3))
            assert point_key(spec(1)) in cache
            assert point_key(spec(2)) not in cache
            assert point_key(spec(3)) in cache

        asyncio.run(scenario())

    def test_hung_worker_times_out_as_failure_without_poisoning(self):
        # Real process pool: serial mode cannot interrupt a hung point, so
        # this is the only test that pays for worker processes.
        async def scenario():
            cache = InMemoryResultCache()
            config = ServiceConfig(workers=2, point_timeout=0.5, retries=0)
            async with SweepService(
                cache=cache, config=config, point_runner=_hang_forever
            ) as service:
                job = await service.submit([spec(1), spec(2)])
                values = await job.results()
                assert all(isinstance(v, PointFailure) for v in values)
                assert {v.kind for v in values} == {"timeout"}
                assert service.failed_points == 2
                assert service.telemetry()["inflight"] == 0
            assert len(cache) == 0

        asyncio.run(scenario())


class TestBackpressure:
    def _tiny_queue_config(self, overload: str) -> ServiceConfig:
        return ServiceConfig(max_pending=1, batch_size=1, overload=overload)

    def test_reject_policy_raises_instead_of_dropping(self):
        async def scenario():
            runner = BlockingRunner()
            async with SweepService(
                cache=InMemoryResultCache(),
                config=self._tiny_queue_config("reject"),
                point_runner=runner,
            ) as service:
                blocked = await service.submit([spec(1)])
                await runner.dispatched()  # spec(1) out of the queue, parked
                queued = await service.submit([spec(2)])  # fills the queue
                with pytest.raises(ServiceOverloadedError):
                    await service.submit([spec(3)])
                assert service.rejected_points == 1

                # Earlier submissions were not dropped with the rejection.
                runner.release.set()
                assert (await blocked.results())[0] == fake_result(spec(1))
                assert (await queued.results())[0] == fake_result(spec(2))
                assert runner.calls == 2

        asyncio.run(scenario())

    def test_wait_policy_blocks_the_submitter_until_space(self):
        async def scenario():
            runner = BlockingRunner()
            async with SweepService(
                cache=InMemoryResultCache(),
                config=self._tiny_queue_config("wait"),
                point_runner=runner,
            ) as service:
                await service.submit([spec(1)])
                await runner.dispatched()
                await service.submit([spec(2)])  # queue now full
                overflow = asyncio.ensure_future(service.submit([spec(3)]))
                await asyncio.sleep(0.05)
                assert not overflow.done()  # backpressure: submitter waits
                runner.release.set()
                job = await asyncio.wait_for(overflow, timeout=10.0)
                (value,) = await job.results()
                assert value == fake_result(spec(3))
                assert service.rejected_points == 0

        asyncio.run(scenario())


class TestCancellation:
    def test_cancel_spares_dispatched_points_and_keeps_cache_consistent(self):
        async def scenario():
            runner = BlockingRunner()
            cache = InMemoryResultCache()
            config = ServiceConfig(batch_size=1)
            async with SweepService(
                cache=cache, config=config, point_runner=runner
            ) as service:
                job = await service.submit([spec(1), spec(2)])
                await runner.dispatched()  # spec(1) in the pool, spec(2) queued
                assert job.cancel() == 1  # only the undispatched point
                runner.release.set()
                values = await job.results()

                # The dispatched point ran to completion and was cached.
                assert values[0] == fake_result(spec(1))
                assert point_key(spec(1)) in cache
                # The cancelled point is a typed failure, never cached.
                assert isinstance(values[1], PointFailure)
                assert values[1].kind == "cancelled"
                assert point_key(spec(2)) not in cache
                assert service.telemetry()["inflight"] == 0

                # Cache stays consistent: a later request computes fresh.
                retry = await service.submit([spec(2)])
                (value,) = await retry.results()
                assert value == fake_result(spec(2))
                assert point_key(spec(2)) in cache

        asyncio.run(scenario())

    def test_cancel_does_not_break_a_coalesced_sibling(self):
        async def scenario():
            runner = BlockingRunner()
            config = ServiceConfig(batch_size=1)
            async with SweepService(
                cache=InMemoryResultCache(), config=config, point_runner=runner
            ) as service:
                first = await service.submit([spec(1), spec(2)])
                await runner.dispatched()
                second = await service.submit([spec(2)])  # coalesces on queued point
                assert service.stats.coalesced == 1
                # First job cancels; spec(2) still has a live requester, so
                # its computation must survive.
                first.cancel()
                runner.release.set()
                first_values = await first.results()
                assert isinstance(first_values[1], PointFailure)
                (survivor,) = await second.results()
                assert survivor == fake_result(spec(2))

        asyncio.run(scenario())

    def test_cancel_twice_is_idempotent(self):
        async def scenario():
            runner = BlockingRunner()
            config = ServiceConfig(batch_size=1)
            async with SweepService(
                cache=InMemoryResultCache(), config=config, point_runner=runner
            ) as service:
                job = await service.submit([spec(1), spec(2)])
                await runner.dispatched()
                assert job.cancel() == 1
                assert job.cancel() == 0
                runner.release.set()
                await job.results()

        asyncio.run(scenario())


class TestStreaming:
    def test_cache_hits_stream_before_computed_points(self):
        async def scenario():
            runner = BlockingRunner()
            cache = InMemoryResultCache()
            cache.store(point_key(spec(1)), fake_result(spec(1)))
            async with SweepService(cache=cache, point_runner=runner) as service:
                job = await service.submit([spec(2), spec(1)])
                outcomes = []
                async for outcome in job.stream():
                    outcomes.append(outcome)
                    if outcome.source == "cache":
                        # Partial results: the hit arrived while the miss
                        # is still parked inside the runner.
                        assert not runner.release.is_set()
                        runner.release.set()
                assert [o.source for o in outcomes] == ["cache", "computed"]
                assert [o.index for o in outcomes] == [1, 0]
                assert all(isinstance(o, PointOutcome) for o in outcomes)
                assert not outcomes[0].failed and not outcomes[1].failed
                # Submission order is recoverable from the indices.
                by_index = sorted(outcomes, key=lambda o: o.index)
                assert [o.value for o in by_index] == [
                    fake_result(spec(2)),
                    fake_result(spec(1)),
                ]

        asyncio.run(scenario())


class TestShardingAndConfig:
    def test_points_spread_deterministically_across_shards(self):
        async def scenario():
            runner = BlockingRunner()
            runner.release.set()
            config = ServiceConfig(shards=3)
            async with SweepService(
                cache=InMemoryResultCache(), config=config, point_runner=runner
            ) as service:
                specs = [spec(seed) for seed in range(1, 9)]
                shards = {s: int(point_key(s)[:8], 16) % 3 for s in specs}
                assert len(set(shards.values())) > 1  # actually spreads
                job = await service.submit(specs)
                values = await job.results()
                assert values == [fake_result(s) for s in specs]
                assert service.telemetry()["shards"] == 3

        asyncio.run(scenario())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"max_pending": 0},
            {"batch_size": 0},
            {"overload": "drop"},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)

    def test_submit_before_start_is_an_error(self):
        async def scenario():
            service = SweepService(cache=InMemoryResultCache())
            with pytest.raises(RuntimeError, match="not started"):
                await service.submit([spec(1)])

        asyncio.run(scenario())

    def test_job_len(self):
        async def scenario():
            runner = BlockingRunner()
            runner.release.set()
            async with SweepService(
                cache=InMemoryResultCache(), point_runner=runner
            ) as service:
                job = await service.submit([spec(1), spec(2)])
                assert isinstance(job, Job) and len(job) == 2
                await job.results()

        asyncio.run(scenario())


class TestServiceClient:
    def test_sync_facade_runs_real_points_and_warms_its_cache(self):
        client = ServiceClient()
        specs = [spec(1), spec(2)]
        cold = client.run(specs)
        assert client.last_telemetry["cache"]["misses"] == 2
        warm = client.run(specs)
        assert client.last_telemetry["cache"]["hits"] == 2
        assert warm == cold
        assert all(isinstance(r, SteadyStateResult) for r in warm)
