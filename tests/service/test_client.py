"""The caching executor as the figure harnesses actually use it.

Every experiment entry point accepts ``executor=``; routing a sweep
through a :class:`CachingSweepExecutor` twice must give identical rows
with the second pass served entirely from the cache.  The suite also pins
the executor's contract edges: unknown functions delegate untouched,
uncacheable specs fall through, failures pass through uncached, and
intra-call duplicates coalesce.
"""

from __future__ import annotations

import pytest

from repro.config.parameters import SimulationParameters
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.parallel import (
    PointFailure,
    SteadyPointSpec,
    run_steady_point,
)
from repro.experiments.scales import TINY_SCALE
from repro.experiments.transient_runner import transient_comparison
from repro.service import CachingSweepExecutor, DirectoryResultCache, point_key

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


def _spec(seed: int, load: float = 0.1) -> SteadyPointSpec:
    return SteadyPointSpec(
        params=SimulationParameters.tiny(),
        routing="MIN",
        pattern="UN",
        offered_load=load,
        warmup_cycles=30,
        measure_cycles=60,
        seed=seed,
    )


class TestExecutorContract:
    def test_unknown_functions_delegate_to_the_plain_executor(self):
        exe = CachingSweepExecutor()
        try:
            assert exe.map(len, [[1], [1, 2], []]) == [1, 2, 0]
            assert exe.map_robust(len, [[1], [1, 2]]) == [1, 2]
        finally:
            exe.close()
        assert exe.stats.lookups == 0  # the cache never saw these calls

    def test_intra_call_duplicates_compute_once(self):
        exe = CachingSweepExecutor()
        try:
            results = exe.map(run_steady_point, [_spec(1), _spec(1), _spec(1)])
        finally:
            exe.close()
        assert exe.stats.misses == 1
        assert exe.stats.coalesced == 2
        assert results[0] == results[1] == results[2]

    def test_uncacheable_specs_fall_through_and_still_compute(self):
        from repro.traffic import create_pattern

        factory_spec = SteadyPointSpec(
            params=SimulationParameters.tiny(),
            routing="MIN",
            pattern=None,
            pattern_factory=lambda topology: create_pattern("UN", topology),
            offered_load=0.1,
            warmup_cycles=30,
            measure_cycles=60,
            seed=1,
        )
        exe = CachingSweepExecutor()
        try:
            (first,) = exe.map(run_steady_point, [factory_spec])
            (second,) = exe.map(run_steady_point, [factory_spec])
        finally:
            exe.close()
        assert exe.stats.lookups == 0  # no content address, never cached
        assert first == second  # still deterministic, just recomputed

    def test_failures_pass_through_uncached_and_mirror_to_duplicates(
        self, monkeypatch
    ):
        from repro.experiments.parallel import ParallelSweepExecutor

        # Make the underlying compute fail for every point, so the failure
        # flows through the recognized-runner caching path.
        def failing_compute(self, func, items, *, timeout=None, retries=1):
            return [
                PointFailure(spec=item, error="boom", kind="error") for item in items
            ]

        exe = CachingSweepExecutor()
        try:
            monkeypatch.setattr(ParallelSweepExecutor, "map_robust", failing_compute)
            results = exe.map_robust(run_steady_point, [_spec(99), _spec(99)])
            monkeypatch.undo()
        finally:
            exe.close()
        assert all(isinstance(r, PointFailure) for r in results)
        assert exe.stats.stores == 0
        assert point_key(_spec(99)) not in exe.cache
        # A later call retries the point for real instead of serving it.
        exe2 = CachingSweepExecutor(cache=exe.cache)
        try:
            (retried,) = exe2.map_robust(run_steady_point, [_spec(99)])
        finally:
            exe2.close()
        assert not isinstance(retried, PointFailure)
        assert exe2.stats.misses == 1 and exe2.stats.stores == 1


class TestFigureRouting:
    def test_figure5_warm_rerun_is_all_hits_with_identical_rows(self, tmp_path):
        cache = DirectoryResultCache(tmp_path / "cache")
        kwargs = dict(
            pattern="UN",
            scale=TINY_SCALE,
            routings=["MIN", "VAL"],
            loads=[0.1, 0.4],
        )
        exe = CachingSweepExecutor(cache=cache)
        try:
            cold = run_figure5(executor=exe, **kwargs)
            assert exe.stats.hits == 0 and exe.stats.misses > 0
            cold_misses = exe.stats.misses
            warm = run_figure5(executor=exe, **kwargs)
        finally:
            exe.close()
        assert warm == cold  # bit-identical rows
        assert exe.stats.hits == cold_misses  # every point served from cache
        assert exe.stats.misses == cold_misses  # no new computations

    def test_figure5_cache_survives_into_a_fresh_executor(self, tmp_path):
        cache_dir = tmp_path / "cache"
        kwargs = dict(pattern="UN", scale=TINY_SCALE, routings=["MIN"], loads=[0.1])
        exe = CachingSweepExecutor(cache=DirectoryResultCache(cache_dir))
        try:
            cold = run_figure5(executor=exe, **kwargs)
        finally:
            exe.close()
        # A brand-new process would reopen the directory exactly like this.
        exe2 = CachingSweepExecutor(cache=DirectoryResultCache(cache_dir))
        try:
            warm = run_figure5(executor=exe2, **kwargs)
        finally:
            exe2.close()
        assert warm == cold
        assert exe2.stats.misses == 0 and exe2.stats.hits > 0

    def test_figure6_pattern_factory_points_bypass_the_cache(self):
        exe = CachingSweepExecutor()
        kwargs = dict(
            scale=TINY_SCALE,
            routings=["MIN"],
            uniform_fractions=(0.0, 1.0),
        )
        try:
            first = run_figure6(executor=exe, **kwargs)
            second = run_figure6(executor=exe, **kwargs)
        finally:
            exe.close()
        assert exe.stats.lookups == 0  # nothing had a content address
        assert first == second

    def test_transient_comparison_routes_through_the_cache(self, tmp_path):
        cache = DirectoryResultCache(tmp_path / "cache")
        exe = CachingSweepExecutor(cache=cache)
        try:
            cold = transient_comparison(TINY_SCALE, ["MIN"], executor=exe)
            assert exe.stats.misses == len(TINY_SCALE.seeds)
            warm = transient_comparison(TINY_SCALE, ["MIN"], executor=exe)
        finally:
            exe.close()
        assert warm == cold
        assert exe.stats.hits == len(TINY_SCALE.seeds)
        summary = cache.summary()
        assert summary["kinds"] == {"transient": len(TINY_SCALE.seeds)}
