"""Property suite for the sweep-service cache key.

The key is sound only if it is *invariant* under representation noise
(field ordering, explicit defaults, the excluded backend field) and
*sensitive* to every semantic input (every parameter field, every
topology field, the fault model, the point coordinates).  Invariance
failures waste the cache; sensitivity failures serve **wrong results** —
so the sensitivity half enumerates the dataclass fields mechanically
instead of trusting a hand-maintained list.
"""

from __future__ import annotations

import dataclasses
import random
import re

import pytest

from repro.config.parameters import (
    DragonflyConfig,
    SimulationParameters,
    VALID_BACKENDS,
)
from repro.experiments.parallel import SteadyPointSpec, TransientPointSpec
from repro.obs.telemetry import config_hash
from repro.service.keys import (
    canonical_fault_model,
    is_cacheable,
    point_key,
    point_payload,
)
from repro.topology.faults import DegradedLink, FaultModel, FaultSchedule
from repro.topology.registry import topology_preset


def steady_spec(params=None, **overrides) -> SteadyPointSpec:
    base = dict(
        params=params if params is not None else SimulationParameters.tiny(),
        routing="Base",
        pattern="ADV+1",
        offered_load=0.3,
        warmup_cycles=100,
        measure_cycles=200,
        seed=42,
    )
    base.update(overrides)
    return SteadyPointSpec(**base)


def transient_spec(params=None, **overrides) -> TransientPointSpec:
    base = dict(
        params=params if params is not None else SimulationParameters.tiny(),
        routing="Base",
        before="UN",
        after="ADV+1",
        offered_load=0.2,
        warmup_cycles=100,
        observe_before=50,
        observe_after=100,
        bin_size=10,
        seed=7,
    )
    base.update(overrides)
    return TransientPointSpec(**base)


def perturb(value):
    """A different-but-valid value for one config field."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        # Thresholds live in (0, 1]; halving stays valid for them and
        # still changes any other float.
        return value * 0.5 if 0.0 < value <= 1.0 else value + 0.125
    if isinstance(value, tuple):
        return tuple(value[:-1]) + (value[-1] + 1,)
    if isinstance(value, str):
        alternatives = {"palmtree": "consecutive", "consecutive": "palmtree"}
        return alternatives.get(value, value + "_x")
    raise TypeError(f"no perturbation for {value!r}")


class TestKeyFormat:
    def test_key_is_64_hex_chars_and_deterministic(self):
        spec = steady_spec()
        assert re.fullmatch(r"[0-9a-f]{64}", point_key(spec))
        assert point_key(spec) == point_key(steady_spec())

    def test_steady_and_transient_keys_never_collide(self):
        # Same routing/load/seed in both kinds: the kind tag separates them.
        assert point_key(steady_spec()) != point_key(transient_spec())

    def test_payload_carries_the_manifest_config_hash(self):
        """Cache entries and trace manifests agree on configuration identity."""
        spec = steady_spec()
        assert point_payload(spec)["config_hash"] == config_hash(spec.params)

    def test_payload_carries_the_goldens_schema_rev(self):
        from repro.simulation.results import GOLDENS_SCHEMA_REV

        assert point_payload(steady_spec())["schema"] == GOLDENS_SCHEMA_REV
        assert point_payload(transient_spec())["schema"] == GOLDENS_SCHEMA_REV


class TestCacheability:
    def test_plain_specs_are_cacheable(self):
        assert is_cacheable(steady_spec())
        assert is_cacheable(transient_spec())

    def test_pattern_factory_points_are_not(self):
        spec = steady_spec(pattern=None, pattern_factory=lambda topo: None)
        assert not is_cacheable(spec)
        with pytest.raises(ValueError):
            point_key(spec)

    def test_unknown_objects_are_not(self):
        assert not is_cacheable(object())
        with pytest.raises(TypeError):
            point_key(object())


class TestInvariance:
    def test_backend_field_is_excluded(self):
        """object/soa/soa-numba requests share one key (manifest contract)."""
        keys = {
            point_key(steady_spec(params=SimulationParameters.tiny().with_backend(b)))
            for b in sorted(VALID_BACKENDS)
        }
        assert len(keys) == 1

    def test_explicit_defaults_equal_omitted_defaults(self):
        implicit = SimulationParameters(topology=DragonflyConfig.tiny())
        explicit = SimulationParameters(
            topology=DragonflyConfig.tiny(),
            router_latency=5,
            internal_speedup=2,
            local_link_latency=10,
            global_link_latency=100,
            packet_size_phits=8,
        )
        assert point_key(steady_spec(implicit)) == point_key(steady_spec(explicit))

    def test_trivial_fault_model_equals_no_fault_model(self):
        # The simulator spawns the fault RNG stream only for non-trivial
        # models, so FaultModel() provably computes the same point as None.
        assert canonical_fault_model(None) is None
        assert canonical_fault_model(FaultModel()) is None
        assert point_key(steady_spec(fault_model=FaultModel())) == point_key(
            steady_spec(fault_model=None)
        )

    def test_failed_link_listing_order_is_not_semantic(self):
        a = FaultModel(failed_links=((0, 2), (1, 3)))
        b = FaultModel(failed_links=((1, 3), (0, 2)))
        assert point_key(steady_spec(fault_model=a)) == point_key(
            steady_spec(fault_model=b)
        )


class TestSensitivity:
    """Every semantic field perturbs the key — enumerated, not hand-listed."""

    @pytest.mark.parametrize(
        "field",
        [
            f.name
            for f in dataclasses.fields(SimulationParameters)
            if f.name not in ("topology", "backend")
        ],
    )
    def test_every_parameter_field_perturbs_the_key(self, field):
        params = SimulationParameters.tiny()
        perturbed = dataclasses.replace(
            params, **{field: perturb(getattr(params, field))}
        )
        assert point_key(steady_spec(params)) != point_key(steady_spec(perturbed))

    def test_every_topology_config_field_perturbs_the_key(self, every_topology):
        config = topology_preset(every_topology, "tiny")
        base = SimulationParameters.tiny(config)
        for f in dataclasses.fields(config):
            perturbed_config = dataclasses.replace(
                config, **{f.name: perturb(getattr(config, f.name))}
            )
            perturbed = SimulationParameters.tiny(perturbed_config)
            assert point_key(steady_spec(base)) != point_key(
                steady_spec(perturbed)
            ), f"{every_topology}.{f.name} did not perturb the cache key"

    def test_topology_kind_perturbs_the_key(self):
        dragonfly = SimulationParameters.tiny(topology_preset("dragonfly", "tiny"))
        torus = SimulationParameters.tiny(topology_preset("torus", "tiny"))
        assert point_key(steady_spec(dragonfly)) != point_key(steady_spec(torus))

    @pytest.mark.parametrize(
        "override",
        [
            {"routing": "MIN"},
            {"pattern": "UN"},
            {"offered_load": 0.31},
            {"warmup_cycles": 101},
            {"measure_cycles": 201},
            {"seed": 43},
        ],
    )
    def test_every_steady_coordinate_perturbs_the_key(self, override):
        assert point_key(steady_spec()) != point_key(steady_spec(**override))

    @pytest.mark.parametrize(
        "override",
        [
            {"routing": "MIN"},
            {"before": "ADV+2"},
            {"after": "ADV+2"},
            {"offered_load": 0.25},
            {"warmup_cycles": 101},
            {"observe_before": 51},
            {"observe_after": 101},
            {"bin_size": 11},
            {"seed": 8},
        ],
    )
    def test_every_transient_coordinate_perturbs_the_key(self, override):
        assert point_key(transient_spec()) != point_key(transient_spec(**override))

    @pytest.mark.parametrize(
        "model",
        [
            FaultModel(link_failure_percent=5.0),
            FaultModel(failed_links=((0, 2),)),
            FaultModel(
                degraded_links=(((0, 2), DegradedLink(bandwidth_factor=2)),)
            ),
            FaultModel(
                degraded_links=(((0, 2), DegradedLink(latency_factor=2)),)
            ),
            FaultModel(
                degraded_links=(((0, 2), DegradedLink(contention_bias=3)),)
            ),
            FaultModel(schedule=FaultSchedule(((50, (0, 2), "fail"),))),
            FaultModel(link_failure_percent=5.0, allow_partition=True),
        ],
    )
    def test_every_fault_model_aspect_perturbs_the_key(self, model):
        healthy = point_key(steady_spec())
        faulty = point_key(steady_spec(fault_model=model))
        assert healthy != faulty

    def test_fault_model_aspects_are_mutually_distinct(self):
        models = [
            FaultModel(link_failure_percent=5.0),
            FaultModel(link_failure_percent=10.0),
            FaultModel(failed_links=((0, 2),)),
            FaultModel(schedule=FaultSchedule(((50, (0, 2), "fail"),))),
            FaultModel(link_failure_percent=5.0, allow_partition=True),
        ]
        keys = {point_key(steady_spec(fault_model=m)) for m in models}
        assert len(keys) == len(models)


class TestSeededRandomGrid:
    """Random spec pairs over every registered topology (registry fixture)."""

    def test_equal_specs_hash_equal_and_neighbors_differ(self, every_topology):
        rng = random.Random(f"cache-key-{every_topology}")
        params = SimulationParameters.tiny(topology_preset(every_topology, "tiny"))
        for _ in range(25):
            coords = dict(
                routing=rng.choice(("MIN", "VAL", "UGAL")),
                pattern=rng.choice(("UN", "ADV+1", "ADV+h")),
                offered_load=round(rng.uniform(0.05, 0.9), 3),
                warmup_cycles=rng.randrange(10, 500),
                measure_cycles=rng.randrange(10, 500),
                seed=rng.randrange(1, 10_000),
            )
            spec = steady_spec(params, **coords)
            twin = steady_spec(params, **coords)
            assert point_key(spec) == point_key(twin)
            neighbor = steady_spec(params, **{**coords, "seed": coords["seed"] + 1})
            assert point_key(spec) != point_key(neighbor)
