"""Tests for the cross-topology sweep harness and topology-aware scales."""

import dataclasses

import pytest

from repro.config.parameters import (
    DragonflyConfig,
    FlattenedButterflyConfig,
    FullMeshConfig,
)
from repro.experiments.cross_topology import (
    cross_topology_report,
    run_cross_topology,
    supported_routings,
)
from repro.experiments.scales import TINY_SCALE, get_scale

FAST_SCALE = dataclasses.replace(
    TINY_SCALE,
    warmup_cycles=100,
    measure_cycles=200,
    seeds=(1,),
    adv_loads=(0.2,),
    un_loads=(0.2,),
)


class TestSupportedRoutings:
    def test_dragonfly_supports_everything(self):
        assert supported_routings("dragonfly") == [
            "MIN", "VAL", "UGAL", "PB", "OLM", "Base", "Hybrid", "ECtN",
        ]

    @pytest.mark.parametrize("topology", ["flattened_butterfly", "torus"])
    def test_in_transit_adaptive_runs_beyond_dragonfly(self, topology):
        """MM+L on the butterfly / ring escape on the torus: the in-transit
        family is supported, only the Dragonfly broadcasts (PB/ECtN) not."""
        assert supported_routings(topology) == [
            "MIN", "VAL", "UGAL", "OLM", "Base", "Hybrid",
        ]

    def test_full_mesh_supports_agnostic_mechanisms_only(self):
        assert supported_routings("full_mesh") == ["MIN", "VAL", "UGAL"]

    def test_filter_is_respected(self):
        assert supported_routings("full_mesh", ["ECtN", "MIN"]) == ["MIN"]


class TestScales:
    def test_get_scale_with_topology_swaps_preset(self):
        scale = get_scale("tiny", "flattened_butterfly")
        assert isinstance(scale.params.topology, FlattenedButterflyConfig)
        assert scale.name == "tiny/flattened_butterfly"
        # Microarchitecture is untouched.
        assert scale.params.local_link_latency == TINY_SCALE.params.local_link_latency
        assert scale.warmup_cycles == TINY_SCALE.warmup_cycles

    def test_get_scale_dragonfly_is_identity(self):
        assert get_scale("tiny", "dragonfly") is TINY_SCALE
        assert isinstance(get_scale("tiny").params.topology, DragonflyConfig)

    def test_with_topology_small_uses_small_preset(self):
        scale = get_scale("small", "full_mesh")
        assert scale.params.topology == FullMeshConfig.small()

    def test_rebasing_twice_keeps_the_base_preset(self):
        """A tiny scale already rebased onto one topology stays tiny-sized
        when rebased onto another (the preset follows the base name)."""
        scale = get_scale("tiny", "flattened_butterfly").with_topology("full_mesh")
        assert scale.params.topology == FullMeshConfig.tiny()
        assert scale.name == "tiny/full_mesh"

    def test_with_topology_never_clobbers_matching_topology(self):
        """A scale whose params already sit on the requested topology keeps
        its own sizing instead of being reset to a preset."""
        custom = dataclasses.replace(
            TINY_SCALE,
            params=TINY_SCALE.params.with_topology(
                FlattenedButterflyConfig(p=4, rows=4, cols=4)
            ),
        )
        assert custom.with_topology("flattened_butterfly") is custom
        assert custom.with_topology("FLATTENED_BUTTERFLY") is custom


class TestRunCrossTopology:
    def test_rows_tagged_and_unsupported_skipped(self):
        rows = run_cross_topology(
            topologies=("dragonfly", "full_mesh"),
            routings=("MIN", "Base"),
            pattern="ADV+1",
            scale=FAST_SCALE,
        )
        # Dragonfly runs MIN + Base; the full mesh silently drops Base.
        by_topology = {}
        for row in rows:
            by_topology.setdefault(row["topology"], set()).add(row["routing"])
        assert by_topology == {"dragonfly": {"MIN", "Base"}, "full_mesh": {"MIN"}}
        assert all(row["seeds"] == 1.0 for row in rows)

    def test_report_contains_topologies(self):
        rows = run_cross_topology(
            topologies=("full_mesh",),
            routings=("MIN",),
            pattern="ADV+1",
            scale=FAST_SCALE,
        )
        text = cross_topology_report(rows, "ADV+1")
        assert "full_mesh" in text and "MIN" in text
