"""Tests for the experiment harnesses (scales, sweeps, figure runners, reporting)."""

import dataclasses
import math

import pytest

from repro.experiments import (
    SMALL_SCALE,
    TINY_SCALE,
    TRANSIENT_SCALE,
    aggregate_point,
    aggregate_transients,
    format_table,
    get_scale,
    load_sweep,
    pivot_series,
    rows_to_csv,
    run_figure10,
    run_figure5,
    run_figure6,
    steady_state_point,
    threshold_analysis,
)
from repro.experiments.figure5 import figure5_report
from repro.experiments.figure9 import oscillation_amplitude
from repro.experiments.scales import ExperimentScale
from repro.experiments.threshold_analysis import average_vcs_per_port
from repro.config.parameters import PAPER_PARAMETERS
from repro.simulation.results import TransientResult

#: A drastically reduced scale so the harness tests stay fast.
FAST_SCALE = dataclasses.replace(
    TINY_SCALE,
    warmup_cycles=100,
    measure_cycles=200,
    seeds=(1,),
    un_loads=(0.2,),
    adv_loads=(0.2,),
)


class TestScales:
    def test_get_scale_by_name(self):
        assert get_scale("tiny") is TINY_SCALE
        assert get_scale("SMALL") is SMALL_SCALE
        assert get_scale("transient") is TRANSIENT_SCALE
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_scales_have_consistent_fields(self):
        for scale in (TINY_SCALE, SMALL_SCALE, TRANSIENT_SCALE):
            assert scale.warmup_cycles > 0
            assert scale.measure_cycles > 0
            assert scale.seeds
            assert all(0 < load <= 1 for load in scale.un_loads + scale.adv_loads)

    def test_with_params(self):
        scale = TINY_SCALE.with_params(SMALL_SCALE.params)
        assert scale.params is SMALL_SCALE.params
        assert scale.name == TINY_SCALE.name


class TestSweep:
    def test_steady_state_point_runs_all_seeds(self):
        results = steady_state_point(
            FAST_SCALE.params, "MIN", "UN", 0.2, 100, 200, seeds=(1, 2)
        )
        assert len(results) == 2
        assert {r.seed for r in results} == {1, 2}

    def test_aggregate_point_structure(self):
        results = steady_state_point(FAST_SCALE.params, "MIN", "UN", 0.2, 100, 200, seeds=(1, 2))
        row = aggregate_point(results)
        assert row["routing"] == "MIN"
        assert row["offered_load"] == 0.2
        assert row["seeds"] == 2.0
        assert row["mean_latency"] > 0
        assert not math.isnan(row["accepted_load"])

    def test_aggregate_point_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_point([])

    def test_load_sweep_row_count(self):
        rows = load_sweep(FAST_SCALE, ["MIN", "Base"], "UN")
        assert len(rows) == 2  # 2 routings x 1 load
        assert {row["routing"] for row in rows} == {"MIN", "Base"}


class TestFigureHarnesses:
    def test_run_figure5_rows(self):
        rows = run_figure5(pattern="UN", scale=FAST_SCALE, routings=("MIN", "Base"))
        assert len(rows) == 2
        report = figure5_report(rows, "UN")
        assert "Figure 5" in report and "MIN" in report

    def test_run_figure6_rows(self):
        rows = run_figure6(scale=FAST_SCALE, routings=("Base",), uniform_fractions=(0.0, 1.0))
        assert len(rows) == 2
        assert {row["uniform_fraction"] for row in rows} == {0.0, 1.0}

    def test_run_figure10_includes_reference_and_thresholds(self):
        rows = run_figure10(pattern="UN", thresholds=(2, 3), scale=FAST_SCALE)
        names = {row["routing"] for row in rows}
        assert "Base(th=2)" in names and "Base(th=3)" in names and "MIN" in names

    def test_oscillation_amplitude(self):
        series = {"mean_latency": [100.0, 200.0, 150.0, 160.0, 155.0, 150.0]}
        amplitude = oscillation_amplitude(series, settle_fraction=0.5)
        assert amplitude == pytest.approx(10.0)
        assert math.isnan(oscillation_amplitude({"mean_latency": []}))

    def test_aggregate_transients(self):
        r1 = TransientResult("Base", 0.2, 1, 100, [0, 10], [100.0, 120.0], [0.1, 0.5])
        r2 = TransientResult("Base", 0.2, 2, 100, [0, 10], [110.0, 130.0], [0.2, 0.6])
        merged = aggregate_transients([r1, r2])
        assert merged["mean_latency"] == [105.0, 125.0]
        assert merged["misrouted_fraction"][1] == pytest.approx(0.55)
        with pytest.raises(ValueError):
            aggregate_transients([])


class TestThresholdAnalysis:
    def test_paper_average_vcs_matches_section6a(self):
        # Section VI-A reports an average of 2.74 VCs per input port.
        assert average_vcs_per_port(PAPER_PARAMETERS) == pytest.approx(2.74, abs=0.01)

    def test_paper_threshold_window_contains_6(self):
        analysis = threshold_analysis(PAPER_PARAMETERS)
        assert analysis.lower_bound <= 6 <= analysis.upper_bound
        assert analysis.recommended == analysis.lower_bound
        assert analysis.as_dict()["average_vcs_per_port"] == pytest.approx(2.74, abs=0.01)


class TestReporting:
    ROWS = [
        {"routing": "MIN", "load": 0.2, "latency": 130.1234},
        {"routing": "Base", "load": 0.2, "latency": 131.5678},
    ]

    def test_format_table_alignment_and_precision(self):
        text = format_table(self.ROWS, columns=["routing", "latency"], precision=2, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "130.12" in text and "131.57" in text
        assert "load" not in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_rows_to_csv(self):
        csv_text = rows_to_csv(self.ROWS)
        assert csv_text.splitlines()[0] == "routing,load,latency"
        assert len(csv_text.splitlines()) == 3
        assert rows_to_csv([]) == ""

    def test_pivot_series(self):
        rows = [
            {"load": 0.1, "routing": "MIN", "latency": 100},
            {"load": 0.1, "routing": "Base", "latency": 101},
            {"load": 0.2, "routing": "MIN", "latency": 110},
        ]
        pivoted = pivot_series(rows, "load", "routing", "latency")
        assert pivoted[0] == {"load": 0.1, "MIN": 100, "Base": 101}
        assert pivoted[1]["MIN"] == 110
