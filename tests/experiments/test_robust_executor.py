"""Hardened sweep executor: crashes, hangs, retries, typed partial results."""

import os
import pickle
import time

import pytest

from repro.experiments.fault_sweep import fault_sweep_report, run_fault_sweep
from repro.experiments.parallel import (
    ParallelSweepExecutor,
    PointFailure,
    SteadyPointSpec,
    SweepPointError,
    run_steady_point,
)
from repro.experiments.scales import TINY_SCALE


def _double(x):
    return x * 2


def _boom(x):
    raise ValueError(f"boom {x}")


def _misbehave(x):
    """Pool worker body: crash, hang, raise, or succeed on demand."""
    if x == "crash":
        os._exit(1)
    if x == "hang":
        time.sleep(300)
    if x == "fail":
        raise ValueError("fail point")
    return x * 2


def _tiny_spec(routing="MIN", seed=1):
    return SteadyPointSpec(
        params=TINY_SCALE.params,
        routing=routing,
        pattern="UN",
        offered_load=0.2,
        warmup_cycles=50,
        measure_cycles=100,
        seed=seed,
    )


class TestSerialMapRobust:
    def test_successes_pass_through_in_order(self):
        with ParallelSweepExecutor(workers=1) as exe:
            assert exe.map_robust(_double, [1, 2, 3]) == [2, 4, 6]

    def test_failures_become_typed_results(self):
        with ParallelSweepExecutor(workers=1) as exe:
            results = exe.map_robust(_boom, [7], retries=0)
        (failure,) = results
        assert isinstance(failure, PointFailure)
        assert failure.kind == "error"
        assert failure.attempts == 1
        assert "boom 7" in failure.error
        assert isinstance(failure.exception, ValueError)

    def test_retries_charge_attempts(self):
        with ParallelSweepExecutor(workers=1) as exe:
            (failure,) = exe.map_robust(_boom, [1], retries=2)
        assert failure.attempts == 3

    def test_mixed_results_keep_submission_order(self):
        with ParallelSweepExecutor(workers=1) as exe:
            results = exe.map_robust(_misbehave, [1, "fail", 3], retries=0)
        assert results[0] == 2
        assert isinstance(results[1], PointFailure)
        assert results[2] == 6


class TestParallelMapRobust:
    def test_crashed_and_hung_workers_are_isolated(self):
        """A dying or hanging worker costs its point, never the sweep."""
        with ParallelSweepExecutor(workers=2) as exe:
            results = exe.map_robust(
                _misbehave, ["crash", 1, "hang", 2], timeout=3, retries=0
            )
        assert isinstance(results[0], PointFailure)
        assert results[0].kind == "timeout"
        assert results[1] == 2
        assert isinstance(results[2], PointFailure)
        assert results[2].kind == "timeout"
        assert results[3] == 4

    def test_worker_exception_carries_the_failing_spec(self):
        good, bad = _tiny_spec("MIN"), _tiny_spec("NoSuchRouting")
        with ParallelSweepExecutor(workers=2) as exe:
            results = exe.map_robust(
                run_steady_point, [good, bad], timeout=120, retries=0
            )
        assert results[0].routing == "MIN"
        failure = results[1]
        assert isinstance(failure, PointFailure)
        assert failure.kind == "error"
        assert failure.spec == bad
        assert "NoSuchRouting" in failure.error


class TestSweepPointError:
    def test_carries_spec_and_survives_pickling(self):
        spec = _tiny_spec("NoSuchRouting")
        with pytest.raises(SweepPointError) as excinfo:
            run_steady_point(spec)
        err = excinfo.value
        assert err.spec == spec
        assert "NoSuchRouting" in str(err)
        rehydrated = pickle.loads(pickle.dumps(err))
        assert rehydrated.spec == spec
        assert str(rehydrated) == str(err)


class TestFaultSweepPartialResults:
    def test_failing_points_become_failure_rows(self):
        rows = run_fault_sweep(
            routings=("MIN", "NoSuchRouting"),
            failure_percents=(0.0,),
            workers=1,
            retries=0,
        )
        ok_row = next(r for r in rows if r["routing"] == "MIN")
        bad_row = next(r for r in rows if r["routing"] == "NoSuchRouting")
        assert ok_row["seeds"] == len(TINY_SCALE.seeds)
        assert not ok_row["failures"]
        assert ok_row["throughput_retained"] == pytest.approx(1.0)
        assert bad_row["seeds"] == 0
        assert "accepted_load" not in bad_row
        assert bad_row["throughput_retained"] is None
        assert all(isinstance(f, PointFailure) for f in bad_row["failures"])
        report = fault_sweep_report(rows)
        assert "NoSuchRouting" in report
        assert "MIN" in report
