"""Branch backfill for the reporting helpers, scales, and transient runner.

These are the paths the figure harnesses only exercise implicitly (sparse
tables, explicit column subsets, the paper scale, seed fan-out of the
transient runner), pinned directly so the tier-1 coverage floor over
``repro.experiments`` holds without leaning on the slow harness tests.
"""

from __future__ import annotations

import pytest

from repro.config.parameters import SimulationParameters
from repro.experiments.reporting import (
    FAULT_COLUMNS,
    format_table,
    pivot_series,
    rows_to_csv,
    with_fault_columns,
)
from repro.experiments.scales import (
    PAPER_SCALE,
    TINY_SCALE,
    TRANSIENT_SCALE,
    get_scale,
)
from repro.experiments.threshold_analysis import measured_average_counter
from repro.experiments.transient_runner import (
    aggregate_transients,
    run_transient_point,
    transient_comparison,
)
from repro.simulation.results import TransientResult


class TestReportingEdges:
    def test_format_table_fills_missing_cells_blank(self):
        rows = [{"a": 1.0, "b": 2.0}, {"a": 3.0}]
        text = format_table(rows, columns=["a", "b"], precision=1)
        lines = text.splitlines()
        assert lines[-1].split() == ["3.0"]  # missing "b" renders empty

    def test_format_table_defaults_columns_to_first_row(self):
        rows = [{"x": "left", "y": 7}]
        text = format_table(rows)
        assert text.splitlines()[0].split() == ["x", "y"]
        assert "left" in text and "7" in text

    def test_format_table_empty_without_title(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_non_float_values_verbatim(self):
        text = format_table([{"name": "MIN", "count": 12}], precision=4)
        assert "MIN" in text and "12" in text and "12.0000" not in text

    def test_rows_to_csv_explicit_columns_ignore_extras(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        csv_text = rows_to_csv(rows, columns=["a", "c"])
        assert csv_text.splitlines() == ["a,c", "1,3"]

    def test_pivot_series_fills_sparse_cells(self):
        rows = [
            {"load": 0.1, "routing": "MIN", "latency": 10.0},
            {"load": 0.1, "routing": "VAL", "latency": 20.0},
            {"load": 0.4, "routing": "MIN", "latency": 30.0},
        ]
        pivoted = pivot_series(rows, "load", "routing", "latency")
        assert pivoted == [
            {"load": 0.1, "MIN": 10.0, "VAL": 20.0},
            {"load": 0.4, "MIN": 30.0, "VAL": ""},
        ]

    def test_with_fault_columns_never_duplicates_or_invents(self):
        carrying = [{"routing": "MIN", FAULT_COLUMNS[0]: 0.0, FAULT_COLUMNS[1]: 0.0}]
        already = list(FAULT_COLUMNS)
        assert with_fault_columns(already, carrying) == already
        assert with_fault_columns(["routing"], [{"routing": "MIN"}]) == ["routing"]


class TestScales:
    def test_paper_scale_is_registered_and_shaped_like_the_paper(self):
        assert get_scale("paper") is PAPER_SCALE
        assert len(PAPER_SCALE.seeds) == 10
        assert PAPER_SCALE.warmup_cycles == 10_000
        assert PAPER_SCALE.params.topology.kind == "dragonfly"

    def test_transient_scale_rebases_onto_the_small_preset(self):
        # Non-"tiny" base names use the topology's "small" preset.
        rebased = TRANSIENT_SCALE.with_topology("full_mesh")
        assert rebased.name == "transient/full_mesh"
        assert rebased.params.topology.kind == "full_mesh"
        assert rebased.warmup_cycles == TRANSIENT_SCALE.warmup_cycles
        assert rebased.seeds == TRANSIENT_SCALE.seeds

    def test_with_params_touches_only_params(self):
        swapped = TINY_SCALE.with_params(PAPER_SCALE.params)
        assert swapped.params is PAPER_SCALE.params
        assert swapped.name == TINY_SCALE.name
        assert swapped.un_loads == TINY_SCALE.un_loads


class TestTransientRunner:
    def _result(self, seed: int, bins: int) -> TransientResult:
        return TransientResult(
            routing="MIN",
            offered_load=0.2,
            seed=seed,
            switch_cycle=100,
            cycles=list(range(-20, -20 + 10 * bins, 10)),
            mean_latency=[10.0 * seed] * bins,
            misrouted_fraction=[0.1 * seed] * bins,
        )

    def test_aggregate_uses_the_longest_cycle_axis(self):
        short, long = self._result(1, 3), self._result(2, 5)
        merged = aggregate_transients([short, long])
        assert merged["cycles"] == long.cycles
        assert len(merged["mean_latency"]) == 5
        # Bins both runs cover average both; the tail keeps the long run.
        assert merged["mean_latency"][0] == pytest.approx(15.0)

    def test_run_transient_point_fans_out_all_seeds_in_order(self):
        results = run_transient_point(
            params=SimulationParameters.tiny(),
            routing="MIN",
            before="UN",
            after="ADV+1",
            offered_load=0.2,
            warmup_cycles=60,
            observe_before=40,
            observe_after=80,
            bin_size=20,
            seeds=(3, 1),
        )
        assert [r.seed for r in results] == [3, 1]
        assert all(isinstance(r, TransientResult) for r in results)
        assert all(r.routing == "MIN" for r in results)

    def test_transient_comparison_honors_param_and_window_overrides(self):
        custom = SimulationParameters.tiny()
        series = transient_comparison(
            TINY_SCALE,
            ["MIN"],
            params=custom,
            before="UN",
            after="ADV+1",
            observe_after=80,
        )
        cycles = series["MIN"]["cycles"]
        assert cycles[0] < 0 <= cycles[-1] <= 80
        assert set(series) == {"MIN"}


class TestMeasuredAverageCounter:
    def test_single_seed_returns_its_mean(self):
        value = measured_average_counter(
            SimulationParameters.tiny(),
            warmup_cycles=40,
            sample_cycles=10,
            seed=2,
        )
        assert value == pytest.approx(value)  # finite
        assert value >= 0.0

    def test_multi_seed_average_is_sample_weighted(self):
        params = SimulationParameters.tiny()
        kwargs = dict(warmup_cycles=40, sample_cycles=10)
        a = measured_average_counter(params, seed=1, **kwargs)
        b = measured_average_counter(params, seed=2, **kwargs)
        both = measured_average_counter(params, seeds=(1, 2), **kwargs)
        # Equal sample counts per seed: the weighted mean is the plain mean.
        assert both == pytest.approx((a + b) / 2)
