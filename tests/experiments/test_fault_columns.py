"""Fault counters surfaced through aggregation and reports (PR 6 follow-up)."""

from repro.experiments import (
    FAULT_COLUMNS,
    aggregate_point,
    cross_topology_report,
    with_fault_columns,
)
from repro.simulation.results import SteadyStateResult


def _result(seed, dropped=0, rerouted=0):
    return SteadyStateResult(
        routing="MIN",
        pattern="UN",
        offered_load=0.2,
        seed=seed,
        mean_latency=30.0,
        p99_latency=60.0,
        accepted_load=0.2,
        global_misroute_fraction=0.0,
        local_misroute_fraction=0.0,
        mean_hops=3.0,
        delivered_packets=1000,
        dropped_packets=dropped,
        fault_rerouted_packets=rerouted,
    )


class TestAggregatePoint:
    def test_fault_counters_always_present(self):
        row = aggregate_point([_result(1), _result(2)])
        assert row["dropped_packets"] == 0.0
        assert row["fault_rerouted_delivered"] == 0.0

    def test_fault_counters_average_over_seeds(self):
        row = aggregate_point(
            [_result(1, dropped=4, rerouted=10), _result(2, dropped=2, rerouted=0)]
        )
        assert row["dropped_packets"] == 3.0
        assert row["fault_rerouted_delivered"] == 5.0


class TestWithFaultColumns:
    def test_appended_when_rows_carry_them(self):
        rows = [{"routing": "MIN", "dropped_packets": 1.0, "fault_rerouted_delivered": 0.0}]
        assert with_fault_columns(["routing"], rows) == [
            "routing",
            *FAULT_COLUMNS,
        ]

    def test_untouched_when_absent(self):
        assert with_fault_columns(["routing"], [{"routing": "MIN"}]) == ["routing"]

    def test_no_duplicate_columns(self):
        rows = [{"dropped_packets": 1.0}]
        columns = with_fault_columns(["dropped_packets"], rows)
        assert columns.count("dropped_packets") == 1


class TestCrossTopologyReport:
    def _row(self, **extra):
        return {
            "topology": "dragonfly",
            "routing": "MIN",
            "offered_load": 0.2,
            "mean_latency": 30.0,
            "accepted_load": 0.2,
            "global_misroute_fraction": 0.0,
            **extra,
        }

    def test_report_surfaces_fault_counters(self):
        rows = [self._row(dropped_packets=7.0, fault_rerouted_delivered=3.0)]
        report = cross_topology_report(rows, "UN")
        assert "dropped_packets" in report
        assert "fault_rerouted_delivered" in report
        assert "7.000" in report

    def test_report_without_counters_stays_compact(self):
        report = cross_topology_report([self._row()], "UN")
        assert "dropped_packets" not in report
