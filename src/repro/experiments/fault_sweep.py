"""Degradation curves: throughput retained versus fraction of failed links.

The fault sweep runs a grid of (routing, link-failure-percent) points — each
averaged over the scale's seeds — and reports, per routing, the throughput
retained relative to that routing's own healthy (0% failures) baseline.
This is the experiment behind the robustness claim: the nonminimal adaptive
mechanisms (Base/Hybrid, and OLM) route *around* failed links using the same
candidate machinery they use to route around congestion, so their
degradation curve should stay at or above MIN's.

Points run through :meth:`ParallelSweepExecutor.map_robust`, so a crashed,
hung or raising point is reported as a typed
:class:`~repro.experiments.parallel.PointFailure` row instead of aborting
the sweep — the remaining grid still aggregates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config.parameters import SimulationParameters
from repro.experiments.parallel import (
    ParallelSweepExecutor,
    PointFailure,
    SteadyPointSpec,
    resolve_executor,
    run_steady_point,
)
from repro.experiments.scales import ExperimentScale, TINY_SCALE
from repro.metrics.statistics import aggregate_scalar
from repro.topology.faults import FaultModel

__all__ = ["run_fault_sweep", "fault_sweep_report"]


def run_fault_sweep(
    scale: Optional[ExperimentScale] = None,
    routings: Sequence[str] = ("MIN", "VAL", "Base", "Hybrid"),
    failure_percents: Sequence[float] = (0.0, 2.0, 5.0, 10.0),
    pattern: str = "UN",
    offered_load: float = 0.3,
    params: Optional[SimulationParameters] = None,
    workers: Optional[int] = None,
    executor: Optional[ParallelSweepExecutor] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
) -> List[Dict[str, object]]:
    """Sweep failure rate x routing; return one row per grid point.

    Each row carries the accepted load averaged over the scale's seeds, the
    drop/reroute counters, and ``throughput_retained`` — accepted load
    relative to the same routing's 0% row (``None`` when 0% is not part of
    ``failure_percents`` or its point failed).  Failed points appear as rows
    with ``"failures"`` listing their :class:`PointFailure` records and no
    aggregate values; healthy seeds of the same point still aggregate.
    """
    if scale is None:
        scale = TINY_SCALE
    if params is None:
        params = scale.params
    specs: List[SteadyPointSpec] = [
        SteadyPointSpec(
            params=params,
            routing=routing,
            pattern=pattern,
            offered_load=offered_load,
            warmup_cycles=scale.warmup_cycles,
            measure_cycles=scale.measure_cycles,
            seed=seed,
            fault_model=(
                FaultModel(link_failure_percent=pct) if pct > 0.0 else None
            ),
        )
        for routing in routings
        for pct in failure_percents
        for seed in scale.seeds
    ]
    with resolve_executor(workers, executor) as exe:
        outcomes = exe.map_robust(
            run_steady_point, specs, timeout=timeout, retries=retries
        )

    rows: List[Dict[str, object]] = []
    seeds_per_point = len(scale.seeds)
    index = 0
    for routing in routings:
        for pct in failure_percents:
            point = outcomes[index : index + seeds_per_point]
            index += seeds_per_point
            ok = [r for r in point if not isinstance(r, PointFailure)]
            failures = [r for r in point if isinstance(r, PointFailure)]
            row: Dict[str, object] = {
                "routing": routing,
                "pattern": pattern,
                "offered_load": offered_load,
                "link_failure_percent": pct,
                "seeds": len(ok),
                "failures": failures,
            }
            if ok:
                accepted = aggregate_scalar([r.accepted_load for r in ok])
                row["accepted_load"] = accepted.mean
                row["accepted_load_ci95"] = accepted.ci95
                row["mean_latency"] = aggregate_scalar(
                    [r.mean_latency for r in ok]
                ).mean
                row["dropped_packets"] = sum(r.dropped_packets for r in ok)
                row["fault_rerouted_packets"] = sum(
                    r.fault_rerouted_packets for r in ok
                )
            rows.append(row)

    # Throughput retained, per routing, against its own healthy baseline.
    baselines: Dict[str, float] = {}
    for row in rows:
        if row["link_failure_percent"] == 0.0 and "accepted_load" in row:
            baselines[row["routing"]] = row["accepted_load"]  # type: ignore[assignment]
    for row in rows:
        base = baselines.get(row["routing"])
        if base and "accepted_load" in row:
            row["throughput_retained"] = row["accepted_load"] / base  # type: ignore[operator]
        else:
            row["throughput_retained"] = None
    return rows


def fault_sweep_report(rows: Sequence[Dict[str, object]]) -> str:
    """Text table of a fault sweep's degradation curves."""
    lines = [
        f"{'routing':<8} {'%failed':>8} {'accepted':>9} {'retained':>9} "
        f"{'dropped':>8} {'rerouted':>9} {'failures':>9}"
    ]
    for row in rows:
        accepted = row.get("accepted_load")
        retained = row.get("throughput_retained")
        lines.append(
            f"{row['routing']:<8} {row['link_failure_percent']:>8.1f} "
            + (f"{accepted:>9.4f} " if accepted is not None else f"{'-':>9} ")
            + (f"{retained:>9.3f} " if retained is not None else f"{'-':>9} ")
            + f"{row.get('dropped_packets', 0):>8} "
            f"{row.get('fault_rerouted_packets', 0):>9} "
            f"{len(row['failures']):>9}"  # type: ignore[arg-type]
        )
    return "\n".join(lines)
