"""Figure 6: latency under a mix of ADV+1 and UN traffic at 35 % load.

The offered load is fixed (0.35 in the paper) and the fraction of uniform
traffic sweeps from 0 % (pure ADV+1) to 100 % (pure UN).  Contention-based
mechanisms stay competitive with OLM across the whole mix and ECtN clearly
outperforms it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.reporting import format_table
from repro.experiments.scales import ExperimentScale, SMALL_SCALE
from repro.experiments.sweep import aggregate_point, steady_state_point
from repro.traffic import AdversarialTraffic, MixedTraffic, UniformTraffic

__all__ = ["FIGURE6_ROUTINGS", "run_figure6", "figure6_report"]

FIGURE6_ROUTINGS: Sequence[str] = ("PB", "OLM", "Base", "Hybrid", "ECtN")


def run_figure6(
    scale: ExperimentScale = SMALL_SCALE,
    routings: Optional[Sequence[str]] = None,
    uniform_fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    offered_load: Optional[float] = None,
    adversarial_offset: int = 1,
) -> List[Dict[str, float]]:
    """Latency versus the percentage of UN traffic in an ADV+1/UN mix."""
    if routings is None:
        routings = FIGURE6_ROUTINGS
    if offered_load is None:
        offered_load = scale.mixed_load
    rows: List[Dict[str, float]] = []
    for routing in routings:
        for fraction in uniform_fractions:
            def pattern_factory(topology, fraction=fraction):
                return MixedTraffic(
                    topology,
                    [
                        (AdversarialTraffic(topology, offset=adversarial_offset), 1.0 - fraction),
                        (UniformTraffic(topology), fraction),
                    ],
                )

            results = steady_state_point(
                scale.params,
                routing,
                "UN",  # placeholder, replaced by pattern_factory
                offered_load,
                scale.warmup_cycles,
                scale.measure_cycles,
                scale.seeds,
                pattern_factory=pattern_factory,
            )
            row = aggregate_point(results)
            row["uniform_fraction"] = fraction
            rows.append(row)
    return rows


def figure6_report(rows: Sequence[Dict[str, float]]) -> str:
    return format_table(
        rows,
        columns=[
            "routing",
            "uniform_fraction",
            "offered_load",
            "mean_latency",
            "accepted_load",
            "global_misroute_fraction",
        ],
        title="Figure 6: latency with mixed ADV+1/UN traffic",
    )
