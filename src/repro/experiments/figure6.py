"""Figure 6: latency under a mix of ADV+1 and UN traffic at 35 % load.

The offered load is fixed (0.35 in the paper) and the fraction of uniform
traffic sweeps from 0 % (pure ADV+1) to 100 % (pure UN).  Contention-based
mechanisms stay competitive with OLM across the whole mix and ECtN clearly
outperforms it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.parallel import (
    SteadyPointSpec,
    resolve_executor,
    run_steady_point,
)
from repro.experiments.reporting import format_table
from repro.experiments.scales import ExperimentScale, SMALL_SCALE
from repro.experiments.sweep import aggregate_point
from repro.traffic import AdversarialTraffic, MixedTraffic, UniformTraffic

__all__ = ["FIGURE6_ROUTINGS", "MixedPatternFactory", "run_figure6", "figure6_report"]

FIGURE6_ROUTINGS: Sequence[str] = ("PB", "OLM", "Base", "Hybrid", "ECtN")


class MixedPatternFactory:
    """Picklable ``topology -> MixedTraffic`` factory for the Fig. 6 mix.

    A module-level class (rather than a closure) so the parallel sweep
    executor can ship it to pool workers.
    """

    def __init__(self, uniform_fraction: float, adversarial_offset: int):
        self.uniform_fraction = uniform_fraction
        self.adversarial_offset = adversarial_offset

    def __call__(self, topology) -> MixedTraffic:
        return MixedTraffic(
            topology,
            [
                (
                    AdversarialTraffic(topology, offset=self.adversarial_offset),
                    1.0 - self.uniform_fraction,
                ),
                (UniformTraffic(topology), self.uniform_fraction),
            ],
        )


def run_figure6(
    scale: ExperimentScale = SMALL_SCALE,
    routings: Optional[Sequence[str]] = None,
    uniform_fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    offered_load: Optional[float] = None,
    adversarial_offset: int = 1,
    workers: Optional[int] = None,
    executor=None,
) -> List[Dict[str, float]]:
    """Latency versus the percentage of UN traffic in an ADV+1/UN mix.

    Note for cache-fronted executors: these points carry a
    ``pattern_factory``, so they have no content address and always
    compute (see :func:`repro.service.keys.is_cacheable`).
    """
    if routings is None:
        routings = FIGURE6_ROUTINGS
    if offered_load is None:
        offered_load = scale.mixed_load
    # One spec per (routing, fraction, seed), mapped through a single
    # executor, so workers parallelize the whole figure rather than the
    # seeds of one point at a time.
    points = [
        (routing, fraction) for routing in routings for fraction in uniform_fractions
    ]
    specs = [
        SteadyPointSpec(
            params=scale.params,
            routing=routing,
            pattern=None,
            offered_load=offered_load,
            warmup_cycles=scale.warmup_cycles,
            measure_cycles=scale.measure_cycles,
            seed=seed,
            pattern_factory=MixedPatternFactory(fraction, adversarial_offset),
        )
        for routing, fraction in points
        for seed in scale.seeds
    ]
    with resolve_executor(workers, executor) as exe:
        results = exe.map(run_steady_point, specs)
    rows: List[Dict[str, float]] = []
    seeds_per_point = len(scale.seeds)
    for index, (routing, fraction) in enumerate(points):
        start = index * seeds_per_point
        row = aggregate_point(results[start : start + seeds_per_point])
        row["uniform_fraction"] = fraction
        rows.append(row)
    return rows


def figure6_report(rows: Sequence[Dict[str, float]]) -> str:
    return format_table(
        rows,
        columns=[
            "routing",
            "uniform_fraction",
            "offered_load",
            "mean_latency",
            "accepted_load",
            "global_misroute_fraction",
        ],
        title="Figure 6: latency with mixed ADV+1/UN traffic",
    )
