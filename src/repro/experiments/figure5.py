"""Figure 5: latency and throughput under UN, ADV+1 and ADV+h traffic.

The paper's Fig. 5 plots, for the six routing mechanisms (MIN/VAL, PB, OLM,
Base, Hybrid, ECtN), the average packet latency versus offered load and the
accepted load versus offered load, under uniform traffic (5a), ADV+1 (5b) and
ADV+h (5c).  :func:`run_figure5` regenerates one sub-figure as a list of
aggregated rows (one per routing and offered load).

Qualitative expectations (see EXPERIMENTS.md for measured values):

* **UN** — MIN has the lowest latency before saturation and Base/ECtN match
  it; PB/OLM pay a latency penalty for credit-triggered misrouting; the
  adaptive mechanisms reach a slightly higher saturation throughput than MIN.
* **ADV+1 / ADV+h** — MIN collapses at the single-global-link limit; VAL is
  the throughput reference (≈0.5); the adaptive mechanisms track VAL's
  throughput with better latency at low load, and the contention mechanisms
  are competitive with OLM.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.reporting import format_table
from repro.experiments.scales import ExperimentScale, SMALL_SCALE
from repro.experiments.sweep import load_sweep

__all__ = ["FIGURE5_ROUTINGS", "run_figure5", "figure5_report"]

#: Mechanisms plotted in Fig. 5 of the paper.  MIN and VAL are both included
#: (the paper shows "MIN/VAL" as the oblivious reference for UN and ADV).
FIGURE5_ROUTINGS: Sequence[str] = ("MIN", "VAL", "PB", "OLM", "Base", "Hybrid", "ECtN")


def run_figure5(
    pattern: str = "UN",
    scale: ExperimentScale = SMALL_SCALE,
    routings: Optional[Sequence[str]] = None,
    loads: Optional[Sequence[float]] = None,
    workers: Optional[int] = None,
    executor=None,
) -> List[Dict[str, float]]:
    """Regenerate one sub-figure of Fig. 5 (``pattern`` = UN, ADV+1 or ADV+h).

    ``workers`` fans the (routing, load, seed) points out across processes.
    ``executor`` substitutes a caller-owned executor — e.g. a
    :class:`~repro.service.client.CachingSweepExecutor` to serve repeated
    points from the sweep-service result cache.
    """
    if routings is None:
        routings = FIGURE5_ROUTINGS
    return load_sweep(
        scale, routings, pattern, loads=loads, workers=workers, executor=executor
    )


def figure5_report(rows: Sequence[Dict[str, float]], pattern: str) -> str:
    """Format the rows of one Fig. 5 sub-figure as a text table."""
    return format_table(
        rows,
        columns=[
            "routing",
            "offered_load",
            "mean_latency",
            "accepted_load",
            "global_misroute_fraction",
        ],
        title=f"Figure 5 ({pattern}): latency and accepted load vs offered load",
    )
