"""Experiment harnesses regenerating every figure of the paper's evaluation."""

from repro.experiments.figure5 import FIGURE5_ROUTINGS, figure5_report, run_figure5
from repro.experiments.figure6 import FIGURE6_ROUTINGS, figure6_report, run_figure6
from repro.experiments.figure7 import FIGURE7_ROUTINGS, figure7_report, run_figure7
from repro.experiments.figure8 import (
    FIGURE8_ROUTINGS,
    LARGE_BUFFER_FACTOR,
    figure8_report,
    run_figure8,
)
from repro.experiments.figure9 import (
    FIGURE9_ROUTINGS,
    figure9_report,
    oscillation_amplitude,
    run_figure9,
)
from repro.experiments.figure10 import figure10_report, run_figure10
from repro.experiments.cross_topology import (
    CROSS_TOPOLOGY_ROUTINGS,
    cross_topology_report,
    run_cross_topology,
    supported_routings,
)
from repro.experiments.reporting import (
    FAULT_COLUMNS,
    format_table,
    pivot_series,
    rows_to_csv,
    with_fault_columns,
)
from repro.experiments.scales import (
    PAPER_SCALE,
    SMALL_SCALE,
    TINY_SCALE,
    TRANSIENT_SCALE,
    ExperimentScale,
    get_scale,
)
from repro.experiments.fault_sweep import fault_sweep_report, run_fault_sweep
from repro.experiments.parallel import (
    ParallelSweepExecutor,
    PointFailure,
    SweepPointError,
)
from repro.experiments.sweep import aggregate_point, load_sweep, steady_state_point
from repro.experiments.threshold_analysis import (
    ThresholdAnalysis,
    measured_average_counter,
    threshold_analysis,
)
from repro.experiments.transient_runner import (
    aggregate_transients,
    run_transient_point,
    transient_comparison,
)

__all__ = [
    "ExperimentScale",
    "TINY_SCALE",
    "SMALL_SCALE",
    "TRANSIENT_SCALE",
    "PAPER_SCALE",
    "get_scale",
    "ParallelSweepExecutor",
    "PointFailure",
    "SweepPointError",
    "run_fault_sweep",
    "fault_sweep_report",
    "steady_state_point",
    "aggregate_point",
    "load_sweep",
    "run_transient_point",
    "aggregate_transients",
    "transient_comparison",
    "FIGURE5_ROUTINGS",
    "run_figure5",
    "figure5_report",
    "FIGURE6_ROUTINGS",
    "run_figure6",
    "figure6_report",
    "FIGURE7_ROUTINGS",
    "run_figure7",
    "figure7_report",
    "FIGURE8_ROUTINGS",
    "LARGE_BUFFER_FACTOR",
    "run_figure8",
    "figure8_report",
    "FIGURE9_ROUTINGS",
    "run_figure9",
    "figure9_report",
    "oscillation_amplitude",
    "run_figure10",
    "figure10_report",
    "CROSS_TOPOLOGY_ROUTINGS",
    "run_cross_topology",
    "cross_topology_report",
    "supported_routings",
    "threshold_analysis",
    "ThresholdAnalysis",
    "measured_average_counter",
    "FAULT_COLUMNS",
    "format_table",
    "rows_to_csv",
    "pivot_series",
    "with_fault_columns",
]
