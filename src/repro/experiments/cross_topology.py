"""Cross-topology sweep harness.

Runs the same (routing, pattern, load) steady-state grid on several
registered topologies and returns one aggregated row per
(topology, routing, load), so the adaptive-vs-oblivious trade-off the paper
studies on the Dragonfly can be compared side by side with the flattened
butterfly, the full mesh, and the torus:

>>> rows = run_cross_topology(pattern="ADV+1", scale="tiny")
>>> print(cross_topology_report(rows, "ADV+1"))

Routing mechanisms that a topology does not support (PB/ECtN outside the
Dragonfly, the in-transit adaptive family on the full mesh) are skipped via
the :class:`~repro.routing.base.UnsupportedTopologyError` capability probe —
:func:`supported_routings` exposes the resulting topology/routing matrix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.reporting import format_table, with_fault_columns
from repro.experiments.scales import get_scale
from repro.experiments.sweep import load_sweep
from repro.routing import ROUTING_REGISTRY, UnsupportedTopologyError, create_routing
from repro.simulation.simulator import Simulator
from repro.topology.registry import available_topologies, create_topology, topology_preset

__all__ = [
    "CROSS_TOPOLOGY_ROUTINGS",
    "supported_routings",
    "run_cross_topology",
    "cross_topology_report",
]

#: Default mechanisms for cross-topology comparisons: the oblivious
#: references, the topology-agnostic source-adaptive mechanism, and the
#: paper's contention-triggered in-transit mechanisms (which run wherever a
#: topology declares an in-transit path policy — everywhere but the full
#: mesh, where the probe drops them).
CROSS_TOPOLOGY_ROUTINGS = ("MIN", "VAL", "UGAL", "Base", "Hybrid")


def supported_routings(
    topology: str, routings: Optional[Sequence[str]] = None
) -> List[str]:
    """The subset of ``routings`` that can be instantiated on ``topology``.

    Probes the actual constructors (on the topology's ``tiny`` preset), so
    the matrix always reflects the real capability gates rather than a
    hand-maintained table.
    """
    names = list(routings) if routings is not None else list(ROUTING_REGISTRY)
    topo = create_topology(topology_preset(topology, "tiny"))
    from repro.config.parameters import SimulationParameters

    params = SimulationParameters.tiny(topo.config)
    rng = np.random.default_rng(0)
    supported: List[str] = []
    for name in names:
        try:
            create_routing(name, topo, params, rng)
        except UnsupportedTopologyError:
            continue
        supported.append(name)
    return supported


def run_cross_topology(
    topologies: Optional[Sequence[str]] = None,
    routings: Sequence[str] = CROSS_TOPOLOGY_ROUTINGS,
    pattern: str = "ADV+1",
    scale: "str | object" = "tiny",
    loads: Optional[Sequence[float]] = None,
    workers: Optional[int] = None,
    executor=None,
) -> List[Dict[str, float]]:
    """Steady-state sweep of ``routings`` x ``loads`` on every topology.

    ``scale`` is an :class:`~repro.experiments.scales.ExperimentScale` or a
    scale name; per topology the scale is re-based onto that topology's
    preset (:meth:`ExperimentScale.with_topology`), keeping latencies,
    buffers and cycle counts identical across topologies (a scale already
    on the requested topology keeps its own sizing).  Unsupported
    (topology, routing) pairs are skipped.  Returns the
    :func:`~repro.experiments.sweep.load_sweep` rows with a ``topology``
    column prepended.
    """
    if topologies is None:
        topologies = available_topologies()
    rows: List[Dict[str, float]] = []
    for topology in topologies:
        topo_scale = (
            get_scale(scale, topology)
            if isinstance(scale, str)
            else scale.with_topology(topology)
        )
        usable = supported_routings(topology, routings)
        if not usable:
            continue
        for row in load_sweep(
            topo_scale, usable, pattern, loads=loads, workers=workers, executor=executor
        ):
            rows.append({"topology": topology, **row})
    return rows


def cross_topology_report(rows: Sequence[Dict[str, float]], pattern: str) -> str:
    """Text table of a cross-topology sweep (fault counters included)."""
    columns = with_fault_columns(
        [
            "topology",
            "routing",
            "offered_load",
            "mean_latency",
            "accepted_load",
            "global_misroute_fraction",
        ],
        rows,
    )
    return format_table(
        rows,
        columns=columns,
        title=f"Cross-topology sweep under {pattern}",
    )
