"""Generic steady-state sweeps: one simulation point, load sweeps, aggregation."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.config.parameters import SimulationParameters
from repro.experiments.scales import ExperimentScale
from repro.metrics.statistics import aggregate_scalar
from repro.simulation.results import SteadyStateResult
from repro.simulation.simulator import Simulator
from repro.traffic import TrafficPattern

__all__ = ["steady_state_point", "aggregate_point", "load_sweep"]


def steady_state_point(
    params: SimulationParameters,
    routing: str,
    pattern: "str | TrafficPattern",
    offered_load: float,
    warmup_cycles: int,
    measure_cycles: int,
    seeds: Sequence[int],
    pattern_factory=None,
) -> List[SteadyStateResult]:
    """Run one (routing, pattern, load) point for every seed.

    ``pattern`` may be a name (``"UN"``, ``"ADV+1"`` ...) or a ready-made
    pattern object; for per-seed pattern objects pass ``pattern_factory``, a
    callable ``topology -> TrafficPattern`` (used by the mixed-traffic
    experiment where the pattern needs the simulator's topology).
    """
    results: List[SteadyStateResult] = []
    for seed in seeds:
        if pattern_factory is not None:
            # Build a throwaway simulator-topology-compatible pattern lazily:
            # the simulator owns its topology, so we construct it first with a
            # placeholder and swap the pattern in.
            sim = Simulator(params, routing, "UN", offered_load, seed=seed)
            pattern_obj = pattern_factory(sim.topology)
            sim.pattern = pattern_obj
            sim.traffic.pattern = pattern_obj
        else:
            sim = Simulator(params, routing, pattern, offered_load, seed=seed)
        results.append(sim.run_steady_state(warmup_cycles, measure_cycles))
    return results


def aggregate_point(results: Sequence[SteadyStateResult]) -> Dict[str, float]:
    """Average the per-seed results of one sweep point."""
    if not results:
        raise ValueError("cannot aggregate an empty result list")
    first = results[0]
    latency = aggregate_scalar([r.mean_latency for r in results])
    accepted = aggregate_scalar([r.accepted_load for r in results])
    misrouted = aggregate_scalar([r.global_misroute_fraction for r in results])
    return {
        "routing": first.routing,
        "pattern": first.pattern,
        "offered_load": first.offered_load,
        "mean_latency": latency.mean,
        "mean_latency_ci95": latency.ci95,
        "accepted_load": accepted.mean,
        "accepted_load_ci95": accepted.ci95,
        "global_misroute_fraction": misrouted.mean,
        "seeds": float(len(results)),
    }


def load_sweep(
    scale: ExperimentScale,
    routings: Sequence[str],
    pattern: str,
    loads: Optional[Sequence[float]] = None,
    params: Optional[SimulationParameters] = None,
) -> List[Dict[str, float]]:
    """Latency/throughput versus offered load for several routing mechanisms.

    Returns one aggregated row per (routing, load), the series plotted in
    Figs. 5 and 10 of the paper.
    """
    if loads is None:
        loads = scale.un_loads if pattern.upper() == "UN" else scale.adv_loads
    if params is None:
        params = scale.params
    rows: List[Dict[str, float]] = []
    for routing in routings:
        for load in loads:
            results = steady_state_point(
                params,
                routing,
                pattern,
                load,
                scale.warmup_cycles,
                scale.measure_cycles,
                scale.seeds,
            )
            rows.append(aggregate_point(results))
    return rows
