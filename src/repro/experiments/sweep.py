"""Generic steady-state sweeps: one simulation point, load sweeps, aggregation.

All entry points accept a ``workers`` count (and optionally a ready-made
:class:`~repro.experiments.parallel.ParallelSweepExecutor`): the independent
(routing, load, seed) points then fan out across processes while the
returned rows stay byte-identical to the serial path (results are collected
in submission order and aggregated exactly as before).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config.parameters import SimulationParameters
from repro.experiments.parallel import (
    ParallelSweepExecutor,
    SteadyPointSpec,
    resolve_executor,
    run_steady_point,
)
from repro.experiments.scales import ExperimentScale
from repro.metrics.statistics import aggregate_scalar
from repro.simulation.results import SteadyStateResult
from repro.traffic import TrafficPattern

__all__ = ["steady_state_point", "aggregate_point", "load_sweep"]


def steady_state_point(
    params: SimulationParameters,
    routing: str,
    pattern: "str | TrafficPattern",
    offered_load: float,
    warmup_cycles: int,
    measure_cycles: int,
    seeds: Sequence[int],
    pattern_factory=None,
    workers: Optional[int] = None,
    executor: Optional[ParallelSweepExecutor] = None,
) -> List[SteadyStateResult]:
    """Run one (routing, pattern, load) point for every seed.

    ``pattern`` may be a name (``"UN"``, ``"ADV+1"`` ...) or a ready-made
    pattern object; for per-seed pattern objects pass ``pattern_factory``, a
    callable ``topology -> TrafficPattern`` (used by the mixed-traffic
    experiment where the pattern needs the simulator's topology).  With
    ``workers > 1`` the seeds run in parallel processes (pattern objects are
    not picklable — use a name or a picklable factory there).
    """
    if pattern_factory is None and not isinstance(pattern, str):
        # A ready-made pattern object: run serially in-process (the object
        # is bound to one topology and generally not picklable).
        from repro.simulation.simulator import Simulator

        results = []
        for seed in seeds:
            sim = Simulator(params, routing, pattern, offered_load, seed=seed)
            results.append(sim.run_steady_state(warmup_cycles, measure_cycles))
        return results
    pattern_name = None if pattern_factory is not None else pattern
    specs = [
        SteadyPointSpec(
            params=params,
            routing=routing,
            pattern=pattern_name,
            offered_load=offered_load,
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
            seed=seed,
            pattern_factory=pattern_factory,
        )
        for seed in seeds
    ]
    with resolve_executor(workers, executor) as exe:
        return exe.map(run_steady_point, specs)


def aggregate_point(results: Sequence[SteadyStateResult]) -> Dict[str, float]:
    """Average the per-seed results of one sweep point."""
    if not results:
        raise ValueError("cannot aggregate an empty result list")
    first = results[0]
    latency = aggregate_scalar([r.mean_latency for r in results])
    accepted = aggregate_scalar([r.accepted_load for r in results])
    misrouted = aggregate_scalar([r.global_misroute_fraction for r in results])
    return {
        "routing": first.routing,
        "pattern": first.pattern,
        "offered_load": first.offered_load,
        "mean_latency": latency.mean,
        "mean_latency_ci95": latency.ci95,
        "accepted_load": accepted.mean,
        "accepted_load_ci95": accepted.ci95,
        "global_misroute_fraction": misrouted.mean,
        # Fault counters (PR 6): mean per seed, like every other aggregate.
        # Zero on healthy runs, but always present so reports can surface
        # packet loss instead of silently averaging it away.
        "dropped_packets": sum(r.dropped_packets for r in results) / len(results),
        "fault_rerouted_delivered": sum(r.fault_rerouted_packets for r in results)
        / len(results),
        "seeds": float(len(results)),
    }


def load_sweep(
    scale: ExperimentScale,
    routings: Sequence[str],
    pattern: str,
    loads: Optional[Sequence[float]] = None,
    params: Optional[SimulationParameters] = None,
    workers: Optional[int] = None,
    executor: Optional[ParallelSweepExecutor] = None,
) -> List[Dict[str, float]]:
    """Latency/throughput versus offered load for several routing mechanisms.

    Returns one aggregated row per (routing, load), the series plotted in
    Figs. 5 and 10 of the paper.  With ``workers > 1`` every (routing, load,
    seed) point of the sweep runs as an independent pool task; the rows (and
    every float in them) are identical to the serial result.
    """
    if loads is None:
        loads = scale.un_loads if pattern.upper() == "UN" else scale.adv_loads
    if params is None:
        params = scale.params
    specs: List[SteadyPointSpec] = [
        SteadyPointSpec(
            params=params,
            routing=routing,
            pattern=pattern,
            offered_load=load,
            warmup_cycles=scale.warmup_cycles,
            measure_cycles=scale.measure_cycles,
            seed=seed,
        )
        for routing in routings
        for load in loads
        for seed in scale.seeds
    ]
    with resolve_executor(workers, executor) as exe:
        results = exe.map(run_steady_point, specs)
    rows: List[Dict[str, float]] = []
    seeds_per_point = len(scale.seeds)
    for index in range(0, len(results), seeds_per_point):
        rows.append(aggregate_point(results[index : index + seeds_per_point]))
    return rows
