"""Plain-text reporting: aligned tables and CSV export for experiment rows."""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["format_table", "rows_to_csv", "pivot_series"]


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render rows of dictionaries as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        table.append([_format_value(row.get(c, ""), precision) for c in columns])
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(cell.ljust(w) for cell, w in zip(table[0], widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in table[1:]:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Serialize rows as CSV text (for saving figure data)."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def pivot_series(
    rows: Sequence[Dict[str, object]],
    index_key: str,
    column_key: str,
    value_key: str,
) -> List[Dict[str, object]]:
    """Pivot long-format rows into one row per ``index_key`` value.

    Useful to print figure-style tables: e.g. one row per offered load with
    one column per routing mechanism.
    """
    index_values: List[object] = []
    columns: List[object] = []
    data: Dict[object, Dict[object, object]] = {}
    for row in rows:
        idx = row[index_key]
        col = row[column_key]
        if idx not in data:
            data[idx] = {}
            index_values.append(idx)
        if col not in columns:
            columns.append(col)
        data[idx][col] = row[value_key]
    out: List[Dict[str, object]] = []
    for idx in index_values:
        entry: Dict[str, object] = {index_key: idx}
        for col in columns:
            entry[str(col)] = data[idx].get(col, "")
        out.append(entry)
    return out
