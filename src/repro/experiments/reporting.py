"""Plain-text reporting: aligned tables and CSV export for experiment rows."""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "FAULT_COLUMNS",
    "format_table",
    "rows_to_csv",
    "pivot_series",
    "with_fault_columns",
]

#: The PR 6 fault counters carried by every aggregated sweep row.  They are
#: zero on healthy runs; reports append them via :func:`with_fault_columns`
#: so packet loss and fault-rerouted deliveries are visible in the output
#: instead of existing only on :class:`SteadyStateResult`.
FAULT_COLUMNS = ("dropped_packets", "fault_rerouted_delivered")


def with_fault_columns(
    columns: Sequence[str], rows: Sequence[Dict[str, object]]
) -> List[str]:
    """Append the fault counters to ``columns`` when any row carries them."""
    out = list(columns)
    for column in FAULT_COLUMNS:
        if column not in out and any(column in row for row in rows):
            out.append(column)
    return out


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render rows of dictionaries as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        table.append([_format_value(row.get(c, ""), precision) for c in columns])
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(cell.ljust(w) for cell, w in zip(table[0], widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in table[1:]:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Serialize rows as CSV text (for saving figure data)."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def pivot_series(
    rows: Sequence[Dict[str, object]],
    index_key: str,
    column_key: str,
    value_key: str,
) -> List[Dict[str, object]]:
    """Pivot long-format rows into one row per ``index_key`` value.

    Useful to print figure-style tables: e.g. one row per offered load with
    one column per routing mechanism.
    """
    index_values: List[object] = []
    columns: List[object] = []
    data: Dict[object, Dict[object, object]] = {}
    for row in rows:
        idx = row[index_key]
        col = row[column_key]
        if idx not in data:
            data[idx] = {}
            index_values.append(idx)
        if col not in columns:
            columns.append(col)
        data[idx][col] = row[value_key]
    out: List[Dict[str, object]] = []
    for idx in index_values:
        entry: Dict[str, object] = {index_key: idx}
        for col in columns:
            entry[str(col)] = data[idx].get(col, "")
        out.append(entry)
    return out
