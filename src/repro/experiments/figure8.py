"""Figure 8: transient response with large buffers.

Same protocol as Fig. 7 (UN→ADV+1 at 20 % load), but the input buffers are
enlarged by 8x (paper: 256-phit local / 2048-phit global input buffers
instead of 32/256; this harness scales the preset's buffers by the same
factor).  Congestion-based mechanisms become markedly slower to adapt —
their trigger has to fill much deeper queues — while the contention-based
mechanisms keep exactly the same response time, demonstrating the decoupling
of the misrouting trigger from the buffer size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figure7 import figure7_report
from repro.experiments.scales import ExperimentScale, TRANSIENT_SCALE
from repro.experiments.transient_runner import transient_comparison

__all__ = ["FIGURE8_ROUTINGS", "LARGE_BUFFER_FACTOR", "run_figure8", "figure8_report"]

FIGURE8_ROUTINGS: Sequence[str] = ("PB", "OLM", "Base", "Hybrid", "ECtN")

#: The paper multiplies the input buffers by 8 (32→256 and 256→2048 phits).
LARGE_BUFFER_FACTOR: int = 8


def run_figure8(
    scale: ExperimentScale = TRANSIENT_SCALE,
    routings: Optional[Sequence[str]] = None,
    buffer_factor: int = LARGE_BUFFER_FACTOR,
    observe_after: Optional[int] = None,
    workers: Optional[int] = None,
    executor=None,
) -> Dict[str, Dict[str, List[float]]]:
    """Transient series with ``buffer_factor``-times larger input buffers."""
    if routings is None:
        routings = FIGURE8_ROUTINGS
    params = scale.params.with_buffers(
        local=scale.params.local_input_buffer_phits * buffer_factor,
        global_=scale.params.global_input_buffer_phits * buffer_factor,
    )
    if observe_after is None:
        observe_after = scale.transient_observe_after * 2
    return transient_comparison(
        scale,
        routings,
        params=params,
        before="UN",
        after="ADV+1",
        observe_after=observe_after,
        workers=workers,
        executor=executor,
    )


def figure8_report(series: Dict[str, Dict[str, List[float]]]) -> str:
    report = figure7_report(series)
    return report.replace(
        "Figure 7: transient UN->ADV+1 (small buffers)",
        "Figure 8: transient UN->ADV+1 (large buffers)",
    )
