"""Section VI-A: analytical guidance for the misrouting threshold.

The paper derives a rule of thumb for the Base threshold ``th``:

* under uniform saturation every input VC tends to hold a packet, so the
  *average* contention-counter value approaches the average number of VCs per
  input port (2.74 for the Table I router); ``th`` should be at least about
  twice that value to avoid spurious misrouting under UN traffic;
* under adversarial traffic the injection ports of a router must be able to
  trigger misrouting on their own, which requires ``th`` not much larger than
  the number of injection ports ``p``.

:func:`threshold_analysis` computes both bounds for a parameter set, and
:func:`measured_average_counter` verifies the first one against a simulation
(by sampling the counters of a Base run under saturated uniform traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.config.parameters import SimulationParameters
from repro.experiments.parallel import resolve_executor
from repro.routing.contention.base_contention import BaseContentionRouting
from repro.simulation.simulator import Simulator
from repro.topology.base import PortKind
from repro.topology.dragonfly import DragonflyTopology

__all__ = ["ThresholdAnalysis", "threshold_analysis", "measured_average_counter"]


@dataclass(frozen=True, slots=True)
class ThresholdAnalysis:
    """Analytical threshold bounds for a router configuration."""

    average_vcs_per_port: float
    lower_bound: int     # ~ 2 x average VCs per port (UN safety)
    upper_bound: int     # ~ p (ADV responsiveness)
    recommended: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "average_vcs_per_port": self.average_vcs_per_port,
            "lower_bound": float(self.lower_bound),
            "upper_bound": float(self.upper_bound),
            "recommended": float(self.recommended),
        }


def average_vcs_per_port(params: SimulationParameters) -> float:
    """Average number of VCs over the router's input ports (Section VI-A)."""
    t = params.topology
    total_vcs = (
        t.p * params.injection_vcs
        + t.local_ports_per_router * params.local_port_vcs
        + t.h * params.global_port_vcs
    )
    return total_vcs / t.router_radix


def threshold_analysis(params: SimulationParameters) -> ThresholdAnalysis:
    """Compute the Section VI-A threshold window for ``params``."""
    avg = average_vcs_per_port(params)
    lower = int(np.ceil(2 * avg))
    upper = max(lower, params.topology.p * params.injection_vcs)
    recommended = lower
    return ThresholdAnalysis(
        average_vcs_per_port=avg,
        lower_bound=lower,
        upper_bound=upper,
        recommended=recommended,
    )


class _CounterSampleSpec(NamedTuple):
    """One seed of the Section VI-A counter-sampling experiment (picklable)."""

    params: SimulationParameters
    offered_load: float
    warmup_cycles: int
    sample_cycles: int
    seed: int


def _measure_counter_seed(spec: _CounterSampleSpec) -> Tuple[float, int]:
    """Sample the Base contention counters for one seed: (mean, samples)."""
    sim = Simulator(spec.params, "Base", "UN", spec.offered_load, seed=spec.seed)
    routing = sim.routing
    assert isinstance(routing, BaseContentionRouting)
    sim.run_cycles(spec.warmup_cycles)
    samples: List[float] = []
    topology: DragonflyTopology = sim.topology
    non_injection_ports = [
        port
        for port in range(topology.router_radix)
        if topology.port_kind(port) is not PortKind.INJECTION
    ]
    for _ in range(spec.sample_cycles):
        sim.run_cycles(1)
        for rid in range(topology.num_routers):
            counters = routing.tracker.counters(rid)
            for port in non_injection_ports:
                samples.append(counters.value(port))
    if not samples:
        return float("nan"), 0
    return float(np.mean(samples)), len(samples)


def measured_average_counter(
    params: SimulationParameters,
    offered_load: float = 1.0,
    warmup_cycles: int = 500,
    sample_cycles: int = 200,
    seed: int = 1,
    seeds: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
    executor=None,
) -> float:
    """Average per-port contention counter under saturated uniform traffic.

    Runs Base routing at the given (high) offered load and samples the
    counters of every router periodically, reproducing the 2.74 estimate of
    Section VI-A at the paper scale.  Pass ``seeds`` (and ``workers``) to
    average over several independent runs fanned out through the
    :class:`~repro.experiments.parallel.ParallelSweepExecutor`.
    """
    if seeds is None:
        seeds = (seed,)
    specs = [
        _CounterSampleSpec(params, offered_load, warmup_cycles, sample_cycles, s)
        for s in seeds
    ]
    with resolve_executor(workers, executor) as exe:
        per_seed = exe.map(_measure_counter_seed, specs)
    total_samples = sum(count for _, count in per_seed)
    if total_samples == 0:
        return float("nan")
    if len(per_seed) == 1:
        return per_seed[0][0]
    return sum(mean * count for mean, count in per_seed) / total_samples
