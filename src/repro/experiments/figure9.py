"""Figure 9: routing oscillations of PB versus the flat response of ECtN.

Same UN→ADV+1 transient as Fig. 7, observed over a longer timescale and
restricted to PB and ECtN.  PB's source-routing decision feeds back on the
congestion state it measures (via the intra-group saturation ECN), producing
periodic oscillations of the latency that decay only slowly; ECtN's trigger
depends on traffic contention, which is independent of the routing decision,
so after the first partial-counter broadcast its latency is flat.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figure7 import figure7_report
from repro.experiments.scales import ExperimentScale, TRANSIENT_SCALE
from repro.experiments.transient_runner import transient_comparison
from repro.metrics.statistics import aggregate_scalar

__all__ = ["FIGURE9_ROUTINGS", "run_figure9", "figure9_report", "oscillation_amplitude"]

FIGURE9_ROUTINGS: Sequence[str] = ("PB", "ECtN")


def run_figure9(
    scale: ExperimentScale = TRANSIENT_SCALE,
    routings: Optional[Sequence[str]] = None,
    observe_after: Optional[int] = None,
    workers: Optional[int] = None,
    executor=None,
) -> Dict[str, Dict[str, List[float]]]:
    """Long-timescale transient latency series for PB and ECtN."""
    if routings is None:
        routings = FIGURE9_ROUTINGS
    if observe_after is None:
        observe_after = scale.transient_observe_after * 3
    return transient_comparison(
        scale,
        routings,
        before="UN",
        after="ADV+1",
        observe_after=observe_after,
        workers=workers,
        executor=executor,
    )


def oscillation_amplitude(series: Dict[str, List[float]], settle_fraction: float = 0.5) -> float:
    """Peak-to-peak latency amplitude after the response has settled.

    Used to quantify the oscillatory behaviour: the amplitude of PB's settled
    latency is expected to be clearly larger than ECtN's.
    """
    latencies = [v for v in series["mean_latency"] if v == v]  # drop NaN
    if not latencies:
        return float("nan")
    start = int(len(latencies) * settle_fraction)
    tail = latencies[start:] or latencies
    return max(tail) - min(tail)


def figure9_report(series: Dict[str, Dict[str, List[float]]]) -> str:
    report = figure7_report(series)
    report = report.replace(
        "Figure 7: transient UN->ADV+1 (small buffers)",
        "Figure 9: latency evolution UN->ADV+1, long timescale (oscillations)",
    )
    amplitudes = {
        routing: oscillation_amplitude(data) for routing, data in series.items()
    }
    lines = [report, "", "Settled peak-to-peak latency amplitude per routing:"]
    for routing, amplitude in amplitudes.items():
        lines.append(f"  {routing}: {amplitude:.1f} cycles")
    return "\n".join(lines)
