"""Parallel execution of independent simulation points.

Every figure of the paper is a sweep over independent (routing, pattern,
load, seed) simulation points, which makes the campaigns embarrassingly
parallel.  :class:`ParallelSweepExecutor` fans a list of point
specifications out over a ``multiprocessing`` pool and returns the results
in the exact submission order, so a parallel sweep aggregates to
byte-identical rows as the serial path: each point builds its own
:class:`~repro.simulation.simulator.Simulator` from its own seed, exactly as
the serial loop does.

The executor is used by :func:`repro.experiments.sweep.load_sweep`,
:func:`repro.experiments.sweep.steady_state_point`, the transient runner and
the figure harnesses through their ``workers`` parameter, and by
:func:`repro.experiments.threshold_analysis.measured_average_counter` for
its per-seed counter sampling.

Point specifications must be picklable: routings and patterns travel as
names, and per-topology patterns travel as picklable factory objects (see
``MixedPatternFactory`` in :mod:`repro.experiments.figure6`).
"""

from __future__ import annotations

import multiprocessing
import os
from contextlib import contextmanager
from typing import Callable, Iterator, List, NamedTuple, Optional, Sequence, TypeVar

from repro.config.parameters import SimulationParameters
from repro.simulation.results import SteadyStateResult, TransientResult
from repro.simulation.simulator import Simulator

__all__ = [
    "SteadyPointSpec",
    "TransientPointSpec",
    "ParallelSweepExecutor",
    "resolve_executor",
    "run_steady_point",
    "run_transient_point_spec",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


class SteadyPointSpec(NamedTuple):
    """One steady-state simulation point (picklable)."""

    params: SimulationParameters
    routing: str
    pattern: Optional[str]
    offered_load: float
    warmup_cycles: int
    measure_cycles: int
    seed: int
    pattern_factory: Optional[Callable] = None


class TransientPointSpec(NamedTuple):
    """One transient simulation point (picklable)."""

    params: SimulationParameters
    routing: str
    before: str
    after: str
    offered_load: float
    warmup_cycles: int
    observe_before: int
    observe_after: int
    bin_size: int
    seed: int


def run_steady_point(spec: SteadyPointSpec) -> SteadyStateResult:
    """Run one steady-state point (module-level, so pool workers can pickle it)."""
    sim = Simulator(
        spec.params,
        spec.routing,
        pattern=spec.pattern,
        offered_load=spec.offered_load,
        seed=spec.seed,
        pattern_factory=spec.pattern_factory,
    )
    return sim.run_steady_state(spec.warmup_cycles, spec.measure_cycles)


def run_transient_point_spec(spec: TransientPointSpec) -> TransientResult:
    """Run one transient point (module-level, so pool workers can pickle it)."""
    sim = Simulator.build_transient(
        spec.params,
        spec.routing,
        before=spec.before,
        after=spec.after,
        offered_load=spec.offered_load,
        switch_cycle=spec.warmup_cycles,
        seed=spec.seed,
    )
    return sim.run_transient(
        warmup_cycles=spec.warmup_cycles,
        observe_before=spec.observe_before,
        observe_after=spec.observe_after,
        bin_size=spec.bin_size,
    )


class ParallelSweepExecutor:
    """Maps point specs over a process pool with deterministic ordering.

    ``workers=None`` resolves to ``os.cpu_count()``; ``workers<=1`` (or a
    single item) runs serially in-process, which keeps tiny sweeps free of
    pool start-up cost and makes the executor safe to use unconditionally.
    Results always come back in submission order (``Pool.map`` semantics),
    so aggregation downstream is independent of worker scheduling.

    The pool is created lazily on the first parallel ``map`` and retained,
    so passing one executor (``executor=``) through several sweeps reuses
    the worker processes.  Call :meth:`close` (or use the executor as a
    context manager) when done; sweeps that create an executor internally
    close it themselves.
    """

    def __init__(self, workers: Optional[int] = None, start_method: Optional[str] = None):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._start_method = start_method
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            context = (
                multiprocessing.get_context(self._start_method)
                if self._start_method
                else multiprocessing.get_context()
            )
            self._pool = context.Pool(processes=self.workers)
        return self._pool

    def map(self, func: Callable[[_T], _R], items: Sequence[_T]) -> List[_R]:
        """Apply ``func`` to every item, preserving input order."""
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [func(item) for item in items]
        return self._ensure_pool().map(func, items)

    def close(self) -> None:
        """Shut the worker pool down (no-op if none was ever started)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelSweepExecutor":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelSweepExecutor(workers={self.workers})"


@contextmanager
def resolve_executor(
    workers: Optional[int], executor: Optional[ParallelSweepExecutor]
) -> Iterator[ParallelSweepExecutor]:
    """Yield ``executor`` if given, else a temporary one closed on exit.

    A caller-provided executor is *borrowed* (its pool survives for further
    sweeps); an internally-created one is owned and its pool is shut down
    when the sweep finishes.
    """
    if executor is not None:
        yield executor
        return
    owned = ParallelSweepExecutor(workers=workers if workers is not None else 1)
    try:
        yield owned
    finally:
        owned.close()
