"""Parallel execution of independent simulation points.

Every figure of the paper is a sweep over independent (routing, pattern,
load, seed) simulation points, which makes the campaigns embarrassingly
parallel.  :class:`ParallelSweepExecutor` fans a list of point
specifications out over a ``multiprocessing`` pool and returns the results
in the exact submission order, so a parallel sweep aggregates to
byte-identical rows as the serial path: each point builds its own
:class:`~repro.simulation.simulator.Simulator` from its own seed, exactly as
the serial loop does.

The executor is used by :func:`repro.experiments.sweep.load_sweep`,
:func:`repro.experiments.sweep.steady_state_point`, the transient runner and
the figure harnesses through their ``workers`` parameter, and by
:func:`repro.experiments.threshold_analysis.measured_average_counter` for
its per-seed counter sampling.

Point specifications must be picklable: routings and patterns travel as
names, and per-topology patterns travel as picklable factory objects (see
``MixedPatternFactory`` in :mod:`repro.experiments.figure6`).
"""

from __future__ import annotations

import multiprocessing
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    TypeVar,
    Union,
)

from repro.config.parameters import SimulationParameters
from repro.simulation.results import SteadyStateResult, TransientResult
from repro.simulation.simulator import Simulator
from repro.topology.faults import FaultModel

__all__ = [
    "SteadyPointSpec",
    "TransientPointSpec",
    "ParallelSweepExecutor",
    "PointFailure",
    "SweepPointError",
    "resolve_executor",
    "run_steady_point",
    "run_transient_point_spec",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


class SteadyPointSpec(NamedTuple):
    """One steady-state simulation point (picklable)."""

    params: SimulationParameters
    routing: str
    pattern: Optional[str]
    offered_load: float
    warmup_cycles: int
    measure_cycles: int
    seed: int
    pattern_factory: Optional[Callable] = None
    #: Link-fault model for the point (``None`` = healthy network); appended
    #: with a default so pre-fault specs keep their tuple shape.
    fault_model: Optional[FaultModel] = None


class TransientPointSpec(NamedTuple):
    """One transient simulation point (picklable)."""

    params: SimulationParameters
    routing: str
    before: str
    after: str
    offered_load: float
    warmup_cycles: int
    observe_before: int
    observe_after: int
    bin_size: int
    seed: int


class SweepPointError(RuntimeError):
    """A simulation point failed; carries the point's spec for diagnosis.

    Raised by the point runners so an exception that escapes a worker
    process always identifies the failing (routing, pattern, load, seed)
    combination — without it, a crash deep inside a 500-point sweep names
    only a line of simulator code.  ``args`` holds ``(message, spec)`` so
    the exception pickles across the pool boundary intact.
    """

    def __init__(self, message: str, spec: Any = None):
        super().__init__(message, spec)
        self.spec = spec

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


def _describe_spec(spec: Any) -> str:
    """Compact human-readable identity of a point spec."""
    if isinstance(spec, SteadyPointSpec):
        return (
            f"routing={spec.routing} pattern={spec.pattern} "
            f"load={spec.offered_load} seed={spec.seed}"
            + (" faults=yes" if spec.fault_model is not None else "")
        )
    if isinstance(spec, TransientPointSpec):
        return (
            f"routing={spec.routing} {spec.before}->{spec.after} "
            f"load={spec.offered_load} seed={spec.seed}"
        )
    return repr(spec)


def run_steady_point(spec: SteadyPointSpec) -> SteadyStateResult:
    """Run one steady-state point (module-level, so pool workers can pickle it)."""
    try:
        sim = Simulator(
            spec.params,
            spec.routing,
            pattern=spec.pattern,
            offered_load=spec.offered_load,
            seed=spec.seed,
            pattern_factory=spec.pattern_factory,
            fault_model=spec.fault_model,
        )
        return sim.run_steady_state(spec.warmup_cycles, spec.measure_cycles)
    except Exception as exc:
        raise SweepPointError(
            f"steady point ({_describe_spec(spec)}) failed: {exc!r}", spec
        ) from exc


def run_transient_point_spec(spec: TransientPointSpec) -> TransientResult:
    """Run one transient point (module-level, so pool workers can pickle it)."""
    try:
        sim = Simulator.build_transient(
            spec.params,
            spec.routing,
            before=spec.before,
            after=spec.after,
            offered_load=spec.offered_load,
            switch_cycle=spec.warmup_cycles,
            seed=spec.seed,
        )
        return sim.run_transient(
            warmup_cycles=spec.warmup_cycles,
            observe_before=spec.observe_before,
            observe_after=spec.observe_after,
            bin_size=spec.bin_size,
        )
    except Exception as exc:
        raise SweepPointError(
            f"transient point ({_describe_spec(spec)}) failed: {exc!r}", spec
        ) from exc


@dataclass(frozen=True)
class PointFailure:
    """Typed failure of one sweep point (returned by ``map_robust``).

    ``kind`` is ``"error"`` for an exception raised inside the worker and
    ``"timeout"`` for a point that exceeded the per-point timeout — which
    also covers a worker process that died outright, since a crashed
    worker's task never produces a result.
    """

    spec: Any
    error: str
    kind: str = "error"
    attempts: int = 1
    #: The original exception object, when it happened in-process or
    #: round-tripped the pool boundary (``None`` for timeouts).
    exception: Optional[BaseException] = field(default=None, compare=False)


class ParallelSweepExecutor:
    """Maps point specs over a process pool with deterministic ordering.

    ``workers=None`` resolves to ``os.cpu_count()``; ``workers<=1`` (or a
    single item) runs serially in-process, which keeps tiny sweeps free of
    pool start-up cost and makes the executor safe to use unconditionally.
    Results always come back in submission order (``Pool.map`` semantics),
    so aggregation downstream is independent of worker scheduling.

    The pool is created lazily on the first parallel ``map`` and retained,
    so passing one executor (``executor=``) through several sweeps reuses
    the worker processes.  Call :meth:`close` (or use the executor as a
    context manager) when done; sweeps that create an executor internally
    close it themselves.
    """

    def __init__(self, workers: Optional[int] = None, start_method: Optional[str] = None):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._start_method = start_method
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            context = (
                multiprocessing.get_context(self._start_method)
                if self._start_method
                else multiprocessing.get_context()
            )
            self._pool = context.Pool(processes=self.workers)
        return self._pool

    def map(self, func: Callable[[_T], _R], items: Sequence[_T]) -> List[_R]:
        """Apply ``func`` to every item, preserving input order."""
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [func(item) for item in items]
        return self._ensure_pool().map(func, items)

    def map_robust(
        self,
        func: Callable[[_T], _R],
        items: Sequence[_T],
        *,
        timeout: Optional[float] = None,
        retries: int = 1,
    ) -> List[Union[_R, "PointFailure"]]:
        """``map`` that isolates failures instead of aborting the sweep.

        Every item yields either ``func(item)`` or a :class:`PointFailure`,
        in input order — one crashed, hung or raising point never costs the
        results of the others.

        * A worker exception charges one attempt; the item is resubmitted
          with the *same* spec up to ``retries`` extra times, then reported
          as ``PointFailure(kind="error")``.
        * ``timeout`` (seconds per point) bounds each result collection.  A
          timed-out point charges an attempt and the pool is torn down and
          recreated — a hung worker cannot be recovered, and a worker that
          died outright (its task would never complete) surfaces the same
          way.  Points that were merely queued behind the teardown are
          resubmitted without charging their attempts.
        * Without a ``timeout`` a hung or crashed worker blocks forever:
          pass one whenever the point function is not trusted to return.
        """
        items = list(items)
        n = len(items)
        results: List[Any] = [None] * n
        if self.workers <= 1 or n <= 1:
            for i, item in enumerate(items):
                results[i] = self._run_serial(func, item, retries)
            return results
        attempts = [0] * n
        pending = list(range(n))
        while pending:
            pool = self._ensure_pool()
            handles = [(i, pool.apply_async(func, (items[i],))) for i in pending]
            pending = []
            for pos, (i, handle) in enumerate(handles):
                try:
                    results[i] = handle.get(timeout)
                except multiprocessing.TimeoutError:
                    attempts[i] += 1
                    if attempts[i] <= retries:
                        pending.append(i)
                    else:
                        results[i] = PointFailure(
                            spec=items[i],
                            error=(
                                f"no result within {timeout}s "
                                "(hung point or dead worker)"
                            ),
                            kind="timeout",
                            attempts=attempts[i],
                        )
                    # The stuck worker poisons the whole pool: replace it and
                    # resubmit every uncollected item (collateral resubmits
                    # do not charge attempts).
                    self.close()
                    pending.extend(j for j, _ in handles[pos + 1 :])
                    break
                except Exception as exc:
                    attempts[i] += 1
                    if attempts[i] <= retries:
                        pending.append(i)
                    else:
                        results[i] = PointFailure(
                            spec=getattr(exc, "spec", None) or items[i],
                            error=str(exc) or repr(exc),
                            kind="error",
                            attempts=attempts[i],
                            exception=exc,
                        )
        return results

    @staticmethod
    def _run_serial(func: Callable[[_T], _R], item: _T, retries: int):
        attempt = 0
        while True:
            attempt += 1
            try:
                return func(item)
            except Exception as exc:
                if attempt > retries:
                    return PointFailure(
                        spec=getattr(exc, "spec", None) or item,
                        error=str(exc) or repr(exc),
                        kind="error",
                        attempts=attempt,
                        exception=exc,
                    )

    def close(self) -> None:
        """Shut the worker pool down (no-op if none was ever started)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelSweepExecutor":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelSweepExecutor(workers={self.workers})"


@contextmanager
def resolve_executor(
    workers: Optional[int], executor: Optional[ParallelSweepExecutor]
) -> Iterator[ParallelSweepExecutor]:
    """Yield ``executor`` if given, else a temporary one closed on exit.

    A caller-provided executor is *borrowed* (its pool survives for further
    sweeps); an internally-created one is owned and its pool is shut down
    when the sweep finishes.
    """
    if executor is not None:
        yield executor
        return
    owned = ParallelSweepExecutor(workers=workers if workers is not None else 1)
    try:
        yield owned
    finally:
        owned.close()
