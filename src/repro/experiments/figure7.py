"""Figure 7: transient response to a UN→ADV+1 traffic change (small buffers).

After warming up with uniform traffic at 20 % load the pattern switches to
ADV+1 at ``t = 0``.  Fig. 7a plots the evolution of the average latency and
Fig. 7b the percentage of globally misrouted packets.  The congestion-based
mechanisms (PB, OLM) need on the order of a hundred cycles to divert traffic
because their trigger only fires once queues fill; the contention-based
mechanisms react within roughly the misrouting-threshold number of cycles,
and ECtN switches to misrouting at injection after its first partial-array
broadcast.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.reporting import format_table
from repro.experiments.scales import ExperimentScale, TRANSIENT_SCALE
from repro.experiments.transient_runner import transient_comparison

__all__ = ["FIGURE7_ROUTINGS", "run_figure7", "figure7_report"]

FIGURE7_ROUTINGS: Sequence[str] = ("PB", "OLM", "Base", "Hybrid", "ECtN")


def run_figure7(
    scale: ExperimentScale = TRANSIENT_SCALE,
    routings: Optional[Sequence[str]] = None,
    after: str = "ADV+1",
    workers: Optional[int] = None,
    executor=None,
) -> Dict[str, Dict[str, List[float]]]:
    """Latency (7a) and misrouting (7b) series per routing mechanism."""
    if routings is None:
        routings = FIGURE7_ROUTINGS
    return transient_comparison(
        scale, routings, before="UN", after=after, workers=workers, executor=executor
    )


def figure7_report(series: Dict[str, Dict[str, List[float]]]) -> str:
    """Format the transient series as a long-format text table."""
    rows: List[Dict[str, float]] = []
    for routing, data in series.items():
        for cycle, latency, misrouted in zip(
            data["cycles"], data["mean_latency"], data["misrouted_fraction"]
        ):
            rows.append(
                {
                    "routing": routing,
                    "cycle": cycle,
                    "mean_latency": latency,
                    "misrouted_fraction": misrouted,
                }
            )
    return format_table(
        rows,
        columns=["routing", "cycle", "mean_latency", "misrouted_fraction"],
        title="Figure 7: transient UN->ADV+1 (small buffers)",
    )
