"""Experiment scales.

The paper's experiments run a 16,512-node Dragonfly for tens of thousands of
cycles per point, averaged over 10 seeds — far beyond what a pure-Python
cycle-level simulation can do in an interactive setting.  An
:class:`ExperimentScale` bundles a topology/parameter preset with warm-up and
measurement lengths, seeds, and load grids, so that every figure harness can
be run at three fidelities:

``TINY_SCALE``
    Smallest meaningful runs; used by the test suite and the pytest
    benchmarks (seconds per point).
``SMALL_SCALE``
    The default for the example scripts; preserves the qualitative shapes of
    the paper's figures (tens of seconds per figure).
``PAPER_SCALE``
    The Table I configuration with the paper's cycle counts and 10 seeds.
    Provided for completeness; running it in pure Python takes a long time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.config.parameters import SimulationParameters
from repro.topology.registry import topology_preset

__all__ = [
    "ExperimentScale",
    "TINY_SCALE",
    "SMALL_SCALE",
    "TRANSIENT_SCALE",
    "PAPER_SCALE",
    "get_scale",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Sizing of an experiment campaign."""

    name: str
    params: SimulationParameters
    warmup_cycles: int
    measure_cycles: int
    seeds: Tuple[int, ...]
    #: Offered loads for uniform-traffic sweeps (phits/node/cycle).
    un_loads: Tuple[float, ...]
    #: Offered loads for adversarial-traffic sweeps.
    adv_loads: Tuple[float, ...]
    #: Load used by the transient and oscillation experiments (paper: 0.2).
    transient_load: float = 0.2
    #: Observation window around the traffic change (cycles).
    transient_observe_before: int = 100
    transient_observe_after: int = 400
    transient_bin: int = 10
    #: Load used by the mixed-traffic experiment (paper: 0.35).
    mixed_load: float = 0.35

    def with_params(self, params: SimulationParameters) -> "ExperimentScale":
        return replace(self, params=params)

    def with_topology(self, topology: str) -> "ExperimentScale":
        """This scale on a different registered topology.

        The topology's preset matching the scale's *base* name is used
        (``tiny``-derived scales use the topology's ``tiny`` preset,
        everything else the ``small`` preset), keeping the scale's
        latencies, buffers and cycle counts so cross-topology comparisons
        hold everything else fixed.  A scale already on the requested
        topology — including the configured Dragonfly of an un-rebased
        scale — is returned unchanged, so a caller's explicit topology
        sizing is never silently replaced by a preset.
        """
        topology = topology.lower()
        if self.params.topology.kind == topology:
            return self
        base_name = self.name.split("/", 1)[0]
        preset = "tiny" if base_name == "tiny" else "small"
        config = topology_preset(topology, preset)
        return replace(
            self,
            name=f"{base_name}/{topology}",
            params=self.params.with_topology(config),
        )


TINY_SCALE = ExperimentScale(
    name="tiny",
    params=SimulationParameters.tiny(),
    warmup_cycles=300,
    measure_cycles=500,
    seeds=(1,),
    un_loads=(0.1, 0.4, 0.7),
    adv_loads=(0.1, 0.3, 0.5),
    transient_load=0.2,
    transient_observe_before=60,
    transient_observe_after=240,
    transient_bin=20,
)

SMALL_SCALE = ExperimentScale(
    name="small",
    params=SimulationParameters.small(),
    warmup_cycles=1_000,
    measure_cycles=2_000,
    seeds=(1, 2),
    un_loads=(0.05, 0.2, 0.4, 0.6, 0.8),
    adv_loads=(0.05, 0.1, 0.2, 0.3, 0.4, 0.5),
    transient_load=0.2,
    transient_observe_before=100,
    transient_observe_after=500,
    transient_bin=10,
)

#: Scale for the transient experiments (Figs. 7-9): the topology keeps the
#: paper's eight injection ports per router so that the 20 % adversarial load
#: stresses the source routers (see ``SimulationParameters.transient``).
TRANSIENT_SCALE = ExperimentScale(
    name="transient",
    params=SimulationParameters.transient(),
    warmup_cycles=300,
    measure_cycles=800,
    seeds=(1,),
    un_loads=(0.05, 0.2, 0.4),
    adv_loads=(0.05, 0.1, 0.2, 0.3),
    transient_load=0.3,
    transient_observe_before=40,
    transient_observe_after=240,
    transient_bin=20,
)

PAPER_SCALE = ExperimentScale(
    name="paper",
    params=SimulationParameters.paper(),
    warmup_cycles=10_000,
    measure_cycles=15_000,
    seeds=tuple(range(1, 11)),
    un_loads=tuple(round(0.05 * i, 2) for i in range(1, 20)),
    adv_loads=tuple(round(0.05 * i, 2) for i in range(1, 11)),
    transient_load=0.2,
    transient_observe_before=100,
    transient_observe_after=1600,
    transient_bin=10,
)

_SCALES: Dict[str, ExperimentScale] = {
    "tiny": TINY_SCALE,
    "small": SMALL_SCALE,
    "transient": TRANSIENT_SCALE,
    "paper": PAPER_SCALE,
}


def get_scale(name: str, topology: Optional[str] = None) -> ExperimentScale:
    """Look an experiment scale up by name (``tiny``, ``small``, ``paper``).

    With ``topology`` (a registry name such as ``"flattened_butterfly"``)
    the scale's Dragonfly preset is swapped for that topology's preset of
    matching size; see :meth:`ExperimentScale.with_topology`.
    """
    try:
        scale = _SCALES[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"Unknown scale {name!r}; available: {', '.join(_SCALES)}"
        ) from exc
    if topology is not None:
        scale = scale.with_topology(topology)
    return scale
