"""Shared runner for the transient experiments (Figs. 7, 8 and 9).

Like the steady-state sweeps, the transient campaigns are sweeps of
independent (routing, seed) simulation points: ``workers`` fans them out
through the :class:`~repro.experiments.parallel.ParallelSweepExecutor` with
results returned in submission order, so the aggregated series are
identical to a serial run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config.parameters import SimulationParameters
from repro.experiments.parallel import (
    ParallelSweepExecutor,
    TransientPointSpec,
    resolve_executor,
    run_transient_point_spec,
)
from repro.experiments.scales import ExperimentScale
from repro.metrics.statistics import average_series
from repro.simulation.results import TransientResult

__all__ = ["run_transient_point", "aggregate_transients", "transient_comparison"]


def run_transient_point(
    params: SimulationParameters,
    routing: str,
    before: str,
    after: str,
    offered_load: float,
    warmup_cycles: int,
    observe_before: int,
    observe_after: int,
    bin_size: int,
    seeds: Sequence[int],
    workers: Optional[int] = None,
    executor: Optional[ParallelSweepExecutor] = None,
) -> List[TransientResult]:
    """Run the UN→ADV-style transient for one routing mechanism and all seeds."""
    specs = [
        TransientPointSpec(
            params=params,
            routing=routing,
            before=before,
            after=after,
            offered_load=offered_load,
            warmup_cycles=warmup_cycles,
            observe_before=observe_before,
            observe_after=observe_after,
            bin_size=bin_size,
            seed=seed,
        )
        for seed in seeds
    ]
    with resolve_executor(workers, executor) as exe:
        return exe.map(run_transient_point_spec, specs)


def aggregate_transients(results: Sequence[TransientResult]) -> Dict[str, List[float]]:
    """Average the per-seed transient series of one routing mechanism."""
    if not results:
        raise ValueError("cannot aggregate an empty transient result list")
    cycles = max((r.cycles for r in results), key=len)
    return {
        "cycles": list(cycles),
        "mean_latency": average_series([r.mean_latency for r in results]),
        "misrouted_fraction": average_series([r.misrouted_fraction for r in results]),
    }


def transient_comparison(
    scale: ExperimentScale,
    routings: Sequence[str],
    params: Optional[SimulationParameters] = None,
    before: str = "UN",
    after: str = "ADV+1",
    observe_after: Optional[int] = None,
    workers: Optional[int] = None,
    executor: Optional[ParallelSweepExecutor] = None,
) -> Dict[str, Dict[str, List[float]]]:
    """Transient series for several routing mechanisms (one UN→ADV change).

    With ``workers > 1`` every (routing, seed) pair becomes one pool task;
    aggregation per routing preserves the serial ordering and values.  A
    caller-owned ``executor`` (e.g. the sweep service's caching executor)
    is borrowed instead.
    """
    if params is None:
        params = scale.params
    if observe_after is None:
        observe_after = scale.transient_observe_after
    specs: List[TransientPointSpec] = [
        TransientPointSpec(
            params=params,
            routing=routing,
            before=before,
            after=after,
            offered_load=scale.transient_load,
            warmup_cycles=scale.warmup_cycles,
            observe_before=scale.transient_observe_before,
            observe_after=observe_after,
            bin_size=scale.transient_bin,
            seed=seed,
        )
        for routing in routings
        for seed in scale.seeds
    ]
    with resolve_executor(workers, executor) as exe:
        results = exe.map(run_transient_point_spec, specs)
    out: Dict[str, Dict[str, List[float]]] = {}
    seeds_per_routing = len(scale.seeds)
    for index, routing in enumerate(routings):
        start = index * seeds_per_routing
        out[routing] = aggregate_transients(results[start : start + seeds_per_routing])
    return out
