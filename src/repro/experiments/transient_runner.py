"""Shared runner for the transient experiments (Figs. 7, 8 and 9)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config.parameters import SimulationParameters
from repro.experiments.scales import ExperimentScale
from repro.metrics.statistics import average_series
from repro.simulation.results import TransientResult
from repro.simulation.simulator import Simulator

__all__ = ["run_transient_point", "aggregate_transients", "transient_comparison"]


def run_transient_point(
    params: SimulationParameters,
    routing: str,
    before: str,
    after: str,
    offered_load: float,
    warmup_cycles: int,
    observe_before: int,
    observe_after: int,
    bin_size: int,
    seeds: Sequence[int],
) -> List[TransientResult]:
    """Run the UN→ADV-style transient for one routing mechanism and all seeds."""
    results: List[TransientResult] = []
    for seed in seeds:
        sim = Simulator.build_transient(
            params,
            routing,
            before=before,
            after=after,
            offered_load=offered_load,
            switch_cycle=warmup_cycles,
            seed=seed,
        )
        results.append(
            sim.run_transient(
                warmup_cycles=warmup_cycles,
                observe_before=observe_before,
                observe_after=observe_after,
                bin_size=bin_size,
            )
        )
    return results


def aggregate_transients(results: Sequence[TransientResult]) -> Dict[str, List[float]]:
    """Average the per-seed transient series of one routing mechanism."""
    if not results:
        raise ValueError("cannot aggregate an empty transient result list")
    cycles = max((r.cycles for r in results), key=len)
    return {
        "cycles": list(cycles),
        "mean_latency": average_series([r.mean_latency for r in results]),
        "misrouted_fraction": average_series([r.misrouted_fraction for r in results]),
    }


def transient_comparison(
    scale: ExperimentScale,
    routings: Sequence[str],
    params: Optional[SimulationParameters] = None,
    before: str = "UN",
    after: str = "ADV+1",
    observe_after: Optional[int] = None,
) -> Dict[str, Dict[str, List[float]]]:
    """Transient series for several routing mechanisms (one UN→ADV change)."""
    if params is None:
        params = scale.params
    if observe_after is None:
        observe_after = scale.transient_observe_after
    out: Dict[str, Dict[str, List[float]]] = {}
    for routing in routings:
        results = run_transient_point(
            params,
            routing,
            before=before,
            after=after,
            offered_load=scale.transient_load,
            warmup_cycles=scale.warmup_cycles,
            observe_before=scale.transient_observe_before,
            observe_after=observe_after,
            bin_size=scale.transient_bin,
            seeds=scale.seeds,
        )
        out[routing] = aggregate_transients(results)
    return out
