"""Figure 10: sensitivity of Base to the misrouting threshold.

Fig. 10a sweeps the Base contention threshold under uniform traffic (low
thresholds trigger spurious misrouting and hurt latency/throughput) and
Fig. 10b under ADV+1 (high thresholds delay misrouting and hurt latency).
MIN and VAL are included as the respective references.  The harness also
exposes the Section VI-A rule of thumb that the threshold should sit between
roughly twice the average number of VCs per input port (UN safety) and the
number of injection ports (ADV responsiveness).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.reporting import format_table
from repro.experiments.scales import ExperimentScale, SMALL_SCALE
from repro.experiments.parallel import resolve_executor
from repro.experiments.sweep import load_sweep

__all__ = ["run_figure10", "figure10_report"]


def run_figure10(
    pattern: str = "UN",
    thresholds: Optional[Sequence[int]] = None,
    scale: ExperimentScale = SMALL_SCALE,
    loads: Optional[Sequence[float]] = None,
    include_reference: bool = True,
    workers: Optional[int] = None,
    executor=None,
) -> List[Dict[str, float]]:
    """Sweep the Base misrouting threshold for one traffic pattern.

    Returns aggregated rows labelled ``Base(th=N)`` plus the oblivious
    reference (MIN for UN, VAL for adversarial patterns).
    """
    if thresholds is None:
        base_th = scale.params.base_contention_threshold
        if pattern.upper() == "UN":
            thresholds = tuple(range(max(1, base_th - 3), base_th + 2))
        else:
            thresholds = tuple(range(base_th, base_th + 5))
    rows: List[Dict[str, float]] = []
    # One executor for the whole threshold sweep, so the worker pool is
    # reused across the per-threshold load_sweep calls.
    with resolve_executor(workers, executor) as exe:
        for threshold in thresholds:
            params = scale.params.with_threshold(threshold)
            sweep_rows = load_sweep(
                scale, ["Base"], pattern, loads=loads, params=params, executor=exe
            )
            for row in sweep_rows:
                row["routing"] = f"Base(th={threshold})"
                row["threshold"] = float(threshold)
                rows.append(row)
        if include_reference:
            reference = "MIN" if pattern.upper() == "UN" else "VAL"
            for row in load_sweep(scale, [reference], pattern, loads=loads, executor=exe):
                row["threshold"] = float("nan")
                rows.append(row)
    return rows


def figure10_report(rows: Sequence[Dict[str, float]], pattern: str) -> str:
    return format_table(
        rows,
        columns=[
            "routing",
            "offered_load",
            "mean_latency",
            "accepted_load",
            "global_misroute_fraction",
        ],
        title=f"Figure 10 ({pattern}): Base threshold sensitivity",
    )
