"""Content-addressed result cache for sweep points.

Entries map a :func:`~repro.service.keys.point_key` to one serialized
result row plus its :func:`~repro.service.keys.result_fingerprint`.  Two
backends share the same interface:

:class:`InMemoryResultCache`
    A dict — the working set of one service process.

:class:`DirectoryResultCache`
    One JSON file per entry under ``<root>/<key[:2]>/<key>.json``, written
    atomically (temp file + ``os.replace``), so concurrent writers and a
    reader racing a writer can never observe a torn entry.  Survives
    across processes; this is what the CLI and the CI smoke lane use.

Both verify on lookup: the stored fingerprint must match the fingerprint
recomputed from the *deserialized* result, so a corrupted file, a stale
schema revision, or any lossy round-trip surfaces as a **miss** (and the
bad entry is dropped), never as a silently wrong row.  Failures
(:class:`~repro.experiments.parallel.PointFailure`) are never stored —
a failure describes the attempt, not the point's value.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from repro.service.keys import result_fingerprint
from repro.simulation.results import (
    GOLDENS_SCHEMA_REV,
    SteadyStateResult,
    TransientResult,
)

__all__ = [
    "CACHE_ENTRY_SCHEMA",
    "STALE_TMP_GRACE_SECONDS",
    "CacheStats",
    "InMemoryResultCache",
    "DirectoryResultCache",
    "encode_entry",
    "decode_entry",
]

#: Layout version of the entry envelope itself (independent of the result
#: schema revision, which is carried *inside* the envelope).
CACHE_ENTRY_SCHEMA = 1

#: Minimum age (seconds) before an orphaned ``.tmp`` file is swept.  A live
#: writer holds its temp file for well under a second (one ``json.dump``
#: plus ``os.replace``); anything older is the leftover of a writer that
#: died between ``mkstemp`` and ``os.replace`` and would otherwise
#: accumulate forever, invisible to the ``??/*.json`` entry glob.
STALE_TMP_GRACE_SECONDS = 60.0

_KINDS = {
    "steady": SteadyStateResult,
    "transient": TransientResult,
}


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache (or one service run)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    coalesced: int = 0
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when nothing was looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "coalesced": self.coalesced,
            "invalidated": self.invalidated,
            "hit_rate": self.hit_rate,
        }

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.coalesced += other.coalesced
        self.invalidated += other.invalidated


def encode_entry(key: str, result: Any) -> Dict[str, Any]:
    """Serialize one result into its cache-entry envelope."""
    for kind, cls in _KINDS.items():
        if isinstance(result, cls):
            return {
                "entry_schema": CACHE_ENTRY_SCHEMA,
                "schema": GOLDENS_SCHEMA_REV,
                "key": key,
                "kind": kind,
                "result": result.as_dict(),
                "fingerprint": result_fingerprint(result),
            }
    raise TypeError(f"cannot cache a {type(result).__name__}")


def decode_entry(entry: Dict[str, Any], key: str) -> Optional[Any]:
    """Deserialize and *verify* one entry; ``None`` when it is unusable.

    Unusable means: wrong envelope layout, a different result-schema
    revision (goldens-schema bump invalidation), a key mismatch, an
    unknown result kind, or a fingerprint that no longer matches the
    deserialized result.
    """
    try:
        if entry.get("entry_schema") != CACHE_ENTRY_SCHEMA:
            return None
        if entry.get("schema") != GOLDENS_SCHEMA_REV:
            return None
        if entry.get("key") != key:
            return None
        cls = _KINDS.get(entry.get("kind"))
        if cls is None:
            return None
        result = cls.from_dict(entry["result"])
        if result_fingerprint(result) != entry.get("fingerprint"):
            return None
        return result
    except (KeyError, TypeError, ValueError):
        return None


class InMemoryResultCache:
    """Dict-backed content-addressed result cache."""

    def __init__(self) -> None:
        self._entries: Dict[str, Dict[str, Any]] = {}
        self.stats = CacheStats()

    def lookup(self, key: str) -> Optional[Any]:
        entry = self._entries.get(key)
        result = decode_entry(entry, key) if entry is not None else None
        if result is None:
            if entry is not None:
                del self._entries[key]
                self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def store(self, key: str, result: Any) -> None:
        self._entries[key] = encode_entry(key, result)
        self.stats.stores += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


class DirectoryResultCache:
    """File-per-entry cache rooted at a directory (cross-process, atomic).

    The two-character fan-out directory keeps any single directory from
    collecting millions of entries.  Writes go through a temp file in the
    destination directory followed by ``os.replace`` — atomic on POSIX —
    so a concurrent reader sees either the old entry, the new entry, or
    no entry; never a partial file.  Unreadable or invalid files are
    treated as misses and removed best-effort.
    """

    def __init__(self, root: "str | os.PathLike") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def lookup(self, key: str) -> Optional[Any]:
        path = self._path(key)
        entry = None
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            pass
        result = decode_entry(entry, key) if entry is not None else None
        if result is None:
            if path.exists():
                self.stats.invalidated += 1
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing unlink
                    pass
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def store(self, key: str, result: Any) -> None:
        entry = encode_entry(key, result)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def _files(self):
        return sorted(self.root.glob("??/*.json"))

    def _tmp_files(self):
        return sorted(self.root.glob("??/*.tmp"))

    def _stale_tmp_files(self, grace: float = STALE_TMP_GRACE_SECONDS):
        """Orphaned temp files older than ``grace`` seconds.

        The age check keeps a concurrent writer's live temp file (held only
        between ``mkstemp`` and ``os.replace``) out of the sweep.
        """
        now = time.time()
        stale = []
        for path in self._tmp_files():
            try:
                if now - path.stat().st_mtime >= grace:
                    stale.append(path)
            except OSError:  # pragma: no cover - racing replace/unlink
                pass
        return stale

    def clear(self) -> int:
        """Remove every entry and stale temp file; returns the number removed."""
        removed = 0
        for path in self._files() + self._stale_tmp_files():
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing unlink
                pass
        return removed

    def prune_stale(self) -> int:
        """Drop stale-schema entries and orphaned temp files.

        Entries whose result-schema revision is not current are removed, as
        are ``.tmp`` files left behind by writers that died between
        ``mkstemp`` and ``os.replace`` (older than
        :data:`STALE_TMP_GRACE_SECONDS`; fresher ones may belong to a live
        writer and are left alone).
        """
        removed = 0
        for path in self._files():
            try:
                entry = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                entry = None
            if entry is None or entry.get("schema") != GOLDENS_SCHEMA_REV:
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - racing unlink
                    pass
        for path in self._stale_tmp_files():
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing unlink
                pass
        return removed

    def summary(self) -> Dict[str, object]:
        """Entry counts by kind and schema revision (for the CLI).

        Unreadable files are reported under ``corrupt`` rather than counted
        as entries (their kind/schema/size are unknown anyway); leftover
        temp files show up under ``tmp_files`` so an accumulation of dead
        writers is visible before ``prune_stale`` sweeps them.
        """
        kinds: Dict[str, int] = {}
        schemas: Dict[str, int] = {}
        total_bytes = 0
        corrupt = 0
        files = self._files()
        for path in files:
            try:
                entry = json.loads(path.read_text())
                total_bytes += path.stat().st_size
            except (OSError, json.JSONDecodeError):
                corrupt += 1
                continue
            kinds[entry.get("kind", "?")] = kinds.get(entry.get("kind", "?"), 0) + 1
            schema = str(entry.get("schema", "?"))
            schemas[schema] = schemas.get(schema, 0) + 1
        return {
            "root": str(self.root),
            "entries": len(files) - corrupt,
            "corrupt": corrupt,
            "tmp_files": len(self._tmp_files()),
            "bytes": total_bytes,
            "kinds": kinds,
            "schemas": schemas,
            "current_schema": GOLDENS_SCHEMA_REV,
        }

    def __len__(self) -> int:
        return len(self._files())

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()
