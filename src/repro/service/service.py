"""Async simulation-as-a-service front end over the sweep executor.

A :class:`SweepService` accepts batches of sweep-point specs, serves every
point it has already computed straight from the content-addressed result
cache, coalesces duplicate in-flight requests onto one computation, and
shards the real misses across worker pools:

* **sharding** — each cacheable point is assigned to one of
  ``config.shards`` shards by its content address, so one hot key always
  lands on the same queue (and therefore coalesces) while distinct keys
  spread across pools.  Every shard owns a
  :class:`~repro.experiments.parallel.ParallelSweepExecutor` and drains
  its queue in batches through :meth:`map_robust`, inheriting the
  per-point timeout / retry / crashed-worker isolation semantics — a
  hung or crashed point surfaces as a typed
  :class:`~repro.experiments.parallel.PointFailure` outcome and is
  **never cached**;
* **backpressure** — each shard queue is bounded by
  ``config.max_pending``.  ``overload="wait"`` makes ``submit`` await
  queue space (backpressure propagates to the submitter);
  ``overload="reject"`` raises :class:`ServiceOverloadedError` instead.
  Points are never silently dropped;
* **streaming** — a :class:`Job` yields :class:`PointOutcome` rows as
  they resolve (:meth:`Job.stream`), so a caller can render partial
  results while the long tail computes; :meth:`Job.results` returns
  values in submission order;
* **coalescing** — an in-flight registry maps each key to the future of
  its single computation; duplicate submissions (within one job or
  across concurrent jobs) attach to that future and are counted as
  ``coalesced``, not recomputed;
* **cancellation** — :meth:`Job.cancel` cancels only futures this job
  exclusively owns *and* that have not been dispatched to a pool;
  dispatched points run to completion and populate the cache normally,
  so cancelling a job can never leave a poisoned in-flight entry or a
  half-written cache row.

The service is in-process (asyncio); the worker pools are real OS
processes.  Everything here is deterministic *per point* — the service
only changes where and when a point computes, never what it computes.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, AsyncIterator, Dict, List, Optional, Sequence

from repro.experiments.parallel import (
    ParallelSweepExecutor,
    PointFailure,
    SteadyPointSpec,
    run_steady_point,
    run_transient_point_spec,
)
from repro.service.cache import CacheStats, InMemoryResultCache
from repro.service.keys import is_cacheable, point_key

__all__ = [
    "ServiceConfig",
    "ServiceOverloadedError",
    "PointOutcome",
    "Job",
    "SweepService",
    "run_point",
]


class ServiceOverloadedError(RuntimeError):
    """A shard queue is full and the submit policy is ``reject``."""


def run_point(spec: Any):
    """Dispatch one point spec to its runner (module-level: pool-picklable)."""
    if isinstance(spec, SteadyPointSpec):
        return run_steady_point(spec)
    return run_transient_point_spec(spec)


@dataclass(frozen=True)
class ServiceConfig:
    """Sizing and policy knobs of one :class:`SweepService`."""

    #: Worker processes per shard (``None`` -> ``os.cpu_count()``;
    #: ``1`` computes serially in-process, the test-friendly default).
    workers: Optional[int] = 1
    #: Number of independent shard queues/pools.
    shards: int = 1
    #: Bound of each shard's pending queue (backpressure threshold).
    max_pending: int = 1024
    #: Maximum points drained into one ``map_robust`` call.
    batch_size: int = 16
    #: Per-point timeout (seconds) forwarded to ``map_robust``.
    point_timeout: Optional[float] = None
    #: Extra attempts per failing point forwarded to ``map_robust``.
    retries: int = 1
    #: ``"wait"`` (queue, backpressure to submitter) or ``"reject"``
    #: (raise :class:`ServiceOverloadedError`).  Never "drop".
    overload: str = "wait"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.overload not in ("wait", "reject"):
            raise ValueError('overload must be "wait" or "reject"')


@dataclass(frozen=True)
class PointOutcome:
    """One resolved point: the value plus where it came from.

    ``value`` is the simulation result, or a
    :class:`~repro.experiments.parallel.PointFailure` when the point
    could not be computed.  ``source`` is ``"cache"`` (served without
    computing), ``"coalesced"`` (attached to another request's
    computation) or ``"computed"``.
    """

    index: int
    spec: Any
    key: Optional[str]
    value: Any
    source: str

    @property
    def failed(self) -> bool:
        return isinstance(self.value, PointFailure)


class _Pending:
    """One enqueued computation (shared by every coalesced requester)."""

    __slots__ = ("key", "spec", "future", "dispatched", "refs")

    def __init__(self, key: Optional[str], spec: Any, future: "asyncio.Future"):
        self.key = key
        self.spec = spec
        self.future = future
        self.dispatched = False
        self.refs = 1


class _Slot:
    """One submitted point of one job."""

    __slots__ = ("index", "spec", "key", "pending", "source", "resolved_value")

    def __init__(self, index: int, spec: Any, key: Optional[str], pending, source: str):
        self.index = index
        self.spec = spec
        self.key = key
        self.pending = pending  # _Pending for live points, None for resolved ones
        self.source = source
        self.resolved_value = None  # set when pending is None (hit / cancelled)


class Job:
    """Handle on one submitted batch of points."""

    def __init__(self, service: "SweepService", slots: List[_Slot]):
        self._service = service
        self._slots = slots
        self._cancelled = False

    def __len__(self) -> int:
        return len(self._slots)

    async def _outcome(self, slot: _Slot) -> PointOutcome:
        if slot.pending is None:
            value = slot.resolved_value
        else:
            try:
                value = await asyncio.shield(slot.pending.future)
            except asyncio.CancelledError:
                value = PointFailure(
                    spec=slot.spec, error="cancelled before dispatch", kind="cancelled"
                )
        return PointOutcome(
            index=slot.index,
            spec=slot.spec,
            key=slot.key,
            value=value,
            source=slot.source,
        )

    async def results(self) -> List[Any]:
        """All point values, in submission order (failures included)."""
        outcomes = [await self._outcome(slot) for slot in self._slots]
        return [outcome.value for outcome in outcomes]

    async def stream(self) -> AsyncIterator[PointOutcome]:
        """Yield each point's outcome as soon as it resolves.

        Completion order — cache hits first, then computed points as
        their batches finish.  Use ``outcome.index`` to reassemble
        submission order.
        """
        tasks = {
            asyncio.ensure_future(self._outcome(slot)): slot for slot in self._slots
        }
        try:
            while tasks:
                done, _ = await asyncio.wait(
                    tasks, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    del tasks[task]
                    yield task.result()
        finally:
            for task in tasks:
                task.cancel()

    def cancel(self) -> int:
        """Cancel this job's not-yet-dispatched exclusive points.

        Returns the number of points actually cancelled.  A point that
        other requesters coalesced onto, or that a shard already handed
        to its pool, keeps computing (and caches) — cancellation never
        invalidates another job's work or the cache's consistency.
        """
        if self._cancelled:
            return 0
        self._cancelled = True
        cancelled = 0
        for slot in self._slots:
            pending = slot.pending
            if pending is None or pending.future.done() or pending.dispatched:
                continue
            pending.refs -= 1
            slot.pending = None
            slot.resolved_value = PointFailure(
                spec=slot.spec, error="cancelled by caller", kind="cancelled"
            )
            slot.source = "cancelled"
            if pending.refs <= 0:
                pending.future.cancel()
                if pending.key is not None:
                    self._service._inflight.pop(pending.key, None)
                cancelled += 1
        return cancelled


class SweepService:
    """Sharded, cache-fronted sweep computation service (asyncio)."""

    def __init__(
        self,
        cache=None,
        config: Optional[ServiceConfig] = None,
        point_runner=run_point,
    ):
        self.cache = cache if cache is not None else InMemoryResultCache()
        self.config = config or ServiceConfig()
        self._point_runner = point_runner
        self.stats = CacheStats()
        #: Wall-clock seconds spent inside pool computations (telemetry).
        self.compute_seconds = 0.0
        self.computed_points = 0
        self.failed_points = 0
        self.rejected_points = 0
        self._inflight: Dict[str, _Pending] = {}
        self._queues: List[asyncio.Queue] = []
        self._executors: List[ParallelSweepExecutor] = []
        self._loops: List[asyncio.Task] = []
        self._round_robin = 0
        self._started = False

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "SweepService":
        if self._started:
            return self
        for _ in range(self.config.shards):
            self._queues.append(asyncio.Queue(maxsize=self.config.max_pending))
            self._executors.append(ParallelSweepExecutor(workers=self.config.workers))
        self._loops = [
            asyncio.ensure_future(self._shard_loop(i))
            for i in range(self.config.shards)
        ]
        self._started = True
        return self

    async def close(self) -> None:
        """Stop the shard loops, close the pools, fail unresolved points."""
        for task in self._loops:
            task.cancel()
        for task in self._loops:
            try:
                await task
            except asyncio.CancelledError:
                pass
        for queue in self._queues:
            while not queue.empty():
                pending = queue.get_nowait()
                if not pending.future.done():
                    pending.future.cancel()
                if pending.key is not None:
                    self._inflight.pop(pending.key, None)
        for executor in self._executors:
            await asyncio.to_thread(executor.close)
        self._loops, self._queues, self._executors = [], [], []
        self._started = False

    async def __aenter__(self) -> "SweepService":
        return await self.start()

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.close()

    # -- submission ---------------------------------------------------------
    def _shard_for(self, key: Optional[str]) -> int:
        if key is None:
            self._round_robin += 1
            return self._round_robin % self.config.shards
        return int(key[:8], 16) % self.config.shards

    async def submit(self, specs: Sequence[Any]) -> Job:
        """Submit a batch of point specs; returns a :class:`Job` handle.

        Raises :class:`ServiceOverloadedError` (before any side effects
        for the rejected point; earlier points stay submitted) when a
        shard queue is full under ``overload="reject"``.
        """
        if not self._started:
            raise RuntimeError("service not started (use 'async with SweepService()')")
        loop = asyncio.get_running_loop()
        slots: List[_Slot] = []
        for index, spec in enumerate(specs):
            key = point_key(spec) if is_cacheable(spec) else None
            if key is not None:
                cached = self.cache.lookup(key)
                if cached is not None:
                    self.stats.hits += 1
                    slot = _Slot(index, spec, key, None, "cache")
                    slot.resolved_value = cached
                    slots.append(slot)
                    continue
                inflight = self._inflight.get(key)
                if inflight is not None and not inflight.future.done():
                    inflight.refs += 1
                    self.stats.coalesced += 1
                    slots.append(_Slot(index, spec, key, inflight, "coalesced"))
                    continue
                self.stats.misses += 1
            pending = _Pending(key, spec, loop.create_future())
            await self._enqueue(pending)
            if key is not None:
                self._inflight[key] = pending
            slots.append(_Slot(index, spec, key, pending, "computed"))
        return Job(self, slots)

    async def _enqueue(self, pending: _Pending) -> None:
        queue = self._queues[self._shard_for(pending.key)]
        if self.config.overload == "reject":
            try:
                queue.put_nowait(pending)
            except asyncio.QueueFull:
                self.rejected_points += 1
                raise ServiceOverloadedError(
                    f"shard queue full ({self.config.max_pending} pending); "
                    "retry later or submit with overload='wait'"
                ) from None
        else:
            await queue.put(pending)

    # -- shard loops --------------------------------------------------------
    async def _shard_loop(self, shard: int) -> None:
        queue = self._queues[shard]
        executor = self._executors[shard]
        while True:
            batch = [await queue.get()]
            while len(batch) < self.config.batch_size:
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            live = [p for p in batch if not p.future.done()]
            for pending in live:
                pending.dispatched = True
            if not live:
                continue
            specs = [p.spec for p in live]
            start = time.perf_counter()
            try:
                outcomes = await asyncio.to_thread(
                    executor.map_robust,
                    self._point_runner,
                    specs,
                    timeout=self.config.point_timeout,
                    retries=self.config.retries,
                )
            except asyncio.CancelledError:
                for pending in live:
                    if not pending.future.done():
                        pending.future.cancel()
                    if pending.key is not None:
                        self._inflight.pop(pending.key, None)
                raise
            except BaseException as exc:  # pool machinery itself failed
                for pending in live:
                    self._resolve(
                        pending,
                        PointFailure(spec=pending.spec, error=repr(exc), kind="error"),
                    )
                continue
            finally:
                self.compute_seconds += time.perf_counter() - start
            for pending, outcome in zip(live, outcomes):
                self._resolve(pending, outcome)

    def _resolve(self, pending: _Pending, outcome: Any) -> None:
        if isinstance(outcome, PointFailure):
            self.failed_points += 1
        else:
            self.computed_points += 1
            if pending.key is not None:
                self.cache.store(pending.key, outcome)
                self.stats.stores += 1
        if pending.key is not None:
            self._inflight.pop(pending.key, None)
        if not pending.future.done():
            pending.future.set_result(outcome)

    # -- telemetry ----------------------------------------------------------
    def telemetry(self) -> Dict[str, object]:
        """Live counters of this service instance (JSON-serializable)."""
        return {
            "schema": "sweep-service-telemetry-v1",
            "cache": self.stats.as_dict(),
            "computed_points": self.computed_points,
            "failed_points": self.failed_points,
            "rejected_points": self.rejected_points,
            "compute_seconds": round(self.compute_seconds, 6),
            "inflight": len(self._inflight),
            "queued": sum(q.qsize() for q in self._queues),
            "shards": self.config.shards,
            "workers_per_shard": self.config.workers,
        }
