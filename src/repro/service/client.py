"""Client surfaces of the sweep service.

Two ways in, for two kinds of caller:

:class:`CachingSweepExecutor`
    A drop-in :class:`~repro.experiments.parallel.ParallelSweepExecutor`
    that fronts every ``map`` / ``map_robust`` call with the
    content-addressed result cache.  This is how the figure harnesses
    route through the service: every experiment entry point accepts
    ``executor=``, so

    >>> from repro.service import CachingSweepExecutor, DirectoryResultCache
    >>> from repro.experiments.figure5 import run_figure5
    >>> exe = CachingSweepExecutor(cache=DirectoryResultCache(".sweep-cache"))
    >>> rows = run_figure5("UN", workers=4, executor=exe)   # cold: computes
    >>> rows = run_figure5("UN", workers=4, executor=exe)   # warm: all hits

    gives identical rows both times — bit-identical, because a hit is the
    byte round-trip of the very result the cold run produced, verified by
    fingerprint on the way out.

:class:`ServiceClient`
    A synchronous wrapper around the async :class:`~repro.service.service.SweepService`
    for callers that want the full front end (sharding, coalescing,
    backpressure) without managing an event loop.

Only the recognized point runners are cached (the module-level steady /
transient runners the sweeps use); an unknown function, or a spec with no
sound content address (e.g. a ``pattern_factory`` point), delegates to the
plain executor untouched — the caching layer can slow nothing down and
never changes a value.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, List, Optional, Sequence, Union

from repro.experiments.parallel import (
    ParallelSweepExecutor,
    PointFailure,
    run_steady_point,
    run_transient_point_spec,
)
from repro.service.cache import CacheStats, InMemoryResultCache
from repro.service.keys import is_cacheable, point_key
from repro.service.service import ServiceConfig, SweepService, run_point

__all__ = ["CachingSweepExecutor", "ServiceClient"]

#: Point runners whose (func, spec) pairs have a sound content address.
_CACHEABLE_RUNNERS = (run_steady_point, run_transient_point_spec, run_point)


class CachingSweepExecutor(ParallelSweepExecutor):
    """A sweep executor that serves repeated points from the result cache.

    Semantics relative to the parent class:

    * results are **bit-identical** to an uncached run — a hit is the
      fingerprint-verified round-trip of a previously computed result;
    * duplicate specs *within one call* coalesce: the point computes
      once and every duplicate is served from the fresh store;
    * :meth:`map_robust` failures (:class:`PointFailure`) are returned
      in place, exactly like the parent, and are **never cached** — the
      next request retries the point;
    * :meth:`map` with an unrecognized function, or specs without a
      content address, fall through to the parent unchanged.
    """

    def __init__(
        self,
        cache=None,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        super().__init__(workers=workers, start_method=start_method)
        self.cache = cache if cache is not None else InMemoryResultCache()
        self.stats = CacheStats()

    # -- caching map variants ----------------------------------------------
    def map(self, func: Callable, items: Sequence[Any]) -> List[Any]:
        if func not in _CACHEABLE_RUNNERS:
            return super().map(func, items)
        return self._map_cached(
            items, lambda missing: super(CachingSweepExecutor, self).map(func, missing)
        )

    def map_robust(
        self,
        func: Callable,
        items: Sequence[Any],
        *,
        timeout: Optional[float] = None,
        retries: int = 1,
    ) -> List[Union[Any, PointFailure]]:
        if func not in _CACHEABLE_RUNNERS:
            return super().map_robust(func, items, timeout=timeout, retries=retries)
        return self._map_cached(
            items,
            lambda missing: super(CachingSweepExecutor, self).map_robust(
                func, missing, timeout=timeout, retries=retries
            ),
        )

    def _map_cached(self, items: Sequence[Any], compute) -> List[Any]:
        items = list(items)
        results: List[Any] = [None] * len(items)
        keys: List[Optional[str]] = [None] * len(items)
        missing: List[int] = []
        computing: dict = {}  # key -> index of the spec that computes it
        for i, spec in enumerate(items):
            if not is_cacheable(spec):
                missing.append(i)
                continue
            key = keys[i] = point_key(spec)
            cached = self.cache.lookup(key)
            if cached is not None:
                self.stats.hits += 1
                results[i] = cached
            elif key in computing:
                self.stats.coalesced += 1  # resolved after the compute pass
            else:
                self.stats.misses += 1
                computing[key] = i
                missing.append(i)
        if missing:
            computed = compute([items[i] for i in missing])
            for i, outcome in zip(missing, computed):
                results[i] = outcome
                key = keys[i]
                if key is not None and not isinstance(outcome, PointFailure):
                    self.cache.store(key, outcome)
                    self.stats.stores += 1
        # Serve intra-call duplicates from the freshly stored entries.
        for i, spec in enumerate(items):
            if results[i] is None and keys[i] is not None:
                results[i] = self.cache.lookup(keys[i])
                if results[i] is None:  # its computation failed: mirror it
                    results[i] = results[computing[keys[i]]]
        return results


class ServiceClient:
    """Synchronous facade over :class:`~repro.service.service.SweepService`.

    Each :meth:`run` call spins up a service (with the client's cache and
    config), submits the whole batch, and returns the values in
    submission order.  The cache outlives the call, so successive runs
    against the same client are warm.
    """

    def __init__(self, cache=None, config: Optional[ServiceConfig] = None):
        self.cache = cache if cache is not None else InMemoryResultCache()
        self.config = config or ServiceConfig()
        self.last_telemetry: Optional[dict] = None

    def run(self, specs: Sequence[Any]) -> List[Any]:
        return asyncio.run(self._run(specs))

    async def _run(self, specs: Sequence[Any]) -> List[Any]:
        async with SweepService(cache=self.cache, config=self.config) as service:
            job = await service.submit(specs)
            values = await job.results()
            self.last_telemetry = service.telemetry()
            return values
