"""Sweep service: content-addressed result caching over sharded worker pools.

The production-scale serving layer above
:class:`~repro.experiments.parallel.ParallelSweepExecutor` (ROADMAP:
"millions of users").  Determinism makes result caching *sound* — identical
(configuration, seed) provably yield identical results, bit-exactly across
engine backends — so repeated figure requests are free:

* :mod:`repro.service.keys` — the cache-key contract: the same sha256
  ``config_hash`` the trace manifests carry, plus the point coordinates,
  the seed and the goldens-schema revision;
* :mod:`repro.service.cache` — in-memory and on-disk content-addressed
  stores with fingerprint-verified lookups;
* :mod:`repro.service.service` — the async front end: sharded job queues,
  request coalescing, bounded-queue backpressure, streaming partial
  results, typed failures that never poison the cache;
* :mod:`repro.service.client` — the figure-facing surfaces: the
  ``executor=``-compatible :class:`CachingSweepExecutor` and a
  synchronous :class:`ServiceClient`.

CLI: ``python -m repro.tools.sweep_service`` (see EXPERIMENTS.md).
"""

from repro.service.cache import (
    CacheStats,
    DirectoryResultCache,
    InMemoryResultCache,
)
from repro.service.client import CachingSweepExecutor, ServiceClient
from repro.service.keys import (
    canonical_fault_model,
    is_cacheable,
    point_key,
    point_payload,
    result_fingerprint,
)
from repro.service.service import (
    Job,
    PointOutcome,
    ServiceConfig,
    ServiceOverloadedError,
    SweepService,
    run_point,
)

__all__ = [
    "CacheStats",
    "DirectoryResultCache",
    "InMemoryResultCache",
    "CachingSweepExecutor",
    "ServiceClient",
    "canonical_fault_model",
    "is_cacheable",
    "point_key",
    "point_payload",
    "result_fingerprint",
    "Job",
    "PointOutcome",
    "ServiceConfig",
    "ServiceOverloadedError",
    "SweepService",
    "run_point",
]
