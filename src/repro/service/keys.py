"""Content-addressed cache keys for sweep points.

Determinism makes result caching *sound*: two runs of the same
``(configuration, seed)`` provably produce identical results — a property
the repo enforces bit-exactly across engine backends (golden suite,
cross-backend property grid) — so a cached row can be served in place of a
recomputation without changing a single float.  The key built here is the
contract that carries that soundness:

* the **configuration** part is the same sha256 ``config_hash`` the
  observability layer stamps into trace manifests
  (:func:`repro.obs.telemetry.config_hash` over
  :meth:`~repro.config.parameters.SimulationParameters.canonical_dict`),
  so cache entries and traces agree on configuration identity.  The
  ``backend`` field is excluded there: backends are bit-identical by
  contract, so an ``object``-computed row legitimately serves an ``soa``
  request (pinned by ``tests/service/test_cache_soundness.py``);
* the **point** part covers everything else that selects the computation:
  routing, pattern, offered load, cycle counts, seed, and the canonical
  form of the fault model;
* the **schema** part is :data:`~repro.simulation.results.GOLDENS_SCHEMA_REV`:
  when the result-row schema changes (and the goldens are re-recorded),
  every previously cached row silently becomes a miss instead of being
  deserialized into the wrong shape.

Points that carry a ``pattern_factory`` are *not cacheable*: an arbitrary
callable has no sound canonical serialization, so those points always
compute (see :func:`is_cacheable`).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from repro.experiments.parallel import SteadyPointSpec, TransientPointSpec
from repro.obs.telemetry import config_hash
from repro.simulation.results import GOLDENS_SCHEMA_REV
from repro.topology.faults import FaultModel

__all__ = [
    "canonical_fault_model",
    "is_cacheable",
    "point_key",
    "point_payload",
    "result_fingerprint",
]


def canonical_fault_model(model: Optional[FaultModel]) -> Optional[Dict[str, Any]]:
    """JSON-serializable canonical form of a fault model.

    A trivial model (injects nothing) canonicalizes to ``None`` — the
    simulator spawns the fault RNG stream only for non-trivial models, so
    ``FaultModel()`` and "no fault model" are provably the same
    computation.  Link collections are sorted: the runtime canonicalizes
    them into sets/dicts, so listing order is not semantic.
    """
    if model is None or model.is_trivial:
        return None
    return {
        "link_failure_percent": model.link_failure_percent,
        "failed_links": sorted([r, p] for r, p in model.failed_links),
        "degraded_links": sorted(
            [
                [link[0], link[1]],
                {
                    "bandwidth_factor": deg.bandwidth_factor,
                    "latency_factor": deg.latency_factor,
                    "contention_bias": deg.contention_bias,
                },
            ]
            for link, deg in model.degraded_links
        ),
        "schedule": (
            [[e.cycle, [e.link[0], e.link[1]], e.kind] for e in model.schedule.events]
            if model.schedule is not None
            else None
        ),
        "allow_partition": model.allow_partition,
    }


def is_cacheable(spec: Any) -> bool:
    """Whether ``spec`` has a sound content address.

    True for :class:`SteadyPointSpec` (without a ``pattern_factory`` —
    callables have no canonical serialization) and for
    :class:`TransientPointSpec`.  Anything else computes uncached.
    """
    if isinstance(spec, SteadyPointSpec):
        return spec.pattern_factory is None and isinstance(spec.pattern, str)
    return isinstance(spec, TransientPointSpec)


def point_payload(spec: Any) -> Dict[str, Any]:
    """The canonical key payload of a cacheable point spec."""
    if isinstance(spec, SteadyPointSpec):
        if not is_cacheable(spec):
            raise ValueError(
                "points with a pattern_factory are not cacheable "
                "(a callable has no canonical serialization)"
            )
        return {
            "kind": "steady",
            "schema": GOLDENS_SCHEMA_REV,
            "config_hash": config_hash(spec.params),
            "routing": spec.routing,
            "pattern": spec.pattern,
            "offered_load": spec.offered_load,
            "warmup_cycles": spec.warmup_cycles,
            "measure_cycles": spec.measure_cycles,
            "seed": spec.seed,
            "fault_model": canonical_fault_model(spec.fault_model),
        }
    if isinstance(spec, TransientPointSpec):
        return {
            "kind": "transient",
            "schema": GOLDENS_SCHEMA_REV,
            "config_hash": config_hash(spec.params),
            "routing": spec.routing,
            "before": spec.before,
            "after": spec.after,
            "offered_load": spec.offered_load,
            "warmup_cycles": spec.warmup_cycles,
            "observe_before": spec.observe_before,
            "observe_after": spec.observe_after,
            "bin_size": spec.bin_size,
            "seed": spec.seed,
        }
    raise TypeError(f"no cache key for {type(spec).__name__}")


def point_key(spec: Any) -> str:
    """Content address of one sweep point (64 hex chars, sha256)."""
    canonical = json.dumps(point_payload(spec), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def result_fingerprint(result: Any) -> str:
    """Golden-style digest: sha256 over the canonical JSON of a result.

    The same "last float bit" contract the goldens and the cross-backend
    property grid pin — two results fingerprint equal iff every field is
    bit-identical.  Stored with each cache entry and re-checked on lookup,
    so a corrupted or mis-deserialized entry surfaces as a miss, never as
    a silently wrong row.
    """
    payload = json.dumps(result.as_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()
