"""repro: contention-based nonminimal adaptive routing in high-radix networks.

A cycle-level network simulator and routing library reproducing
*"Contention-based Nonminimal Adaptive Routing in High-radix Networks"*
(Fuentes et al., IPDPS 2015).  The package provides:

* :mod:`repro.config` — the Table I parameter sets and scaled-down presets;
* :mod:`repro.topology` — the canonical Dragonfly plus a 2-D flattened
  butterfly, a full mesh, and a k-ary n-cube torus with dateline virtual
  channels, behind a name-keyed registry;
* :mod:`repro.network` — the input/output-buffered VCT router model;
* :mod:`repro.routing` — MIN, VAL, UGAL, PB and OLM baselines plus the
  paper's contention-counter mechanisms (Base, Hybrid, ECtN);
* :mod:`repro.traffic` — uniform, adversarial (region-based), mixed and
  transient traffic;
* :mod:`repro.simulation` — the cycle engine and the steady-state/transient
  measurement protocols;
* :mod:`repro.metrics` — latency/throughput/misrouting statistics;
* :mod:`repro.experiments` — harnesses regenerating every figure of the
  paper's evaluation, plus the cross-topology sweep.

Quick start::

    from repro import Simulator, SimulationParameters

    params = SimulationParameters.small()
    sim = Simulator(params, routing="Base", pattern="ADV+1", offered_load=0.2)
    result = sim.run_steady_state(warmup_cycles=1000, measure_cycles=2000)
    print(result.mean_latency, result.accepted_load)

or, on a different topology::

    from repro import SimulationParameters, Simulator, topology_preset

    params = SimulationParameters.tiny(topology_preset("flattened_butterfly"))
    sim = Simulator(params, routing="UGAL", pattern="ADV+1", offered_load=0.2)
"""

from repro.config import (
    PAPER_PARAMETERS,
    SMALL_PARAMETERS,
    TINY_PARAMETERS,
    DragonflyConfig,
    FlattenedButterflyConfig,
    FullMeshConfig,
    SimulationParameters,
    TopologyConfig,
    TorusConfig,
)
from repro.routing import UnsupportedTopologyError, available_routings, create_routing
from repro.simulation import Simulator, SteadyStateResult, TransientResult
from repro.topology import (
    DegradedLink,
    DragonflyTopology,
    FaultModel,
    FaultSchedule,
    FlattenedButterflyTopology,
    FullMeshTopology,
    NetworkPartitionError,
    Topology,
    TorusTopology,
    available_topologies,
    create_topology,
    topology_preset,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "TopologyConfig",
    "DragonflyConfig",
    "FlattenedButterflyConfig",
    "FullMeshConfig",
    "TorusConfig",
    "SimulationParameters",
    "PAPER_PARAMETERS",
    "SMALL_PARAMETERS",
    "TINY_PARAMETERS",
    "Topology",
    "DragonflyTopology",
    "FlattenedButterflyTopology",
    "FullMeshTopology",
    "TorusTopology",
    "available_topologies",
    "create_topology",
    "topology_preset",
    "Simulator",
    "SteadyStateResult",
    "TransientResult",
    "available_routings",
    "create_routing",
    "UnsupportedTopologyError",
    "FaultModel",
    "FaultSchedule",
    "DegradedLink",
    "NetworkPartitionError",
]
