"""Developer tools: profiling, benchmark comparison, golden re-recording.

These are command-line entry points (``python -m repro.tools.<name>``), not
library code used by the simulator itself:

* :mod:`repro.tools.profile_hotpath` — cProfile harness over representative
  workloads, so perf PRs start from data;
* :mod:`repro.tools.bench_compare` — compare two ``BENCH_*.json``
  perf-trajectory artifacts with a regression tolerance (used by CI);
* :mod:`repro.tools.record_goldens` — re-record the fixed-seed golden
  results consumed by ``tests/simulation/test_golden_determinism.py``.
"""
