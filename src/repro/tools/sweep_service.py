"""CLI for the sweep service: cache-fronted figure sweeps + cache admin.

``run`` executes one experiment sweep through a
:class:`~repro.service.client.CachingSweepExecutor` backed by an on-disk
:class:`~repro.service.cache.DirectoryResultCache`, prints the report
table, and emits a telemetry document (hit/miss counters, wall seconds,
and optionally the committed BENCH baseline for context — the perf
artifact as *live* service telemetry instead of a CI-only file).  A second
``run`` against the same cache directory is a warm replay: every repeated
point is served from the content-addressed store, bit-identical to the
cold computation.

The assertion flags turn the CLI into its own smoke harness (this is what
the CI service lane runs)::

    # cold
    python -m repro.tools.sweep_service run --scale tiny --pattern UN \\
        --routings MIN VAL --cache-dir .sweep-cache \\
        --rows-out rows-cold.json --telemetry-out tele-cold.json

    # warm: must be >=90% hits, >=10x faster, rows byte-identical
    python -m repro.tools.sweep_service run --scale tiny --pattern UN \\
        --routings MIN VAL --cache-dir .sweep-cache \\
        --rows-out rows-warm.json --telemetry-out tele-warm.json \\
        --expect-rows rows-cold.json --assert-min-hit-rate 0.9 \\
        --cold-telemetry tele-cold.json --assert-min-speedup 10

``stats`` summarizes a cache directory; ``prune`` drops entries recorded
under a stale goldens-schema revision; ``clear`` empties the cache.

Exit codes: 0 OK, 1 usage/environment error, 2 an ``--assert-*`` or
``--expect-rows`` check failed.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.config.parameters import default_backend
from repro.service.cache import DirectoryResultCache
from repro.service.client import CachingSweepExecutor

__all__ = ["main", "run_experiment"]

TELEMETRY_SCHEMA = "sweep-service-run-v1"

#: Experiments the CLI can serve.  Each entry maps to (runner, reporter).
EXPERIMENTS = ("figure5", "cross_topology", "fault_sweep")


def run_experiment(
    experiment: str,
    executor: CachingSweepExecutor,
    *,
    scale: str = "tiny",
    pattern: str = "UN",
    routings: Optional[List[str]] = None,
    loads: Optional[List[float]] = None,
    workers: Optional[int] = None,
):
    """Run one named experiment through ``executor``; returns (rows, report)."""
    if experiment == "figure5":
        from repro.experiments.figure5 import figure5_report, run_figure5
        from repro.experiments.scales import get_scale

        rows = run_figure5(
            pattern=pattern,
            scale=get_scale(scale),
            routings=routings,
            loads=loads,
            workers=workers,
            executor=executor,
        )
        return rows, figure5_report(rows, pattern)
    if experiment == "cross_topology":
        from repro.experiments.cross_topology import (
            cross_topology_report,
            run_cross_topology,
        )

        rows = run_cross_topology(
            routings=routings or ("MIN", "VAL", "UGAL", "Base", "Hybrid"),
            pattern=pattern,
            scale=scale,
            loads=loads,
            workers=workers,
            executor=executor,
        )
        return rows, cross_topology_report(rows, pattern)
    if experiment == "fault_sweep":
        from repro.experiments.fault_sweep import fault_sweep_report, run_fault_sweep
        from repro.experiments.scales import get_scale

        rows = run_fault_sweep(
            scale=get_scale(scale),
            routings=routings or ("MIN", "VAL", "Base", "Hybrid"),
            pattern=pattern,
            workers=workers,
            executor=executor,
        )
        return rows, fault_sweep_report(rows)
    raise ValueError(f"unknown experiment {experiment!r}; pick one of {EXPERIMENTS}")


def _bench_baseline_excerpt(path: Path) -> dict:
    """Committed BENCH artifact condensed for the telemetry document."""
    doc = json.loads(path.read_text())
    return {
        "path": str(path),
        "schema": doc.get("schema"),
        "tests": {
            name: {
                "seconds": entry.get("seconds"),
                "cycles_per_second": entry.get("cycles_per_second"),
                "backend": entry.get("backend"),
            }
            for name, entry in doc.get("tests", {}).items()
        },
    }


def _cmd_run(args: argparse.Namespace) -> int:
    cache = DirectoryResultCache(args.cache_dir)
    executor = CachingSweepExecutor(cache=cache, workers=args.workers)
    start = time.perf_counter()
    try:
        rows, report = run_experiment(
            args.experiment,
            executor,
            scale=args.scale,
            pattern=args.pattern,
            routings=args.routings,
            loads=args.loads,
            workers=args.workers,
        )
    finally:
        executor.close()
    wall_seconds = time.perf_counter() - start

    stats = executor.stats
    telemetry = {
        "schema": TELEMETRY_SCHEMA,
        "experiment": args.experiment,
        "scale": args.scale,
        "pattern": args.pattern,
        "routings": args.routings,
        "loads": args.loads,
        "backend": default_backend(),
        "rows": len(rows),
        "points": stats.lookups,
        "wall_seconds": round(wall_seconds, 6),
        "cache": stats.as_dict(),
        "cache_dir": str(cache.root),
        "cache_entries": len(cache),
    }
    if args.bench_baseline is not None:
        telemetry["bench_baseline"] = _bench_baseline_excerpt(args.bench_baseline)

    if not args.quiet:
        print(report)
        print()
        print(
            f"[sweep-service] {stats.hits} hits / {stats.misses} misses "
            f"({100.0 * stats.hit_rate:.1f}% hit rate), "
            f"{stats.coalesced} coalesced, {wall_seconds:.2f}s wall"
        )
    if args.rows_out is not None:
        # default=repr keeps rows with non-JSON values (e.g. a fault sweep's
        # PointFailure records) serializable; such rows still compare stably.
        args.rows_out.parent.mkdir(parents=True, exist_ok=True)
        args.rows_out.write_text(
            json.dumps(rows, indent=1, sort_keys=True, default=repr) + "\n"
        )
    if args.telemetry_out is not None:
        args.telemetry_out.parent.mkdir(parents=True, exist_ok=True)
        args.telemetry_out.write_text(
            json.dumps(telemetry, indent=1, sort_keys=True) + "\n"
        )

    failures: List[str] = []
    if args.expect_rows is not None:
        expected = json.loads(args.expect_rows.read_text())
        actual = json.loads(json.dumps(rows, sort_keys=True, default=repr))
        if actual != expected:
            failures.append(
                f"rows differ from {args.expect_rows} "
                "(cached replay must be bit-identical to the recorded run)"
            )
    if args.assert_min_hit_rate is not None and stats.hit_rate < args.assert_min_hit_rate:
        failures.append(
            f"hit rate {stats.hit_rate:.3f} below required "
            f"{args.assert_min_hit_rate:.3f}"
        )
    if args.assert_min_speedup is not None:
        if args.cold_telemetry is None:
            print("--assert-min-speedup requires --cold-telemetry", file=sys.stderr)
            return 1
        cold = json.loads(args.cold_telemetry.read_text())
        cold_seconds = float(cold["wall_seconds"])
        speedup = cold_seconds / wall_seconds if wall_seconds > 0 else float("inf")
        if not args.quiet:
            print(
                f"[sweep-service] warm replay speedup: {speedup:.1f}x "
                f"(cold {cold_seconds:.2f}s -> warm {wall_seconds:.2f}s)"
            )
        if speedup < args.assert_min_speedup:
            failures.append(
                f"warm speedup {speedup:.1f}x below required "
                f"{args.assert_min_speedup:.1f}x"
            )
    for failure in failures:
        print(f"[sweep-service] FAIL: {failure}", file=sys.stderr)
    return 2 if failures else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    cache = DirectoryResultCache(args.cache_dir)
    print(json.dumps(cache.summary(), indent=1, sort_keys=True))
    return 0


def _cmd_prune(args: argparse.Namespace) -> int:
    cache = DirectoryResultCache(args.cache_dir)
    removed = cache.prune_stale()
    print(f"pruned {removed} stale entries from {cache.root}")
    return 0


def _cmd_clear(args: argparse.Namespace) -> int:
    cache = DirectoryResultCache(args.cache_dir)
    removed = cache.clear()
    print(f"removed {removed} entries from {cache.root}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.sweep_service",
        description="Serve figure sweeps from the content-addressed result cache.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment through the cache")
    run.add_argument("--experiment", choices=EXPERIMENTS, default="figure5")
    run.add_argument("--scale", default="tiny", help="experiment scale name")
    run.add_argument("--pattern", default="UN", help="traffic pattern")
    run.add_argument("--routings", nargs="+", default=None, help="routing subset")
    run.add_argument("--loads", nargs="+", type=float, default=None)
    run.add_argument("--workers", type=int, default=None, help="pool size for misses")
    run.add_argument("--cache-dir", required=True, type=Path)
    run.add_argument("--rows-out", type=Path, default=None, help="write rows JSON")
    run.add_argument("--telemetry-out", type=Path, default=None)
    run.add_argument(
        "--bench-baseline",
        type=Path,
        default=None,
        help="embed this BENCH_*.json perf artifact into the telemetry",
    )
    run.add_argument(
        "--expect-rows",
        type=Path,
        default=None,
        help="fail (exit 2) unless rows equal this previously recorded JSON",
    )
    run.add_argument("--assert-min-hit-rate", type=float, default=None)
    run.add_argument("--assert-min-speedup", type=float, default=None)
    run.add_argument(
        "--cold-telemetry",
        type=Path,
        default=None,
        help="cold run's telemetry JSON (denominator for --assert-min-speedup)",
    )
    run.add_argument("--quiet", action="store_true")
    run.set_defaults(func=_cmd_run)

    stats = sub.add_parser("stats", help="summarize a cache directory")
    stats.add_argument("--cache-dir", required=True, type=Path)
    stats.set_defaults(func=_cmd_stats)

    prune = sub.add_parser("prune", help="drop entries with a stale schema rev")
    prune.add_argument("--cache-dir", required=True, type=Path)
    prune.set_defaults(func=_cmd_prune)

    clear = sub.add_parser("clear", help="remove every cache entry")
    clear.add_argument("--cache-dir", required=True, type=Path)
    clear.set_defaults(func=_cmd_clear)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    sys.exit(main())
