"""Compare two ``BENCH_*.json`` perf-trajectory artifacts.

CI regenerates the benchmark artifacts on every run and compares them
against the baselines committed at the repository root::

    PYTHONPATH=src python -m repro.tools.bench_compare \\
        BENCH_steady.json bench-out/BENCH_steady.json --tolerance 1.5

For every test present in both artifacts a row is printed with the
wall-clock ratio and the **speedup** (baseline seconds / new seconds, i.e.
``> 1`` means the new run is faster).  The check fails (exit 1) when:

* a benchmark present in both files got slower than ``tolerance`` times its
  baseline wall-clock, or
* a test present in the baseline is **missing from the new run** — a silent
  shrink of the benchmark set would otherwise read as "no regressions".
  Partial runs (e.g. the CI smoke lane, which re-runs only a few figures)
  pass ``--subset`` to state that intent explicitly.

Timings recorded on different simulation backends are different experiments:
when the ``backend`` fields of a pair disagree, the row is printed for
information but never counted as a regression, and the speedup is annotated
as cross-backend.

All three artifact schemas are understood — v1 (``timings_s`` only), v2
(per-test ``seconds`` / ``cycles_per_second`` / ``cycles_skipped``) and v3
(v2 plus a per-test ``backend``) — so the check keeps working across
artifact-format upgrades.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict

Metrics = Dict[str, Dict[str, object]]


def load_timings(path: Path) -> Metrics:
    """Per-test metrics from a v1/v2/v3 artifact: {test: {seconds, ...}}."""
    payload = json.loads(path.read_text())
    schema = payload.get("schema", "")
    if schema == "bench-trajectory-v1":
        return {
            test: {"seconds": seconds}
            for test, seconds in payload.get("timings_s", {}).items()
        }
    if schema in ("bench-trajectory-v2", "bench-trajectory-v3"):
        return dict(payload.get("tests", {}))
    raise ValueError(f"{path}: unknown perf-trajectory schema {schema!r}")


def compare(
    baseline: Metrics,
    new: Metrics,
    tolerance: float,
    subset: bool = False,
) -> int:
    """Print a comparison table; return the number of failures."""
    common = sorted(set(baseline) & set(new))
    failures = 0
    if common:
        width = max(len(test) for test in common)
        header = (
            f"{'benchmark':<{width}}  {'base_s':>8}  {'new_s':>8}  "
            f"{'speedup':>7}  {'cyc/s':>12}  backend"
        )
        print(header)
        for test in common:
            base_s = float(baseline[test]["seconds"])
            new_s = float(new[test]["seconds"])
            ratio = new_s / base_s if base_s > 0 else float("inf")
            speedup = base_s / new_s if new_s > 0 else float("inf")
            cps = new[test].get("cycles_per_second")
            cps_text = f"{cps:,.0f}" if cps else "-"
            base_backend = baseline[test].get("backend")
            new_backend = new[test].get("backend")
            backend_text = (
                new_backend or "-"
                if base_backend == new_backend
                else f"{base_backend or '?'}->{new_backend or '?'}"
            )
            flag = ""
            if base_backend != new_backend:
                flag = "  (cross-backend: informational only)"
            elif ratio > tolerance:
                failures += 1
                flag = f"  REGRESSION (> {tolerance:.2f}x)"
            print(
                f"{test:<{width}}  {base_s:8.3f}  {new_s:8.3f}  "
                f"{speedup:6.2f}x  {cps_text:>12}  {backend_text}{flag}"
            )
    only_base = sorted(set(baseline) - set(new))
    only_new = sorted(set(new) - set(baseline))
    if only_base:
        if subset:
            print(f"not re-run (baseline only, --subset): {', '.join(only_base)}")
        else:
            failures += len(only_base)
            print(
                "MISSING from the new run (every baseline test must be "
                f"re-run, or pass --subset): {', '.join(only_base)}"
            )
    if only_new:
        print(f"new benchmarks (no baseline): {', '.join(only_new)}")
    if not common:
        print("no common benchmarks between baseline and new artifact")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed baseline artifact")
    parser.add_argument("new", type=Path, help="freshly generated artifact")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        help="fail when new wall-clock exceeds tolerance * baseline (default 1.5)",
    )
    parser.add_argument(
        "--subset",
        action="store_true",
        help="the new artifact is a deliberate partial run: baseline tests "
        "missing from it are reported but not failures",
    )
    parser.add_argument(
        "--missing-ok",
        action="store_true",
        help="exit 0 when either artifact file is absent (partial benchmark runs)",
    )
    args = parser.parse_args(argv)

    for path in (args.baseline, args.new):
        if not path.exists():
            message = f"artifact {path} not found"
            if args.missing_ok:
                print(f"{message}; skipping comparison")
                return 0
            print(message, file=sys.stderr)
            return 2

    failures = compare(
        load_timings(args.baseline), load_timings(args.new), args.tolerance,
        subset=args.subset,
    )
    if failures:
        print(f"{failures} benchmark comparison failure(s)")
        return 1
    print("benchmark timings within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
