"""Compare two ``BENCH_*.json`` perf-trajectory artifacts.

CI regenerates the benchmark artifacts on every run and compares them
against the baselines committed at the repository root::

    PYTHONPATH=src python -m repro.tools.bench_compare \\
        BENCH_steady.json bench-out/BENCH_steady.json --tolerance 1.5

The check fails (exit 1) when a benchmark present in both files got slower
than ``tolerance`` times its baseline wall-clock.  The tolerance is
deliberately generous — CI machines are noisy and heterogeneous; the check
exists to catch order-of-magnitude hot-path regressions, not percent-level
drift (the committed artifacts themselves form the fine-grained perf
trajectory across PRs).

Both the v1 schema (``timings_s`` only) and the v2 schema (per-test
``seconds`` / ``cycles_per_second`` / ``cycles_skipped``) are understood, so
the check keeps working across artifact-format upgrades.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Optional


def load_timings(path: Path) -> Dict[str, Dict[str, float]]:
    """Per-test metrics from a v1 or v2 artifact: {test: {seconds, ...}}."""
    payload = json.loads(path.read_text())
    schema = payload.get("schema", "")
    if schema == "bench-trajectory-v1":
        return {
            test: {"seconds": seconds}
            for test, seconds in payload.get("timings_s", {}).items()
        }
    if schema == "bench-trajectory-v2":
        return dict(payload.get("tests", {}))
    raise ValueError(f"{path}: unknown perf-trajectory schema {schema!r}")


def compare(
    baseline: Dict[str, Dict[str, float]],
    new: Dict[str, Dict[str, float]],
    tolerance: float,
) -> int:
    """Print a comparison table; return the number of regressions."""
    common = sorted(set(baseline) & set(new))
    if not common:
        print("no common benchmarks between baseline and new artifact; skipping")
        return 0
    regressions = 0
    width = max(len(test) for test in common)
    print(f"{'benchmark':<{width}}  {'base_s':>8}  {'new_s':>8}  {'ratio':>6}  {'cyc/s':>12}")
    for test in common:
        base_s = baseline[test]["seconds"]
        new_s = new[test]["seconds"]
        ratio = new_s / base_s if base_s > 0 else float("inf")
        cps = new[test].get("cycles_per_second")
        cps_text = f"{cps:,.0f}" if cps else "-"
        flag = ""
        if ratio > tolerance:
            regressions += 1
            flag = f"  REGRESSION (> {tolerance:.2f}x)"
        print(f"{test:<{width}}  {base_s:8.3f}  {new_s:8.3f}  {ratio:6.2f}  {cps_text:>12}{flag}")
    only_base = sorted(set(baseline) - set(new))
    only_new = sorted(set(new) - set(baseline))
    if only_base:
        print(f"not re-run (baseline only): {', '.join(only_base)}")
    if only_new:
        print(f"new benchmarks (no baseline): {', '.join(only_new)}")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed baseline artifact")
    parser.add_argument("new", type=Path, help="freshly generated artifact")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        help="fail when new wall-clock exceeds tolerance * baseline (default 1.5)",
    )
    parser.add_argument(
        "--missing-ok",
        action="store_true",
        help="exit 0 when either artifact is absent (partial benchmark runs)",
    )
    args = parser.parse_args(argv)

    for path in (args.baseline, args.new):
        if not path.exists():
            message = f"artifact {path} not found"
            if args.missing_ok:
                print(f"{message}; skipping comparison")
                return 0
            print(message, file=sys.stderr)
            return 2

    regressions = compare(
        load_timings(args.baseline), load_timings(args.new), args.tolerance
    )
    if regressions:
        print(f"{regressions} benchmark(s) regressed beyond {args.tolerance:.2f}x")
        return 1
    print("benchmark timings within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
