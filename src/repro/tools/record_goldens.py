"""Re-record the fixed-seed golden results.

The golden determinism tests (``tests/simulation/test_golden_determinism.py``)
pin a handful of fixed-seed simulation results down to the last float bit.
They must be re-recorded exactly once per *intentional* change of the RNG
consumption contract (e.g. the PR that split the traffic RNG into arrival
and destination streams) and never for a pure engine/performance change —
a performance change that alters these values is a bug.

Usage::

    PYTHONPATH=src python -m repro.tools.record_goldens

which rewrites ``tests/simulation/goldens.json`` in place (use ``--output``
for a different path, ``--check`` to verify without writing).  The test
module loads that file, so recording and verification always agree on the
configuration list below.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

from repro.config.parameters import SimulationParameters
from repro.simulation.results import GOLDENS_SCHEMA_REV
from repro.simulation.simulator import Simulator
from repro.topology.registry import topology_preset

__all__ = [
    "STEADY_CONFIGS",
    "CROSS_TOPOLOGY_CONFIGS",
    "TRANSIENT_CONFIG",
    "compute_goldens",
    "DEFAULT_PATH",
]

#: (routing, pattern, offered_load, seed) steady-state golden points, run on
#: the tiny preset with warmup=150 / measure=300 cycles.
STEADY_CONFIGS = [
    ("Base", "ADV+1", 0.2, 42),
    ("ECtN", "UN", 0.35, 7),
    ("OLM", "ADV+h", 0.25, 3),
]

#: (topology, routing, pattern, offered_load, seed) cross-topology golden
#: points: the topology-agnostic mechanisms pinned on every registered
#: topology (tiny presets, warmup=150 / measure=300 cycles), plus the
#: contention-triggered in-transit mechanisms on the topologies that gained
#: them beyond the Dragonfly — Base/Hybrid under the region shift on the
#: flattened butterfly (MM+L policy) and under the tornado on the torus
#: (nonminimal ring-escape policy).  New points are appended so the earlier
#: entries keep their positions; their values must never change.
CROSS_TOPOLOGY_CONFIGS = (
    [
        (topology, routing, "ADV+1", 0.2, 5)
        for topology in ("dragonfly", "flattened_butterfly", "full_mesh", "torus")
        for routing in ("MIN", "VAL", "UGAL")
    ]
    + [
        ("flattened_butterfly", routing, "ADV+1", 0.2, 5)
        for routing in ("Base", "Hybrid")
    ]
    + [("torus", routing, "ADV+h", 0.2, 5) for routing in ("Base", "Hybrid")]
    + [
        ("fat_tree", routing, "ADV+1", 0.2, 5)
        for routing in ("MIN", "VAL", "UGAL", "Base")
    ]
)

STEADY_FIELDS = [
    "mean_latency",
    "p99_latency",
    "accepted_load",
    "global_misroute_fraction",
    "local_misroute_fraction",
    "mean_hops",
    "delivered_packets",
]

#: Base UN->ADV+1 transient on the tiny preset: load 0.3, switch cycle 150,
#: seed 11, observe_before=50 / observe_after=150 / bin=25.
TRANSIENT_CONFIG = {
    "routing": "Base",
    "before": "UN",
    "after": "ADV+1",
    "offered_load": 0.3,
    "switch_cycle": 150,
    "seed": 11,
    "observe_before": 50,
    "observe_after": 150,
    "bin_size": 25,
}

DEFAULT_PATH = Path(__file__).resolve().parents[3] / "tests" / "simulation" / "goldens.json"


def compute_goldens() -> Dict:
    """Run every golden configuration and return the result payload."""
    steady: List[Dict] = []
    for routing, pattern, load, seed in STEADY_CONFIGS:
        sim = Simulator(SimulationParameters.tiny(), routing, pattern, load, seed=seed)
        result = sim.run_steady_state(warmup_cycles=150, measure_cycles=300)
        steady.append(
            {
                "routing": routing,
                "pattern": pattern,
                "offered_load": load,
                "seed": seed,
                "expected": {field: getattr(result, field) for field in STEADY_FIELDS},
            }
        )

    cross: List[Dict] = []
    for topology, routing, pattern, load, seed in CROSS_TOPOLOGY_CONFIGS:
        params = SimulationParameters.tiny(topology_preset(topology))
        sim = Simulator(params, routing, pattern, load, seed=seed)
        result = sim.run_steady_state(warmup_cycles=150, measure_cycles=300)
        cross.append(
            {
                "topology": topology,
                "routing": routing,
                "pattern": pattern,
                "offered_load": load,
                "seed": seed,
                "expected": {field: getattr(result, field) for field in STEADY_FIELDS},
            }
        )

    cfg = TRANSIENT_CONFIG
    sim = Simulator.build_transient(
        SimulationParameters.tiny(),
        cfg["routing"],
        cfg["before"],
        cfg["after"],
        offered_load=cfg["offered_load"],
        switch_cycle=cfg["switch_cycle"],
        seed=cfg["seed"],
    )
    transient = sim.run_transient(
        warmup_cycles=cfg["switch_cycle"],
        observe_before=cfg["observe_before"],
        observe_after=cfg["observe_after"],
        bin_size=cfg["bin_size"],
    )
    return {
        "schema": GOLDENS_SCHEMA_REV,
        "regenerate_with": "PYTHONPATH=src python -m repro.tools.record_goldens",
        "steady": steady,
        "cross_topology": cross,
        "transient": {
            "config": cfg,
            "expected": {
                "cycles": transient.cycles,
                "mean_latency": transient.mean_latency,
                "misrouted_fraction": transient.misrouted_fraction,
            },
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_PATH, help="goldens.json destination"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the existing file matches a fresh run instead of writing",
    )
    args = parser.parse_args(argv)

    payload = compute_goldens()
    if args.check:
        recorded = json.loads(args.output.read_text())
        if recorded != payload:
            print("goldens.json is STALE: a fresh run produced different values")
            return 1
        print("goldens.json matches a fresh run")
        return 0
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"recorded {len(payload['steady'])} steady + "
        f"{len(payload['cross_topology'])} cross-topology + 1 transient "
        f"goldens -> {args.output}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
