"""cProfile harness over representative simulator workloads.

Future performance PRs should start from data, not intuition::

    PYTHONPATH=src python -m repro.tools.profile_hotpath
    PYTHONPATH=src python -m repro.tools.profile_hotpath --scenario transient
    PYTHONPATH=src python -m repro.tools.profile_hotpath --scenario drain --sort cumulative
    PYTHONPATH=src python -m repro.tools.profile_hotpath --routing ECtN --load 0.6 --top 40
    PYTHONPATH=src python -m repro.tools.profile_hotpath --scenario saturated --backend soa

Scenarios
---------
``steady``
    Warm-up + measurement + drain on the chosen preset (default: ``small``
    at 30 % uniform load) — the figure-5/6/10 shape.
``transient``
    UN→ADV+1 traffic change on the transient preset — the figure-7/8/9
    shape.
``saturated``
    Adversarial traffic past the routing's crossover load (default 60 % on
    the transient preset): every VC queue holds waiting heads, so the
    allocator, the misroute triggers and the credit machinery dominate.
    This is the worst case for any backend — profile it before and after a
    hot-path change.
``drain``
    A short busy phase, then injection stops and the simulation drains and
    idles for many cycles — the regime the time-warp engine accelerates.

``--backend`` points any scenario at a simulation backend (``object``,
``soa`` or ``soa-numba``); run the same scenario once per backend to get a
side-by-side hot-path picture.

Each run prints the simulated-cycle counts (executed vs warped-over) and
wall-clock before the profile table, so a perf change is visible even
without reading the profile.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time

from repro.config.parameters import SimulationParameters
from repro.simulation.engine import ENGINE_STATS
from repro.simulation.simulator import Simulator

PRESETS = {
    "tiny": SimulationParameters.tiny,
    "small": SimulationParameters.small,
    "transient": SimulationParameters.transient,
    "paper": SimulationParameters.paper,
}


def _params(args, preset: str = None):
    return PRESETS[preset or args.preset]().with_backend(args.backend)


def _run_steady(args) -> None:
    sim = Simulator(_params(args), args.routing, args.pattern, args.load, seed=args.seed)
    sim.run_steady_state(warmup_cycles=args.cycles // 3, measure_cycles=args.cycles)


def _run_transient(args) -> None:
    sim = Simulator.build_transient(
        _params(args, "transient"),
        args.routing,
        "UN",
        "ADV+1",
        offered_load=args.load,
        switch_cycle=args.cycles // 3,
        seed=args.seed,
    )
    sim.run_transient(
        warmup_cycles=args.cycles // 3,
        observe_before=args.cycles // 6,
        observe_after=args.cycles // 2,
        bin_size=20,
    )


def _run_saturated(args) -> None:
    # ADV+1 past the crossover on the transient preset: the network holds a
    # standing backlog, so every cycle exercises allocation under
    # contention rather than mostly-empty routers.
    sim = Simulator(
        _params(args, "transient"), args.routing, "ADV+1", args.load, seed=args.seed
    )
    sim.run_steady_state(warmup_cycles=args.cycles // 3, measure_cycles=args.cycles)


def _run_drain(args) -> None:
    sim = Simulator(_params(args), args.routing, args.pattern, args.load, seed=args.seed)
    sim.run_cycles(args.cycles // 4)
    sim.traffic.set_offered_load(0.0)
    sim.run_cycles(10 * args.cycles)


SCENARIOS = {
    "steady": _run_steady,
    "transient": _run_transient,
    "saturated": _run_saturated,
    "drain": _run_drain,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", choices=sorted(SCENARIOS), default="steady")
    parser.add_argument("--preset", choices=sorted(PRESETS), default="small")
    parser.add_argument("--routing", default="Base")
    parser.add_argument("--pattern", default="UN")
    parser.add_argument(
        "--backend",
        choices=("object", "soa", "soa-numba"),
        default="object",
        help="simulation backend to profile (default object)",
    )
    parser.add_argument(
        "--load",
        type=float,
        default=None,
        help="offered load (default 0.3; the saturated scenario defaults to 0.6)",
    )
    parser.add_argument("--cycles", type=int, default=600)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--sort", default="tottime", help="pstats sort key (tottime, cumulative, ...)"
    )
    parser.add_argument("--top", type=int, default=25, help="rows of the profile table")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document instead of the text "
        "report (same telemetry family as the BENCH_*.json artifacts)",
    )
    args = parser.parse_args(argv)
    if args.load is None:
        args.load = 0.6 if args.scenario == "saturated" else 0.3
    # These scenarios pin their preset/pattern; reflect that in the header.
    if args.scenario == "saturated":
        args.preset, args.pattern = "transient", "ADV+1"
    elif args.scenario == "transient":
        args.preset, args.pattern = "transient", "UN->ADV+1"

    ENGINE_STATS.reset()
    profiler = cProfile.Profile()
    wall_start = time.perf_counter()
    profiler.enable()
    SCENARIOS[args.scenario](args)
    profiler.disable()
    wall = time.perf_counter() - wall_start

    executed = ENGINE_STATS.cycles_executed
    skipped = ENGINE_STATS.cycles_skipped
    total = executed + skipped
    rate = total / wall if wall > 0 else float("nan")
    stats = pstats.Stats(profiler)
    if args.json:
        print(json.dumps(_json_document(args, wall, executed, skipped, rate, stats)))
        return 0
    print(
        f"scenario={args.scenario} preset={args.preset} routing={args.routing} "
        f"pattern={args.pattern} load={args.load} backend={args.backend}"
    )
    print(
        f"wall={wall:.3f}s cycles={total} (executed={executed}, warped={skipped}) "
        f"-> {rate:,.0f} cycles/s"
    )
    print()
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


def _json_document(args, wall, executed, skipped, rate, stats) -> dict:
    """The ``--json`` payload: run identity, cycle counts, top functions."""
    sort_field = {"tottime": 2, "cumulative": 3}.get(args.sort, 2)
    rows = sorted(
        (
            (func, ncalls, tottime, cumtime)
            for func, (_cc, ncalls, tottime, cumtime, _callers) in stats.stats.items()
        ),
        key=lambda row: row[sort_field],
        reverse=True,
    )[: args.top]
    return {
        "schema": "profile-hotpath-v1",
        "scenario": args.scenario,
        "preset": args.preset,
        "routing": args.routing,
        "pattern": args.pattern,
        "offered_load": args.load,
        "backend": args.backend,
        "seed": args.seed,
        "wall_seconds": round(wall, 4),
        "cycles_executed": executed,
        "cycles_skipped": skipped,
        "cycles_per_second": round(rate, 1),
        "sort": args.sort,
        "top_functions": [
            {
                "file": func[0],
                "line": func[1],
                "function": func[2],
                "ncalls": ncalls,
                "tottime": round(tottime, 6),
                "cumtime": round(cumtime, 6),
            }
            for func, ncalls, tottime, cumtime in rows
        ],
    }


if __name__ == "__main__":
    sys.exit(main())
