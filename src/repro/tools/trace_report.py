"""Render and compare ``repro.obs`` JSONL traces.

Report mode — occupancy heatmap, link-utilization table, trigger-decision
summary and an optional per-packet timeline::

    PYTHONPATH=src python -m repro.tools.trace_report report trace.jsonl
    PYTHONPATH=src python -m repro.tools.trace_report report trace.jsonl --pid 4242

Diff mode — compare the deterministic flight-recorder streams of two
traces (e.g. an ``object`` and a ``soa`` run of the same configuration)
and pinpoint the **first divergent event**; identical streams exit 0,
divergence exits 1::

    PYTHONPATH=src python -m repro.tools.trace_report diff object.jsonl soa.jsonl

Only flight events (inject/hop/deliver/drop) are compared by default:
those are bit-identical across backends by contract.  ``--all-events``
additionally compares snapshots and warp ranges (identical for same-warp
runs of the same backend contract, but warp on/off runs legitimately
differ in their warp/quiet records).
"""

from __future__ import annotations

import argparse
import json
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs import FLIGHT_EVENTS, load_trace

__all__ = ["main", "render_report", "first_divergence"]

#: ASCII shading ramp for the occupancy heatmap (light → heavy).
_SHADES = " .:-=+*#%@"


# --------------------------------------------------------------------- report
def _format_manifest(manifest: Optional[dict]) -> List[str]:
    if manifest is None:
        return ["manifest: (absent)"]
    keys = (
        "config_hash",
        "backend",
        "seed",
        "routing",
        "pattern",
        "offered_load",
        "topology",
        "num_nodes",
        "git_rev",
    )
    body = "  ".join(f"{key}={manifest[key]}" for key in keys if key in manifest)
    return [f"manifest: {body}"]


def _occupancy_heatmap(events: List[dict]) -> List[str]:
    """Mean buffered phits per router over the snapshots, as an ASCII strip."""
    snapshots = [e for e in events if e["ev"] == "snapshot"]
    if not snapshots:
        return ["occupancy heatmap: no snapshots recorded (snapshot_period=0?)"]
    totals: Dict[int, int] = defaultdict(int)
    for snapshot in snapshots:
        for rid, _port, _vc, _packets, phits in snapshot["inputs"]:
            totals[rid] += phits
    routers = max(totals) + 1 if totals else 0
    means = [totals.get(rid, 0) / len(snapshots) for rid in range(routers)]
    peak = max(means) if means else 0.0
    lines = [
        f"occupancy heatmap ({len(snapshots)} snapshots, mean buffered phits "
        f"per router, peak={peak:.1f}):"
    ]
    for start in range(0, routers, 32):
        row = means[start : start + 32]
        cells = "".join(
            _SHADES[min(int(value / peak * (len(_SHADES) - 1)), len(_SHADES) - 1)]
            if peak
            else _SHADES[0]
            for value in row
        )
        lines.append(f"  r{start:>4}..{start + len(row) - 1:<4} |{cells}|")
    return lines


def _link_table(events: List[dict], top: int) -> List[str]:
    """Busiest links from hop events (works on any trace, sampled or full)."""
    phits: Dict[tuple, int] = defaultdict(int)
    for event in events:
        if event["ev"] == "hop":
            phits[(event["router"], event["out_port"])] += 1
    if not phits:
        return ["link utilization: no hop events recorded"]
    ranked = sorted(phits.items(), key=lambda item: (-item[1], item[0]))[:top]
    lines = [f"link utilization (top {len(ranked)} by sampled hops):"]
    lines.append("  router port  hops")
    for (rid, port), count in ranked:
        lines.append(f"  {rid:>6} {port:>4} {count:>5}")
    return lines


def _trigger_summary(events: List[dict], top: int) -> List[str]:
    consultations: Dict[int, int] = defaultdict(int)
    escapes: Dict[int, int] = defaultdict(int)
    for event in events:
        trigger = event.get("trigger")
        if trigger is None:
            continue
        rid = event["router"]
        consultations[rid] += 1
        if trigger.get("escape"):
            escapes[rid] += 1
    if not consultations:
        return ["trigger decisions: none recorded (non-adaptive routing?)"]
    total = sum(consultations.values())
    escaped = sum(escapes.values())
    lines = [
        f"trigger decisions: {total} consultations, {escaped} escapes "
        f"({escaped / total:.1%})"
    ]
    ranked = sorted(consultations.items(), key=lambda item: (-item[1], item[0]))[:top]
    lines.append("  router consults escapes")
    for rid, count in ranked:
        lines.append(f"  {rid:>6} {count:>8} {escapes.get(rid, 0):>7}")
    return lines


def _packet_timeline(events: List[dict], pid: int) -> List[str]:
    path = [e for e in events if e.get("pid") == pid and e["ev"] in FLIGHT_EVENTS]
    if not path:
        return [f"packet {pid}: not in the sampled flight set"]
    lines = [f"packet {pid} timeline ({len(path)} events):"]
    for event in path:
        ev = event["ev"]
        if ev == "inject":
            lines.append(
                f"  c{event['cycle']:>6} inject   {event['src']}->{event['dst']} "
                f"size={event['size']} created=c{event['created']}"
            )
        elif ev == "hop":
            trigger = event.get("trigger")
            suffix = ""
            if trigger is not None:
                suffix = (
                    f"  [{trigger['signal']}: value={trigger.get('value')} "
                    f"threshold={trigger.get('threshold')} "
                    f"{'escape' if trigger.get('escape') else 'minimal'}]"
                )
            lines.append(
                f"  c{event['cycle']:>6} hop      r{event['router']} "
                f"p{event['in_port']}/vc{event['in_vc']} -> "
                f"p{event['out_port']}/{event['cls']} {event['kind']}{suffix}"
            )
        elif ev == "deliver":
            lines.append(
                f"  c{event['cycle']:>6} deliver  latency={event['latency']} "
                f"hops={event['hops']}"
            )
        else:
            lines.append(f"  c{event['cycle']:>6} drop     hops={event['hops']}")
    return lines


def _perf_block(perf: Optional[dict]) -> List[str]:
    if perf is None:
        return ["perf: (absent)"]
    skip = {"ev"}
    body = "  ".join(
        f"{key}={value}" for key, value in sorted(perf.items()) if key not in skip
    )
    return [f"perf: {body}"]


def render_report(trace: dict, pid: Optional[int] = None, top: int = 10) -> str:
    events = trace["events"]
    sections = [
        _format_manifest(trace["manifest"]),
        _occupancy_heatmap(events),
        _link_table(events, top),
        _trigger_summary(events, top),
    ]
    if pid is None:
        sampled = next(
            (e["pid"] for e in events if e["ev"] == "inject"), None
        )
        if sampled is not None:
            pid = sampled
    if pid is not None:
        sections.append(_packet_timeline(events, pid))
    sections.append(_perf_block(trace["perf"]))
    return "\n".join("\n".join(section) for section in sections)


# ----------------------------------------------------------------------- diff
def first_divergence(
    events_a: List[dict], events_b: List[dict]
) -> Optional[int]:
    """Index of the first differing event, or ``None`` when identical."""
    for index, (a, b) in enumerate(zip(events_a, events_b)):
        if a != b:
            return index
    if len(events_a) != len(events_b):
        return min(len(events_a), len(events_b))
    return None


def _diff(trace_a: dict, trace_b: dict, label_a: str, label_b: str, all_events: bool) -> int:
    def selected(trace: dict) -> List[dict]:
        if all_events:
            return trace["events"]
        return [e for e in trace["events"] if e["ev"] in FLIGHT_EVENTS]

    events_a = selected(trace_a)
    events_b = selected(trace_b)
    for label, trace in ((label_a, trace_a), (label_b, trace_b)):
        manifest = trace["manifest"] or {}
        print(
            f"{label}: backend={manifest.get('backend', '?')} "
            f"config_hash={manifest.get('config_hash', '?')} "
            f"seed={manifest.get('seed', '?')}"
        )
    hash_a = (trace_a["manifest"] or {}).get("config_hash")
    hash_b = (trace_b["manifest"] or {}).get("config_hash")
    if hash_a and hash_b and hash_a != hash_b:
        print("warning: config hashes differ — these traces describe different runs")
    index = first_divergence(events_a, events_b)
    if index is None:
        print(f"traces identical: {len(events_a)} events match")
        return 0
    print(
        f"traces diverge at event {index} "
        f"({len(events_a)} vs {len(events_b)} events)"
    )
    context = 3
    for offset in range(max(0, index - context), index):
        print(f"  ...   {json.dumps(events_a[offset], sort_keys=True)}")
    for label, events in ((label_a, events_a), (label_b, events_b)):
        record = (
            json.dumps(events[index], sort_keys=True)
            if index < len(events)
            else "(stream ended)"
        )
        print(f"  {label}: {record}")
    return 1


# ----------------------------------------------------------------------- CLI
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.trace_report", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="render one trace file")
    report.add_argument("trace", type=Path)
    report.add_argument(
        "--pid", type=int, default=None, help="packet id for the timeline section"
    )
    report.add_argument(
        "--top", type=int, default=10, help="rows in the link/trigger tables"
    )

    diff = sub.add_parser("diff", help="compare two traces event by event")
    diff.add_argument("trace_a", type=Path)
    diff.add_argument("trace_b", type=Path)
    diff.add_argument(
        "--all-events",
        action="store_true",
        help="compare snapshots/warp records too, not just flight events",
    )

    args = parser.parse_args(argv)
    if args.command == "report":
        print(render_report(load_trace(args.trace), pid=args.pid, top=args.top))
        return 0
    return _diff(
        load_trace(args.trace_a),
        load_trace(args.trace_b),
        args.trace_a.name,
        args.trace_b.name,
        args.all_events,
    )


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
