"""Topology registry: name-keyed factory for the supported topologies.

The registry binds a topology *name* — ``"dragonfly"``,
``"flattened_butterfly"``, ``"full_mesh"``, ``"torus"``, ``"fat_tree"`` —
to its config
dataclass and topology implementation, so the rest of the stack (simulator,
experiment scales, example scripts, CLI arguments) can be parameterized by
a plain string:

>>> params = SimulationParameters.tiny(topology_preset("torus"))
>>> topo = create_topology(params.topology)

``create_topology`` dispatches on the *config type*, so code holding a
``SimulationParameters`` never needs to know which topology it describes.
New topologies are added by registering one :class:`TopologyEntry` (a
config class with ``tiny``/``small`` presets plus a
:class:`~repro.topology.base.Topology` implementation satisfying the
contract documented there).
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.config.parameters import (
    DragonflyConfig,
    FatTreeConfig,
    FlattenedButterflyConfig,
    FullMeshConfig,
    TopologyConfig,
    TorusConfig,
)
from repro.topology.base import Topology
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.fat_tree import FatTreeTopology
from repro.topology.flattened_butterfly import FlattenedButterflyTopology
from repro.topology.full_mesh import FullMeshTopology
from repro.topology.torus import TorusTopology

__all__ = [
    "TopologyEntry",
    "TOPOLOGY_REGISTRY",
    "available_topologies",
    "create_topology",
    "topology_preset",
]


class TopologyEntry:
    """One registered topology: its config class and implementation."""

    __slots__ = ("name", "config_cls", "topology_cls")

    def __init__(
        self,
        name: str,
        config_cls: Type[TopologyConfig],
        topology_cls: Type[Topology],
    ):
        self.name = name
        self.config_cls = config_cls
        self.topology_cls = topology_cls


#: Topology name -> registry entry.
TOPOLOGY_REGISTRY: Dict[str, TopologyEntry] = {
    entry.name: entry
    for entry in (
        TopologyEntry("dragonfly", DragonflyConfig, DragonflyTopology),
        TopologyEntry(
            "flattened_butterfly", FlattenedButterflyConfig, FlattenedButterflyTopology
        ),
        TopologyEntry("full_mesh", FullMeshConfig, FullMeshTopology),
        TopologyEntry("torus", TorusConfig, TorusTopology),
        TopologyEntry("fat_tree", FatTreeConfig, FatTreeTopology),
    )
}


def available_topologies() -> List[str]:
    """Names of all registered topologies."""
    return list(TOPOLOGY_REGISTRY)


def create_topology(config: TopologyConfig) -> Topology:
    """Instantiate the topology described by ``config`` (type-dispatched)."""
    for entry in TOPOLOGY_REGISTRY.values():
        if type(config) is entry.config_cls:
            return entry.topology_cls(config)
    raise ValueError(
        f"No registered topology for config type {type(config).__name__}; "
        f"available: {', '.join(TOPOLOGY_REGISTRY)}"
    )


def topology_preset(name: str, preset: str = "tiny") -> TopologyConfig:
    """A named topology's ``tiny`` / ``small`` (or other) preset config."""
    key = name.strip().lower()
    entry = TOPOLOGY_REGISTRY.get(key)
    if entry is None:
        raise ValueError(
            f"Unknown topology {name!r}; available: {', '.join(TOPOLOGY_REGISTRY)}"
        )
    factory = getattr(entry.config_cls, preset, None)
    if factory is None:
        raise ValueError(
            f"Topology {name!r} has no {preset!r} preset "
            f"(config class {entry.config_cls.__name__})"
        )
    return factory()
