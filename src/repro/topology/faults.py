"""Link-fault model: failed links, degraded links, and fault schedules.

The paper evaluates routing only on healthy networks, but its central
mechanism — escaping congested minimal paths through nonminimal candidates —
is exactly what a deployment leans on when links *fail* or *degrade*.  This
module provides the fault layer the rest of the stack consumes:

:class:`FaultModel`
    A frozen, picklable description of the faults to inject: a random link
    failure percentage, explicit failed links, per-link degradations
    (bandwidth / latency multipliers), and an optional deterministic
    mid-run :class:`FaultSchedule` of ``(cycle, link, fail|repair)`` events.

:class:`FaultRuntime`
    The mutable per-simulation state derived from a model: which ports are
    currently dead, connected-component labels for reachability queries, and
    per-destination BFS next-hop tables used by the fault-aware routing
    fallback.  Every piece of randomness comes from a dedicated *fault RNG
    stream* spawned by the simulator **after** the three healthy streams
    (routing / arrival / payload), so a healthy run's draw sequences — and
    therefore the committed goldens — stay bit-identical whether or not this
    module is even imported.

Links are undirected: failing a link removes *both* directions.  A link is
named by either of its directed endpoints, a ``(router, port)`` pair, and is
canonicalized internally to the lexicographically smaller endpoint.
Injection/ejection ports never fail (the node sits next to its router).

Partition semantics: by default, constructing a :class:`FaultRuntime` whose
static failures — or any epoch of its schedule — disconnect the router graph
raises :class:`NetworkPartitionError`; passing ``allow_partition=True``
acknowledges the partition explicitly, and packets whose destination is
unreachable are then *dropped and counted* by the router instead of stalling
the watchdog.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.topology.base import PortKind, Topology

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

__all__ = [
    "LinkId",
    "DegradedLink",
    "FaultEvent",
    "FaultSchedule",
    "FaultModel",
    "FaultRuntime",
    "NetworkPartitionError",
    "NO_FAULT_EVENT",
]

#: One directed endpoint of a link: ``(router_id, output_port)``.
LinkId = Tuple[int, int]

#: Sentinel for "no scheduled fault event" (matches the engine's _NO_EVENT).
NO_FAULT_EVENT = 2**62


class NetworkPartitionError(ValueError):
    """A fault set disconnects the router graph without ``allow_partition``."""


@dataclass(frozen=True)
class DegradedLink:
    """Degradation of one (undirected) link.

    ``bandwidth_factor`` multiplies the serialization time of every packet
    crossing the link (factor 2 = half bandwidth); ``latency_factor``
    multiplies the link's propagation latency.  ``contention_bias`` is the
    high-contention signal fed to the adaptive triggers, in *packets*: it is
    added to the link's contention counter and (scaled by the packet size)
    to its credit-occupancy estimate, so both counter-based (Base/Hybrid)
    and occupancy-based (OLM/UGAL) mechanisms steer away from the degraded
    link exactly as they would from a persistently congested one.  ``None``
    derives a default from the physical factors.
    """

    bandwidth_factor: int = 1
    latency_factor: int = 1
    contention_bias: Optional[int] = None

    def __post_init__(self) -> None:
        if self.bandwidth_factor < 1 or self.latency_factor < 1:
            raise ValueError("degradation factors must be >= 1")
        if self.contention_bias is not None and self.contention_bias < 0:
            raise ValueError("contention_bias must be >= 0")

    @property
    def bias_packets(self) -> int:
        """Contention-signal strength in packets (derived when unset)."""
        if self.contention_bias is not None:
            return self.contention_bias
        return 2 * (self.bandwidth_factor - 1) + (self.latency_factor - 1)


class FaultEvent(NamedTuple):
    """One scheduled fault transition."""

    cycle: int
    link: LinkId
    kind: str  # "fail" | "repair"


@dataclass(frozen=True)
class FaultSchedule:
    """A deterministic mid-run sequence of fail/repair events.

    Events are applied by the engine at the top of the scheduled cycle,
    before traffic generation — a scheduled fault is a *work event*, so the
    time-warp horizon never jumps past one.  Events are kept sorted by
    ``(cycle, link, kind)`` so replay order is independent of the order the
    caller listed them in.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        normalized = []
        for event in self.events:
            cycle, link, kind = event
            if kind not in ("fail", "repair"):
                raise ValueError(f"unknown fault event kind {kind!r}")
            if cycle < 0:
                raise ValueError("fault event cycles must be >= 0")
            normalized.append(FaultEvent(int(cycle), (int(link[0]), int(link[1])), kind))
        normalized.sort(key=lambda e: (e.cycle, e.link, e.kind))
        object.__setattr__(self, "events", tuple(normalized))

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class FaultModel:
    """Picklable description of the faults to inject into one simulation.

    ``link_failure_percent`` fails that percentage of the network's
    (undirected) router-to-router links, sampled from the simulator's
    dedicated fault RNG stream; ``failed_links`` names links explicitly.
    ``degraded_links`` maps links to :class:`DegradedLink` multipliers
    (static for the whole run).  ``schedule`` adds deterministic mid-run
    fail/repair events.  ``allow_partition`` turns partition rejection into
    explicit drop-and-count semantics.
    """

    link_failure_percent: float = 0.0
    failed_links: Tuple[LinkId, ...] = ()
    degraded_links: Tuple[Tuple[LinkId, DegradedLink], ...] = ()
    schedule: Optional[FaultSchedule] = None
    allow_partition: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.link_failure_percent <= 100.0:
            raise ValueError("link_failure_percent must be in [0, 100]")
        object.__setattr__(
            self,
            "failed_links",
            tuple((int(r), int(p)) for r, p in self.failed_links),
        )
        degraded = []
        items = (
            self.degraded_links.items()
            if isinstance(self.degraded_links, dict)
            else self.degraded_links
        )
        for link, deg in items:
            if not isinstance(deg, DegradedLink):
                raise TypeError("degraded_links values must be DegradedLink")
            degraded.append(((int(link[0]), int(link[1])), deg))
        object.__setattr__(self, "degraded_links", tuple(degraded))
        if self.schedule is not None and not isinstance(self.schedule, FaultSchedule):
            object.__setattr__(self, "schedule", FaultSchedule(tuple(self.schedule)))

    @property
    def is_trivial(self) -> bool:
        """Whether this model injects nothing at all."""
        return (
            self.link_failure_percent == 0.0
            and not self.failed_links
            and not self.degraded_links
            and (self.schedule is None or len(self.schedule) == 0)
        )


class _Link(NamedTuple):
    """One undirected link: both directed endpoints, canonical end first."""

    router_a: int
    port_a: int
    router_b: int
    port_b: int


class FaultRuntime:
    """Mutable fault state of one simulation.

    Holds the currently-failed port sets consulted by the router's
    allocation stage, the fault schedule cursor consulted by the engine's
    time-warp horizon, and the reachability / BFS-detour tables consulted by
    the routing algorithms' fault fallback.  The detour tables are memoized
    per *fault epoch* (bumped by every applied fail/repair batch), so every
    packet steered within one epoch follows a single consistent shortest-
    surviving-path tree — which is what makes the fault fallback loop-free.
    """

    def __init__(self, topology: Topology, model: FaultModel, rng: "np.random.Generator"):
        self.topology = topology
        self.model = model
        self._num_routers = topology.num_routers
        # Undirected link table over the router graph (injection ports have
        # no neighbor and therefore never appear).
        links: List[_Link] = []
        link_index: Dict[LinkId, int] = {}
        for rid in range(topology.num_routers):
            for port in range(topology.router_radix):
                if topology.port_kinds[port] is PortKind.INJECTION:
                    continue
                nbr = topology.neighbor(rid, port)
                if nbr is None:
                    continue
                if (rid, port) in link_index:
                    continue
                nbr_router, nbr_port = nbr
                index = len(links)
                links.append(_Link(rid, port, nbr_router, nbr_port))
                link_index[(rid, port)] = index
                link_index[(nbr_router, nbr_port)] = index
        self._links = links
        self._link_index = link_index

        # --- static failure set ------------------------------------------------
        failed: Set[int] = set()
        for link in model.failed_links:
            failed.add(self._resolve_link(link))
        if model.link_failure_percent > 0.0:
            count = int(round(model.link_failure_percent / 100.0 * len(links)))
            candidates = [i for i in range(len(links)) if i not in failed]
            count = min(count, len(candidates))
            if count > 0:
                # One draw from the dedicated fault stream; deterministic for
                # a fixed (seed, topology, model).
                chosen = rng.choice(len(candidates), size=count, replace=False)
                failed.update(candidates[int(i)] for i in sorted(chosen))

        # --- degradations (static) ---------------------------------------------
        #: Directed ``(router, port) -> DegradedLink`` covering both ends.
        self.degraded: Dict[LinkId, DegradedLink] = {}
        for link, deg in model.degraded_links:
            index = self._resolve_link(link)
            entry = links[index]
            self.degraded[(entry.router_a, entry.port_a)] = deg
            self.degraded[(entry.router_b, entry.port_b)] = deg

        # --- live failure state ------------------------------------------------
        self._failed_links: Set[int] = set()
        #: Per-router set of currently dead output ports (symmetric: both
        #: endpoints of a failed link are marked).  Consulted by the router's
        #: allocation stage for every granted decision, so it is a plain
        #: list of sets indexed by router id.
        self.failed_ports: List[Set[int]] = [set() for _ in range(topology.num_routers)]
        for index in failed:
            self._fail_link(index)

        #: Monotone counter bumped by every applied fail/repair batch; the
        #: reachability and detour caches are valid for one epoch only.
        self.epoch = 0
        self._components: Optional[List[int]] = None
        self._detour_cache: Dict[int, List[int]] = {}
        self._escape_tree: Optional[List[List[Tuple[int, int]]]] = None
        self._escape_cache: Dict[int, List[int]] = {}

        # --- counters ----------------------------------------------------------
        #: Packets dropped because their destination became unreachable.
        self.dropped_packets = 0
        #: Hops granted through the fault-fallback BFS steering.
        self.fault_reroute_hops = 0
        #: Distinct packets that entered fault mode at least once.
        self.rerouted_packets = 0

        # --- schedule ----------------------------------------------------------
        events = model.schedule.events if model.schedule is not None else ()
        self._events: Tuple[FaultEvent, ...] = events
        self._event_links: Tuple[int, ...] = tuple(
            self._resolve_link(e.link) for e in events
        )
        self._next_event = 0
        self.pending_event_cycle = events[0].cycle if events else NO_FAULT_EVENT

        # --- partition validation ----------------------------------------------
        if not model.allow_partition:
            self._reject_partition(self._failed_links, "static fault set")
            # Replay the schedule against a scratch copy so a disconnecting
            # epoch is rejected at construction, not a thousand cycles in.
            scratch = set(self._failed_links)
            i = 0
            while i < len(events):
                cycle = events[i].cycle
                while i < len(events) and events[i].cycle == cycle:
                    index = self._event_links[i]
                    if events[i].kind == "fail":
                        scratch.add(index)
                    else:
                        scratch.discard(index)
                    i += 1
                self._reject_partition(scratch, f"fault schedule at cycle {cycle}")

    # ------------------------------------------------------------------ helpers
    def _resolve_link(self, link: LinkId) -> int:
        index = self._link_index.get((int(link[0]), int(link[1])))
        if index is None:
            raise ValueError(
                f"({link[0]}, {link[1]}) does not name a router-to-router link "
                "of this topology (injection/ejection ports cannot fail)"
            )
        return index

    def _fail_link(self, index: int) -> None:
        if index in self._failed_links:
            return
        self._failed_links.add(index)
        link = self._links[index]
        self.failed_ports[link.router_a].add(link.port_a)
        self.failed_ports[link.router_b].add(link.port_b)

    def _repair_link(self, index: int) -> None:
        if index not in self._failed_links:
            return
        self._failed_links.discard(index)
        link = self._links[index]
        self.failed_ports[link.router_a].discard(link.port_a)
        self.failed_ports[link.router_b].discard(link.port_b)

    def _component_labels(self, failed: Set[int]) -> List[int]:
        """Connected-component label per router, over the surviving links."""
        topo = self.topology
        labels = [-1] * self._num_routers
        link_index = self._link_index
        label = 0
        for start in range(self._num_routers):
            if labels[start] != -1:
                continue
            labels[start] = label
            queue = deque((start,))
            while queue:
                rid = queue.popleft()
                for port in range(topo.router_radix):
                    index = link_index.get((rid, port))
                    if index is None or index in failed:
                        continue
                    link = self._links[index]
                    nbr = link.router_b if link.router_a == rid else link.router_a
                    if labels[nbr] == -1:
                        labels[nbr] = label
                        queue.append(nbr)
            label += 1
        return labels

    def _reject_partition(self, failed: Set[int], context: str) -> None:
        labels = self._component_labels(failed)
        components = max(labels) + 1
        if components > 1:
            sizes = [labels.count(c) for c in range(components)]
            raise NetworkPartitionError(
                f"{context} disconnects the network into {components} components "
                f"(sizes {sizes}); pass allow_partition=True to accept "
                "drop-and-count semantics for unreachable destinations"
            )

    # ------------------------------------------------------------------ queries
    @property
    def num_links(self) -> int:
        return len(self._links)

    @property
    def num_failed_links(self) -> int:
        return len(self._failed_links)

    @property
    def failed_links(self) -> List[LinkId]:
        """Canonical ``(router, port)`` endpoint of every failed link."""
        return sorted(
            (self._links[i].router_a, self._links[i].port_a)
            for i in self._failed_links
        )

    def degradation(self, router: int, port: int) -> Optional[DegradedLink]:
        return self.degraded.get((router, port))

    def reachable(self, router_a: int, router_b: int) -> bool:
        """Whether two routers are in the same surviving component."""
        if router_a == router_b:
            return True
        labels = self._components
        if labels is None:
            labels = self._components = self._component_labels(self._failed_links)
        return labels[router_a] == labels[router_b]

    def detour_port(self, router: int, target_router: int) -> int:
        """Next-hop port of the shortest surviving path towards a router.

        Computed by one BFS from the target over the surviving links and
        memoized for the current fault epoch, so every consult within an
        epoch follows the same next-hop tree: a packet steered by it makes
        strictly decreasing progress to the target and cannot loop.
        """
        table = self._detour_cache.get(target_router)
        if table is None:
            table = self._bfs_next_hops(target_router)
            self._detour_cache[target_router] = table
        return table[router]

    def _bfs_next_hops(self, target_router: int) -> List[int]:
        topo = self.topology
        link_index = self._link_index
        failed = self._failed_links
        links = self._links
        next_hop = [-1] * self._num_routers
        dist = [-1] * self._num_routers
        dist[target_router] = 0
        queue = deque((target_router,))
        while queue:
            rid = queue.popleft()
            for port in range(topo.router_radix):
                index = link_index.get((rid, port))
                if index is None or index in failed:
                    continue
                link = links[index]
                if link.router_a == rid:
                    nbr, nbr_port = link.router_b, link.port_b
                else:
                    nbr, nbr_port = link.router_a, link.port_a
                if dist[nbr] == -1:
                    dist[nbr] = dist[rid] + 1
                    # The neighbour reaches the target through its port back
                    # to ``rid``; ports are scanned in increasing order, so
                    # ties resolve deterministically to the lowest port.
                    next_hop[nbr] = nbr_port
                    queue.append(nbr)
        return next_hop

    def escape_port(self, router: int, target_router: int) -> int:
        """Next-hop port of the unique escape-tree path towards a router.

        The escape tree is a per-epoch BFS spanning forest of the surviving
        graph.  Fault-escape traffic is confined to tree links on one
        dedicated escape VC: routing on a tree is a special case of
        up*/down* routing, whose channel dependency graph is acyclic on a
        single virtual channel, so the escape class stays deadlock-free no
        matter how the fault set mangles the topology's own VC schedule.
        """
        table = self._escape_cache.get(target_router)
        if table is None:
            table = self._tree_next_hops(target_router)
            self._escape_cache[target_router] = table
        return table[router]

    def _escape_adjacency(self) -> List[List[Tuple[int, int]]]:
        """Tree links of the escape forest as per-router ``(port, nbr)`` lists.

        One BFS spanning tree per surviving component, rooted at the
        component's lowest router id, links scanned in increasing port
        order — fully deterministic for a given epoch.
        """
        adj = self._escape_tree
        if adj is not None:
            return adj
        topo = self.topology
        link_index = self._link_index
        failed = self._failed_links
        links = self._links
        n = self._num_routers
        adj = [[] for _ in range(n)]
        visited = [False] * n
        for root in range(n):
            if visited[root]:
                continue
            visited[root] = True
            queue = deque((root,))
            while queue:
                rid = queue.popleft()
                for port in range(topo.router_radix):
                    index = link_index.get((rid, port))
                    if index is None or index in failed:
                        continue
                    link = links[index]
                    if link.router_a == rid:
                        nbr, nbr_port = link.router_b, link.port_b
                    else:
                        nbr, nbr_port = link.router_a, link.port_a
                    if not visited[nbr]:
                        visited[nbr] = True
                        adj[rid].append((port, nbr))
                        adj[nbr].append((nbr_port, rid))
                        queue.append(nbr)
        self._escape_tree = adj
        return adj

    def _tree_next_hops(self, target_router: int) -> List[int]:
        adj = self._escape_adjacency()
        next_hop = [-1] * self._num_routers
        seen = [False] * self._num_routers
        seen[target_router] = True
        queue = deque((target_router,))
        while queue:
            rid = queue.popleft()
            for _port, nbr in adj[rid]:
                if seen[nbr]:
                    continue
                seen[nbr] = True
                # The neighbour's first tree hop towards the target is its
                # port back to ``rid``.
                for nbr_port, back in adj[nbr]:
                    if back == rid:
                        next_hop[nbr] = nbr_port
                        break
                queue.append(nbr)
        return next_hop

    def filter_candidates(self, router: int, candidates: Sequence) -> Sequence:
        """Drop misroute candidates whose output port is currently dead.

        Returns the input sequence unchanged (no allocation) when no
        candidate is affected — the common case on a mostly-healthy network.
        """
        failed = self.failed_ports[router]
        if not failed:
            return candidates
        for candidate in candidates:
            if candidate.port in failed:
                return [c for c in candidates if c.port not in failed]
        return candidates

    # ------------------------------------------------------------------ events
    def apply_due(self, cycle: int) -> bool:
        """Apply every scheduled event with ``event.cycle <= cycle``.

        Returns whether anything changed (one *epoch* per call, however many
        same-cycle events were batched).  Invalidates the reachability and
        detour caches so the routing fallback re-plans on the new graph.
        """
        events = self._events
        i = self._next_event
        changed = False
        while i < len(events) and events[i].cycle <= cycle:
            index = self._event_links[i]
            if events[i].kind == "fail":
                self._fail_link(index)
            else:
                self._repair_link(index)
            changed = True
            i += 1
        self._next_event = i
        self.pending_event_cycle = events[i].cycle if i < len(events) else NO_FAULT_EVENT
        if changed:
            self.epoch += 1
            self._components = None
            self._detour_cache.clear()
            self._escape_tree = None
            self._escape_cache.clear()
        return changed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultRuntime(failed={len(self._failed_links)}/{len(self._links)} links, "
            f"degraded={len(self.degraded) // 2}, epoch={self.epoch})"
        )
