"""Full-mesh topology: every router directly linked to every other router.

The full mesh is the single-group limit of the Dragonfly (Cano et al., HOTI
2025 study the same adaptive-vs-oblivious trade-off on full-mesh networks):
``a`` routers form a complete graph of LOCAL links, each attaching ``p``
compute nodes, and there are no GLOBAL ports at all.

Port layout (identical on every router)::

    [0, p)          injection / ejection ports
    [p, p + a - 1)  mesh ports, LOCAL kind (one per other router)

Minimal paths have exactly one hop; Valiant paths take two LOCAL hops
through an intermediate router, occupying local VCs 0 and 1 of the
path-stage assignment — so the mesh is deadlock-free inside the ordinary
Dragonfly VC budget without any extra virtual channels.

Every router is its own *region*: the adversarial pattern ``ADV+i`` sends
all nodes of router ``r`` to router ``r + i``, saturating the single direct
link at ``1/p`` of the injection bandwidth under minimal routing, while
Valiant spreads the same traffic over all two-hop paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config.parameters import FullMeshConfig
from repro.topology.base import PathModel, PortKind, Topology

__all__ = ["FullMeshTopology"]

_MINIMAL_HOP_KINDS = (("local",),)


class FullMeshTopology(Topology):
    """Complete graph of routers (the single-group Dragonfly limit)."""

    def __init__(self, config: FullMeshConfig):
        self.config = config
        self._p = config.p
        self._a = config.a
        self._radix = config.router_radix
        self._first_mesh_port = self._p
        self.port_kinds: Tuple[PortKind, ...] = tuple(
            PortKind.INJECTION if port < self._p else PortKind.LOCAL
            for port in range(self._radix)
        )
        self._path_model = PathModel.from_minimal_paths(
            "full_mesh", _MINIMAL_HOP_KINDS
        )

    # ------------------------------------------------------------------ sizes
    @property
    def num_routers(self) -> int:
        return self._a

    @property
    def num_nodes(self) -> int:
        return self._a * self._p

    @property
    def router_radix(self) -> int:
        return self._radix

    @property
    def nodes_per_router(self) -> int:
        return self._p

    # Every router is its own region.
    @property
    def num_regions(self) -> int:
        return self._a

    @property
    def routers_per_region(self) -> int:
        return 1

    @property
    def path_model(self) -> PathModel:
        return self._path_model

    # -------------------------------------------------------------- addressing
    def node_router(self, node: int) -> int:
        return node // self._p

    def node_port(self, node: int) -> int:
        return node % self._p

    def router_nodes(self, router: int) -> List[int]:
        base = router * self._p
        return list(range(base, base + self._p))

    # ------------------------------------------------------------------- ports
    def port_kind(self, port: int) -> PortKind:
        if 0 <= port < self._radix:
            return self.port_kinds[port]
        raise ValueError(f"port {port} out of range [0, {self._radix})")

    @property
    def injection_ports(self) -> range:
        return range(0, self._p)

    @property
    def mesh_ports(self) -> range:
        return range(self._first_mesh_port, self._radix)

    # Dragonfly-vocabulary aliases used by topology-generic helpers.
    local_ports = mesh_ports

    @property
    def global_ports(self) -> range:
        return range(0)

    def mesh_port_to(self, router: int, peer_router: int) -> int:
        """Mesh port of ``router`` leading directly to ``peer_router``."""
        if router == peer_router:
            raise ValueError("a router has no mesh port to itself")
        idx = peer_router if peer_router < router else peer_router - 1
        return self._first_mesh_port + idx

    def _mesh_port_peer(self, router: int, port: int) -> int:
        idx = port - self._first_mesh_port
        return idx if idx < router else idx + 1

    def port_target_region(self, router: int, port: int) -> int:
        if self.port_kinds[port] is PortKind.INJECTION:
            raise ValueError(f"port {port} is an injection port")
        return self._mesh_port_peer(router, port)

    # --------------------------------------------------------------- neighbors
    def neighbor(self, router: int, port: int) -> Optional[Tuple[int, int]]:
        if self.port_kinds[port] is PortKind.INJECTION:
            return None
        peer = self._mesh_port_peer(router, port)
        return peer, self.mesh_port_to(peer, router)

    # ----------------------------------------------------------------- routing
    def minimal_output_port(self, router: int, dst_node: int) -> int:
        dst_router = dst_node // self._p
        if router == dst_router:
            return dst_node % self._p
        return self.mesh_port_to(router, dst_router)

    def minimal_path_length(self, src_node: int, dst_node: int) -> int:
        return 0 if self.node_router(src_node) == self.node_router(dst_node) else 1

    # -------------------------------------------------------------- describing
    def describe(self) -> Dict[str, int]:
        return {
            "p": self._p,
            "a": self._a,
            "routers": self.num_routers,
            "nodes": self.num_nodes,
            "router_radix": self._radix,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FullMeshTopology(p={self._p}, a={self._a}, nodes={self.num_nodes})"
