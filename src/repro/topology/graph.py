"""Graph utilities: export a :class:`Topology` to ``networkx`` and analyse it.

These helpers are not needed by the simulator itself; they support testing
(structural invariants such as connectivity and diameter) and exploratory
analysis of topologies in the examples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from repro.topology.base import PortKind, Topology

if TYPE_CHECKING:  # pragma: no cover
    import networkx

__all__ = ["to_networkx", "router_graph_stats", "link_census"]


def to_networkx(topology: Topology) -> "networkx.Graph":
    """Build an undirected router-level graph of ``topology``.

    Edges carry a ``kind`` attribute (``"local"`` or ``"global"``).
    Requires ``networkx`` (an optional dependency).
    """
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(topology.num_routers))
    for r in range(topology.num_routers):
        for port in range(topology.router_radix):
            kind = topology.port_kind(port)
            if kind is PortKind.INJECTION:
                continue
            nbr = topology.neighbor(r, port)
            if nbr is None:
                continue
            g.add_edge(r, nbr[0], kind=kind.value)
    return g


def router_graph_stats(topology: Topology) -> Dict[str, float]:
    """Diameter, average shortest path length and edge counts of the router graph."""
    import networkx as nx

    g = to_networkx(topology)
    local_edges = sum(1 for _, _, d in g.edges(data=True) if d["kind"] == "local")
    global_edges = sum(1 for _, _, d in g.edges(data=True) if d["kind"] == "global")
    return {
        "routers": float(g.number_of_nodes()),
        "edges": float(g.number_of_edges()),
        "local_edges": float(local_edges),
        "global_edges": float(global_edges),
        "connected": float(nx.is_connected(g)),
        "diameter": float(nx.diameter(g)),
        "avg_shortest_path": float(nx.average_shortest_path_length(g)),
    }


def link_census(topology: Topology) -> Dict[str, int]:
    """Count unidirectional links of each kind, without networkx."""
    counts: Dict[str, int] = {"local": 0, "global": 0, "injection": 0}
    seen: set[Tuple[int, int, int, int]] = set()
    for r in range(topology.num_routers):
        for port in range(topology.router_radix):
            kind = topology.port_kind(port)
            if kind is PortKind.INJECTION:
                counts["injection"] += 1
                continue
            nbr = topology.neighbor(r, port)
            if nbr is None:
                continue
            key = (r, port, nbr[0], nbr[1])
            if key in seen:
                continue
            seen.add(key)
            counts[kind.value] += 1
    return counts
