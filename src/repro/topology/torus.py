"""k-ary n-cube (torus) topology with dateline virtual channels.

Routers sit on an ``n``-dimensional grid (``n`` in {2, 3}) with wrap-around
links: dimension ``d`` joins routers into rings of length ``dims[d]``.
Router ids are row-major with dimension 0 fastest::

    id = x0 + dims[0] * (x1 + dims[1] * x2)

Port layout (identical on every router)::

    [0, p)           injection / ejection ports
    p + 2*d          ring port of dimension d, plus direction  (coord + 1)
    p + 2*d + 1      ring port of dimension d, minus direction (coord - 1)

All ring ports carry the LOCAL kind — a torus is a direct network with no
global links (like the full mesh, its entire radix is injection + local).

Regions are *slabs of the last dimension*: all routers sharing the last
coordinate.  With row-major ids a slab is a contiguous router-id block, as
the region contract requires; ``ADV+i`` therefore shifts traffic ``i`` slabs
along the last ring, and ``ADV+h`` resolves to the tornado offset
``dims[-1] // 2`` (the classical worst case for rings: minimal routing
funnels every packet the same way around).

Minimal routing is dimension-ordered (dimension 0 first); within a ring the
shorter direction wins and ties break towards plus.  A packet therefore
takes at most ``dims[d] // 2`` hops per ring, in one fixed direction per
traversal.

Dateline VC schedule
--------------------
The strictly-increasing buffer-class argument of the other topologies
cannot cover rings: a ring's channels form a cycle, so some VC must be
reused around it.  The torus instead declares the classical *dateline*
schedule (Dally & Towles, ch. 14):

* every ring's wrap-around link (coordinate ``k-1 -> 0`` in the plus
  direction, ``0 -> k-1`` in the minus direction) is its **dateline**;
* a packet's hop uses buffer class ``(leg, dim, crossed)`` where ``leg`` is
  its Valiant leg (0 before the intermediate router, 1 after), ``dim`` the
  ring dimension, and ``crossed`` whether the current ring traversal has
  reached the dateline — the wrap hop itself and every later hop in the
  ring use ``crossed = 1``;
* the VC index is ``2 * leg + crossed`` (MIN and UGAL-minimal packets stay
  on leg 0, so plain minimal routing needs only 2 ring VCs and the Valiant
  mechanisms need 4 — the ordinary oblivious local-VC budget).

Along any allowed path the ``(leg, dim, crossed)`` classes are
lexicographically non-decreasing, each class's channels are confined to one
ring where the dateline cut prevents a cycle (a traversal covers at most
``k // 2 < k`` links, so post-dateline channels never wrap back), and
distinct classes are visited in a fixed global order — the channel
dependency graph is acyclic.  :func:`repro.routing.deadlock.validate_dateline_shapes`
re-proves this at construction time for every shape the path model declares.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config.parameters import TorusConfig
from repro.topology.base import PathModel, PortKind, Topology

__all__ = ["TorusTopology"]


def _dateline_shapes(num_dims: int) -> Tuple[Tuple[Tuple[int, int, int], ...], ...]:
    """Canonical (leg, dim, crossed) class sequences of torus paths.

    One maximal shape per leg structure: dimension-order legs visit each
    dimension's ``crossed = 0`` then ``crossed = 1`` class.  Every real path
    visits a subsequence of a maximal shape (skipping dimensions that need
    no correction and datelines that are not crossed), and the dateline
    validator's conditions are closed under subsequences.
    """
    minimal = tuple(
        (0, dim, crossed) for dim in range(num_dims) for crossed in (0, 1)
    )
    valiant = minimal + tuple(
        (1, dim, crossed) for dim in range(num_dims) for crossed in (0, 1)
    )
    return (minimal,), (valiant,)


class TorusTopology(Topology):
    """k-ary n-cube with dimension-order minimal routing and dateline VCs."""

    def __init__(self, config: TorusConfig):
        self.config = config
        self._p = config.p
        self._dims = config.dims
        self._n = len(config.dims)
        self._num_routers = config.num_routers
        self._radix = config.router_radix
        self._first_ring_port = self._p
        # Row-major strides, dimension 0 fastest.
        strides = []
        stride = 1
        for k in self._dims:
            strides.append(stride)
            stride *= k
        self._strides = tuple(strides)
        self.port_kinds: Tuple[PortKind, ...] = tuple(
            PortKind.INJECTION if port < self._p else PortKind.LOCAL
            for port in range(self._radix)
        )
        # Ring port -> (dimension, direction); direction is +1 or -1.
        self._port_ring: Dict[int, Tuple[int, int]] = {
            self._p + 2 * d + i: (d, +1 if i == 0 else -1)
            for d in range(self._n)
            for i in (0, 1)
        }
        # Port-indexed hot-path table (None for injection ports): the
        # dateline state machine runs once per routed hop, so resolve
        # (dim, stride, ring length, dateline coordinate, direction) in a
        # single list lookup instead of chained dict gets and divmods.  The
        # dateline coordinate is the one whose outgoing hop wraps: k-1 in
        # the plus direction, 0 in the minus direction.
        self._ring_info: List[Optional[Tuple[int, int, int, int, int]]] = [
            None
        ] * self._radix
        for port, (d, direction) in self._port_ring.items():
            wrap_coord = self._dims[d] - 1 if direction == +1 else 0
            self._ring_info[port] = (
                d,
                self._strides[d],
                self._dims[d],
                wrap_coord,
                direction,
            )
        diameter = sum(k // 2 for k in self._dims)
        minimal_kinds = tuple(("local",) * m for m in range(1, diameter + 1))
        dateline_min, dateline_val = _dateline_shapes(self._n)
        # The nonminimal ring escape (contention-triggered direction choice,
        # see repro.routing.adaptive) changes only how many links a traversal
        # covers, never its (leg, dim, crossed) class structure — so the
        # escape shapes equal the minimal ones.  The max-ring-hops tuples
        # declare the two policies' runtime worst cases (shortest-way
        # dimension-order routing: k // 2; a committed single-direction
        # escape: the k - 1 long way), which the extended dateline validator
        # checks against the ring lengths at construction.
        self._path_model = PathModel.from_minimal_paths(
            "torus",
            minimal_kinds,
            supports_nonminimal_ring_escape=True,
            vc_schedule="dateline",
            dateline_minimal_shapes=dateline_min,
            dateline_valiant_shapes=dateline_val,
            dateline_adaptive_shapes=dateline_min,
            ring_lengths=self._dims,
            dateline_max_ring_hops=tuple(k // 2 for k in self._dims),
            dateline_adaptive_max_ring_hops=tuple(k - 1 for k in self._dims),
        )

    # ------------------------------------------------------------------ sizes
    @property
    def num_routers(self) -> int:
        return self._num_routers

    @property
    def num_nodes(self) -> int:
        return self._num_routers * self._p

    @property
    def router_radix(self) -> int:
        return self._radix

    @property
    def nodes_per_router(self) -> int:
        return self._p

    # Regions of a torus are the slabs of its last dimension.
    @property
    def num_regions(self) -> int:
        return self._dims[-1]

    @property
    def routers_per_region(self) -> int:
        return self._num_routers // self._dims[-1]

    @property
    def path_model(self) -> PathModel:
        return self._path_model

    @property
    def hard_adversarial_offset(self) -> int:
        """ADV+h: the tornado offset ``dims[-1] // 2`` of the last ring."""
        return self._dims[-1] // 2

    # -------------------------------------------------------------- addressing
    @property
    def dims(self) -> Tuple[int, ...]:
        """Ring length of each dimension."""
        return self._dims

    def router_coords(self, router: int) -> Tuple[int, ...]:
        """Grid coordinates of ``router`` (dimension 0 first)."""
        coords = []
        for k in self._dims:
            router, c = divmod(router, k)
            coords.append(c)
        return tuple(coords)

    def router_id(self, coords: Tuple[int, ...]) -> int:
        if len(coords) != self._n:
            raise ValueError(f"expected {self._n} coordinates, got {coords}")
        rid = 0
        for c, k, stride in zip(coords, self._dims, self._strides):
            if not 0 <= c < k:
                raise ValueError(f"coordinate {c} out of range [0, {k})")
            rid += c * stride
        return rid

    def node_router(self, node: int) -> int:
        return node // self._p

    def node_port(self, node: int) -> int:
        return node % self._p

    def router_nodes(self, router: int) -> List[int]:
        base = router * self._p
        return list(range(base, base + self._p))

    # ------------------------------------------------------------------- ports
    def port_kind(self, port: int) -> PortKind:
        if 0 <= port < self._radix:
            return self.port_kinds[port]
        raise ValueError(f"port {port} out of range [0, {self._radix})")

    @property
    def injection_ports(self) -> range:
        return range(0, self._p)

    @property
    def ring_ports(self) -> range:
        return range(self._first_ring_port, self._radix)

    # Dragonfly-vocabulary aliases used by topology-generic helpers.
    local_ports = ring_ports

    @property
    def global_ports(self) -> range:
        return range(0)

    def ring_port(self, dim: int, direction: int) -> int:
        """Ring port of dimension ``dim`` in ``direction`` (+1 / -1)."""
        if not 0 <= dim < self._n:
            raise ValueError(f"dimension {dim} out of range [0, {self._n})")
        if direction not in (+1, -1):
            raise ValueError(f"direction must be +1 or -1, got {direction}")
        return self._first_ring_port + 2 * dim + (0 if direction == +1 else 1)

    def port_dimension(self, port: int) -> Tuple[int, int]:
        """``(dimension, direction)`` of ring ``port``."""
        ring = self._port_ring.get(port)
        if ring is None:
            raise ValueError(f"port {port} is not a ring port")
        return ring

    def opposite_ring_port(self, port: int) -> int:
        """The same dimension's port in the other direction.

        This is the nonminimal ring-escape candidate: diverting a packet
        through it sends it the long way (up to ``k - 1`` links) around the
        ring instead of the shorter minimal direction.
        """
        dim, direction = self.port_dimension(port)
        return self.ring_port(dim, -direction)

    def is_dateline_link(self, router: int, port: int) -> bool:
        """Whether the hop from ``router`` through ``port`` wraps around.

        The wrap-around link of each ring (plus direction: coordinate
        ``k-1 -> 0``; minus direction: ``0 -> k-1``) is the ring's dateline;
        traversing it bumps the packet's buffer class.
        """
        dim, direction = self.port_dimension(port)
        coord = (router // self._strides[dim]) % self._dims[dim]
        return coord == (self._dims[dim] - 1 if direction == +1 else 0)

    # --------------------------------------------------------------- neighbors
    def neighbor(self, router: int, port: int) -> Optional[Tuple[int, int]]:
        ring = self._port_ring.get(port)
        if ring is None:
            return None
        dim, direction = ring
        k = self._dims[dim]
        stride = self._strides[dim]
        coord = (router // stride) % k
        peer_coord = (coord + direction) % k
        peer = router + (peer_coord - coord) * stride
        # The reverse side of a plus link is the peer's minus port (and
        # vice versa), also in dimension ``dim``.
        return peer, self.ring_port(dim, -direction)

    def port_target_region(self, router: int, port: int) -> int:
        dim, direction = self.port_dimension(port)
        if dim != self._n - 1:
            return router // self.routers_per_region
        k = self._dims[-1]
        return (router // self.routers_per_region + direction) % k

    # ----------------------------------------------------------------- routing
    def ring_direction(self, coord: int, dst_coord: int, k: int) -> int:
        """Shortest ring direction from ``coord`` to ``dst_coord`` (tie: +1)."""
        forward = (dst_coord - coord) % k
        backward = (coord - dst_coord) % k
        return +1 if forward <= backward else -1

    def minimal_output_port(self, router: int, dst_node: int) -> int:
        """Dimension-ordered minimal output port towards ``dst_node``.

        Corrects the lowest differing dimension first, taking the shorter
        way around its ring (ties towards plus); ejects once co-located.
        """
        dst_router = dst_node // self._p
        if router == dst_router:
            return dst_node % self._p
        r, d = router, dst_router
        for dim, k in enumerate(self._dims):
            r, coord = divmod(r, k)
            d, dst_coord = divmod(d, k)
            if coord != dst_coord:
                return self.ring_port(dim, self.ring_direction(coord, dst_coord, k))
        raise AssertionError("distinct routers must differ in some dimension")

    def minimal_path_length(self, src_node: int, dst_node: int) -> int:
        r = self.node_router(src_node)
        d = self.node_router(dst_node)
        hops = 0
        for k in self._dims:
            r, coord = divmod(r, k)
            d, dst_coord = divmod(d, k)
            forward = (dst_coord - coord) % k
            hops += min(forward, k - forward)
        return hops

    # ----------------------------------------------------- dateline VC schedule
    def ring_vc(self, packet, router: int, port: int) -> int:
        """Dateline VC for ``packet``'s next hop: ``2 * leg + crossed``.

        ``crossed`` covers the hop itself: the wrap hop and everything after
        it in the current ring traversal use the bumped class.
        """
        dim, stride, k, wrap_coord, _ = self._ring_info[port]
        if (router // stride) % k == wrap_coord or (
            packet.ring_dim == dim and packet.ring_crossed
        ):
            return 2 * packet.vc_leg + 1
        return 2 * packet.vc_leg

    def commit_ring_hop(self, packet, router: int, port: int) -> None:
        """Track the packet's ring traversal state once a hop is granted.

        Entering a new dimension starts a fresh traversal (the dateline
        state of the previous ring does not carry over); the Valiant leg
        bump and its state reset happen on arrival at the intermediate
        router (:meth:`repro.routing.valiant.ValiantRouting.on_packet_arrival`).
        The traversal's direction is recorded on the packet so the
        ring-escape policy can hold a nonminimal traversal to its committed
        direction (re-evaluating it mid-ring could cross the dateline twice
        and void the deadlock argument).
        """
        info = self._ring_info[port]
        if info is None:
            return  # ejection: no ring state to track
        dim, stride, k, wrap_coord, direction = info
        wrap = (router // stride) % k == wrap_coord
        if packet.ring_dim != dim:
            packet.ring_dim = dim
            packet.ring_crossed = wrap
        elif wrap:
            packet.ring_crossed = True
        packet.ring_dir = direction

    # -------------------------------------------------------------- describing
    def describe(self) -> Dict[str, object]:
        return {
            "p": self._p,
            "dims": "x".join(str(k) for k in self._dims),
            "routers": self.num_routers,
            "nodes": self.num_nodes,
            "router_radix": self._radix,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(k) for k in self._dims)
        return f"TorusTopology(p={self._p}, dims={dims}, nodes={self.num_nodes})"
