"""Abstract topology interface and the per-topology *path model*.

A :class:`Topology` describes the static structure of the interconnection
network: how many routers and nodes exist, how router ports are classified
(injection / local / global), which router+port each port connects to, and
how minimal paths are computed.  The cycle-level network model
(:mod:`repro.network`) and the routing algorithms (:mod:`repro.routing`) are
written against this interface so that alternative topologies can be plugged
in; besides the canonical Dragonfly of :mod:`repro.topology.dragonfly` the
library ships a 2-D flattened butterfly, a full mesh, and a k-ary n-cube
torus (see :mod:`repro.topology.registry`).

Two topology-wide contracts keep the routing layer topology-agnostic:

**Dense, uniform addressing.**  Routers are identified by integers in
``[0, num_routers)`` and compute nodes by integers in ``[0, num_nodes)``;
every router attaches exactly ``nodes_per_router`` nodes in id order
(``node_router(n) == n // nodes_per_router``), and every *region* (see
below) covers ``routers_per_region`` consecutive router ids.

**Regions.**  Every topology partitions its routers into equal, contiguous
*regions* — the generalization of Dragonfly groups.  For the Dragonfly a
region is a group; for the flattened butterfly it is a row (the routers
joined all-to-all by first-dimension links); for the full mesh every router
is its own region.  Regions drive the adversarial traffic patterns (region
``r`` targets region ``r + i``), the Valiant intermediate choice (outside
the source region, which keeps Valiant paths inside the deadlock-free VC
schedule), and the contention-counter "destination region" bookkeeping.

The :class:`PathModel` published by each topology describes the *hop
classes* of its paths — which port kinds exist, the canonical hop-kind
sequences of minimal and Valiant paths, the VC schedule the topology's
paths are proven deadlock-free under, and capability flags — and is what
parameterizes the VC assignment check in :mod:`repro.routing.deadlock` and
the capability gates of the routing mechanisms.

Three VC schedules exist (:attr:`PathModel.vc_schedule`):

``"path_stage"``
    The Dragonfly-style assignment: every hop's ``(kind, vc)`` buffer class
    is derived from the packet's hop counters and must walk the strictly
    increasing global class order (dragonfly, flattened butterfly, full
    mesh).

``"dateline"``
    The torus-style assignment for ring links: each ring dimension has a
    *dateline* (its wrap-around link), crossing it bumps the buffer class,
    and dimension-order legs visit ``(leg, dimension, crossed)`` classes in
    lexicographically increasing order.  Topologies declaring this schedule
    implement :meth:`Topology.ring_vc` / :meth:`Topology.commit_ring_hop`,
    which the routing layer calls instead of the path-stage formula.

``"up_down"``
    The fat-tree assignment: the VC is a pure function of the output
    port's *direction* — up hops ride VC 0, down hops VC 1 — published as
    the port-indexed table :attr:`Topology.updown_port_vcs`.  Paths climb
    to an ancestor and descend exactly once (a single turn); because every
    ``(direction, link level)`` buffer class is visited in strictly
    ascending rank order (up hops on ascending link levels, down hops on
    descending levels but *ascending* class rank), the channel dependency
    graph is acyclic with no dateline machinery.  Checked by
    :func:`repro.routing.deadlock.validate_updown_shapes`.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["PortKind", "PathModel", "Topology"]


class PortKind(enum.Enum):
    """Classification of a router port."""

    INJECTION = "injection"
    LOCAL = "local"
    GLOBAL = "global"


def _concat_paths(
    firsts: Tuple[Tuple[str, ...], ...],
    seconds: Tuple[Tuple[str, ...], ...],
) -> Tuple[Tuple[str, ...], ...]:
    """Valiant shapes: every first leg alone (intermediate == destination
    router) plus every first+second concatenation."""
    seen: List[Tuple[str, ...]] = []
    for first in firsts:
        if first and first not in seen:
            seen.append(first)
        for second in seconds:
            combined = first + second
            if combined and combined not in seen:
                seen.append(combined)
    return tuple(seen)


@dataclass(frozen=True)
class PathModel:
    """Hop-class description of a topology's paths.

    The hop-kind sequences (tuples of ``"local"`` / ``"global"`` strings in
    path order) enumerate the canonical shapes of router-to-router paths:
    ``minimal_hop_kinds`` covers every minimal path, ``valiant_hop_kinds``
    every Valiant path (minimal to the intermediate router, then minimal to
    the destination).  :func:`repro.routing.deadlock.validate_hop_sequences`
    checks that the path-stage VC assignment walks strictly increasing
    buffer classes along each of them within a given VC budget, which is the
    topology-generic deadlock-freedom argument.
    """

    #: Topology registry name (``"dragonfly"``, ``"flattened_butterfly"``...).
    topology: str
    #: Whether the topology has GLOBAL-kind ports at all (the full mesh
    #: does not; its entire radix is injection + local).
    has_global_ports: bool
    #: Maximum router-to-router hops on any minimal path.
    max_minimal_hops: int
    #: Maximum router-to-router hops on any Valiant path.
    max_valiant_hops: int
    #: Canonical hop-kind sequences of minimal paths (excluding the empty
    #: same-router path).
    minimal_hop_kinds: Tuple[Tuple[str, ...], ...]
    #: Canonical hop-kind sequences of Valiant paths.
    valiant_hop_kinds: Tuple[Tuple[str, ...], ...] = field(default=())
    #: Whether the group-style in-transit adaptive policy (MM+L global
    #: misrouting towards an intermediate region, local detours inside
    #: regions) is defined for this topology.  True for the Dragonfly and
    #: the flattened butterfly (rows are groups, column links are the
    #: global links); mechanisms that need *some* in-transit policy and
    #: find neither this flag nor :attr:`supports_nonminimal_ring_escape`
    #: fail loudly at construction.
    supports_in_transit_adaptive: bool = False
    #: Whether the ring-escape in-transit adaptive policy is defined: on a
    #: dateline-schedule topology (the torus) a packet entering a ring may
    #: be diverted the *nonminimal direction* around it (cf. OutFlank
    #: routing), committing to that direction for the whole traversal so
    #: the dateline argument still cuts every ring cycle.
    supports_nonminimal_ring_escape: bool = False
    #: Canonical hop-kind sequences of the group-style in-transit adaptive
    #: paths (MM+L global misroute, local proxy hop, local detours) on
    #: path-stage topologies.  Validated at construction for every
    #: in-transit adaptive mechanism, on top of the MIN/Valiant shapes.
    adaptive_hop_kinds: Tuple[Tuple[str, ...], ...] = field(default=())
    #: Which VC schedule the topology's paths are deadlock-free under:
    #: ``"path_stage"`` (strictly increasing buffer classes derived from hop
    #: counters) or ``"dateline"`` (ring topologies; dateline crossings bump
    #: the class, see :func:`repro.routing.deadlock.validate_dateline_shapes`).
    vc_schedule: str = "path_stage"
    #: For the dateline schedule only: canonical class sequences of minimal
    #: paths.  Each shape is a tuple of ``(leg, dimension, crossed)`` buffer
    #: classes in path order; consecutive hops may stay in the same class
    #: (a packet traversing a ring occupies one class until the dateline),
    #: so the declared classes are the *distinct* classes in visit order.
    dateline_minimal_shapes: Tuple[Tuple[Tuple[int, int, int], ...], ...] = field(
        default=()
    )
    #: For the dateline schedule only: canonical class sequences of Valiant
    #: paths (first leg to the intermediate router, second leg to the
    #: destination — the second leg uses the disjoint higher class block).
    dateline_valiant_shapes: Tuple[Tuple[Tuple[int, int, int], ...], ...] = field(
        default=()
    )
    #: For the dateline schedule only: canonical class sequences of the
    #: ring-escape in-transit adaptive paths.  An escape changes only the
    #: *length* of a ring traversal (up to ``k - 1`` links instead of
    #: ``k // 2``), not its class structure, so on the torus these equal the
    #: minimal shapes; the extended dateline validator re-checks them with
    #: the longer traversal bound against :attr:`ring_lengths`.
    dateline_adaptive_shapes: Tuple[Tuple[Tuple[int, int, int], ...], ...] = field(
        default=()
    )
    #: For the dateline schedule only: the ring length of every dimension,
    #: so the validator can prove the declared worst-case traversals never
    #: cover a whole ring and close its dependency cycle.
    ring_lengths: Tuple[int, ...] = field(default=())
    #: For the dateline schedule only: per-dimension worst-case links one
    #: *minimal-direction* traversal covers (``k // 2`` under shortest-way
    #: dimension-order routing).  A declaration of the routing policy's
    #: runtime behavior, checked against :attr:`ring_lengths` — not derived
    #: from it — so a policy whose traversals could wrap a whole ring fails
    #: loudly at construction instead of shipping the deadlock.
    dateline_max_ring_hops: Tuple[int, ...] = field(default=())
    #: For the dateline schedule only: per-dimension worst-case links one
    #: *escaped* traversal covers (``k - 1`` for the committed
    #: single-direction long way).  Same contract as
    #: :attr:`dateline_max_ring_hops`; an escape variant allowed to flip
    #: direction mid-ring would have to declare ``k`` or more and be
    #: rejected.
    dateline_adaptive_max_ring_hops: Tuple[int, ...] = field(default=())
    #: Whether the per-hop *uplink multipath* adaptive policy is defined:
    #: on an up/down-schedule topology (the fat tree) every connected
    #: uplink of a router below the destination's nearest common ancestor
    #: is equal-cost, so an in-transit adaptive mechanism may divert an up
    #: hop to any of them without changing the path length or leaving the
    #: up/down class schedule.  The third in-transit capability, next to
    #: :attr:`supports_in_transit_adaptive` (group-style MM+L) and
    #: :attr:`supports_nonminimal_ring_escape` (dateline escape).
    supports_uplink_multipath: bool = False
    #: For the up/down schedule only: number of *link levels* (``levels-1``
    #: for a k-ary n-tree; link level ``l`` joins router levels ``l`` and
    #: ``l + 1``).
    updown_link_levels: int = 0
    #: For the up/down schedule only: canonical class sequences of minimal
    #: paths.  Each shape is a tuple of ``(direction, link_level)`` classes
    #: in path order (direction 0 = up, 1 = down); the validator requires
    #: strictly ascending class ranks (up level ``l`` has rank ``l``, down
    #: level ``l`` rank ``2 * L - 1 - l``), which forces ascending up legs,
    #: a single turn, and descending down legs.
    updown_minimal_shapes: Tuple[Tuple[Tuple[int, int], ...], ...] = field(
        default=()
    )
    #: For the up/down schedule only: canonical class sequences of Valiant
    #: paths.  The intermediate is a root, so these are the full-height
    #: minimal shapes — Valiant changes which ancestor is reached, never
    #: the up-then-down structure, so no extra VCs are needed.
    updown_valiant_shapes: Tuple[Tuple[Tuple[int, int], ...], ...] = field(
        default=()
    )
    #: For the up/down schedule only: canonical class sequences of the
    #: uplink-multipath adaptive paths.  A diverted up hop is equal-cost,
    #: so these equal the minimal shapes.
    updown_adaptive_shapes: Tuple[Tuple[Tuple[int, int], ...], ...] = field(
        default=()
    )

    @classmethod
    def from_minimal_paths(
        cls,
        topology: str,
        minimal_hop_kinds: Tuple[Tuple[str, ...], ...],
        *,
        valiant_first_legs: Optional[Tuple[Tuple[str, ...], ...]] = None,
        supports_in_transit_adaptive: bool = False,
        supports_nonminimal_ring_escape: bool = False,
        adaptive_hop_kinds: Tuple[Tuple[str, ...], ...] = (),
        vc_schedule: str = "path_stage",
        dateline_minimal_shapes: Tuple[
            Tuple[Tuple[int, int, int], ...], ...
        ] = (),
        dateline_valiant_shapes: Tuple[
            Tuple[Tuple[int, int, int], ...], ...
        ] = (),
        dateline_adaptive_shapes: Tuple[
            Tuple[Tuple[int, int, int], ...], ...
        ] = (),
        ring_lengths: Tuple[int, ...] = (),
        dateline_max_ring_hops: Tuple[int, ...] = (),
        dateline_adaptive_max_ring_hops: Tuple[int, ...] = (),
    ) -> "PathModel":
        """Derive the full model from the minimal path shapes.

        Valiant paths are the concatenations of a *first leg* (source to
        intermediate router) and a minimal second leg.  Because the Valiant
        intermediate is drawn outside the source region, the first leg is
        never a pure intra-region (all-local) path on topologies with more
        than one router per region; ``valiant_first_legs`` defaults to the
        minimal shapes with pure-local sequences removed whenever a mixed
        shape exists.
        """
        if valiant_first_legs is None:
            non_local = tuple(
                seq for seq in minimal_hop_kinds if "global" in seq
            )
            valiant_first_legs = non_local if non_local else minimal_hop_kinds
        valiant = _concat_paths(valiant_first_legs, minimal_hop_kinds)
        has_global = any("global" in seq for seq in minimal_hop_kinds)
        return cls(
            topology=topology,
            has_global_ports=has_global,
            max_minimal_hops=max((len(s) for s in minimal_hop_kinds), default=0),
            max_valiant_hops=max((len(s) for s in valiant), default=0),
            minimal_hop_kinds=minimal_hop_kinds,
            valiant_hop_kinds=valiant,
            supports_in_transit_adaptive=supports_in_transit_adaptive,
            supports_nonminimal_ring_escape=supports_nonminimal_ring_escape,
            adaptive_hop_kinds=adaptive_hop_kinds,
            vc_schedule=vc_schedule,
            dateline_minimal_shapes=dateline_minimal_shapes,
            dateline_valiant_shapes=dateline_valiant_shapes,
            dateline_adaptive_shapes=dateline_adaptive_shapes,
            ring_lengths=ring_lengths,
            dateline_max_ring_hops=dateline_max_ring_hops,
            dateline_adaptive_max_ring_hops=dateline_adaptive_max_ring_hops,
        )


class Topology(ABC):
    """Static description of an interconnection network.

    Routers are identified by integers in ``[0, num_routers)`` and compute
    nodes by integers in ``[0, num_nodes)``.  Every router exposes
    ``router_radix`` ports identified by integers in ``[0, router_radix)``.
    Implementations must also set :attr:`port_kinds` — a tuple mapping port
    index to :class:`PortKind`, identical on every router — which the
    routing hot paths index directly instead of calling :meth:`port_kind`.
    """

    #: Port index -> kind table (set by concrete topologies in ``__init__``).
    port_kinds: Tuple[PortKind, ...]

    #: Whether node ids are dense across routers (``node_router(n) ==
    #: n // nodes_per_router`` with ``num_nodes == num_routers * p``).
    #: True for every flat topology; the fat tree attaches nodes to its
    #: *leaf* switches only and sets this False, which relaxes the dense
    #: addressing checks in :meth:`validate` (the routing layer resolves
    #: node -> router through :meth:`node_router` either way).
    dense_node_map: bool = True

    # -- Sizes --------------------------------------------------------------
    @property
    @abstractmethod
    def num_routers(self) -> int:
        """Total number of routers."""

    @property
    @abstractmethod
    def num_nodes(self) -> int:
        """Total number of compute nodes."""

    @property
    @abstractmethod
    def router_radix(self) -> int:
        """Number of ports per router."""

    @property
    @abstractmethod
    def nodes_per_router(self) -> int:
        """Compute nodes attached to each router (uniform across routers)."""

    # -- Regions ------------------------------------------------------------
    @property
    @abstractmethod
    def num_regions(self) -> int:
        """Number of regions (Dragonfly groups, butterfly rows, ...)."""

    @property
    @abstractmethod
    def routers_per_region(self) -> int:
        """Routers per region (uniform; regions cover contiguous ids)."""

    @property
    @abstractmethod
    def path_model(self) -> PathModel:
        """The hop-class path model of this topology."""

    def router_region(self, router: int) -> int:
        """Region of ``router`` (regions are contiguous id blocks)."""
        return router // self.routers_per_region

    def router_position(self, router: int) -> int:
        """Position of ``router`` within its region."""
        return router % self.routers_per_region

    def node_region(self, node: int) -> int:
        """Region of the router that ``node`` attaches to."""
        return self.router_region(self.node_router(node))

    def region_routers(self, region: int) -> List[int]:
        """Routers of ``region`` in ascending id order."""
        base = region * self.routers_per_region
        return list(range(base, base + self.routers_per_region))

    def region_node_range(self, region: int) -> Tuple[int, int]:
        """Half-open node-id range ``[low, high)`` of ``region``."""
        nodes_per_region = self.routers_per_region * self.nodes_per_router
        low = region * nodes_per_region
        return low, low + nodes_per_region

    def region_nodes(self, region: int) -> List[int]:
        low, high = self.region_node_range(region)
        return list(range(low, high))

    #: Offset used by the ``ADV+h`` pattern name (the paper's hardest
    #: adversarial shift).  Topologies without a distinguished offset keep 1.
    @property
    def hard_adversarial_offset(self) -> int:
        return 1

    # -- Node / router mapping ----------------------------------------------
    @abstractmethod
    def node_router(self, node: int) -> int:
        """Router to which ``node`` is attached."""

    @abstractmethod
    def node_port(self, node: int) -> int:
        """Injection/ejection port index of ``node`` at its router."""

    @abstractmethod
    def router_nodes(self, router: int) -> List[int]:
        """Compute nodes attached to ``router``."""

    # -- Ports --------------------------------------------------------------
    @abstractmethod
    def port_kind(self, port: int) -> PortKind:
        """Classify port ``port`` (same layout on every router)."""

    @abstractmethod
    def neighbor(self, router: int, port: int) -> Optional[Tuple[int, int]]:
        """Return ``(neighbor_router, neighbor_port)`` reached through ``port``.

        Returns ``None`` for injection/ejection ports (they connect to a
        node, not to another router), and for unconnected ports (see
        :meth:`port_connected`).
        """

    def port_connected(self, router: int, port: int) -> bool:
        """Whether non-injection port ``port`` of ``router`` has a link.

        Flat topologies wire every non-injection port, so the default is
        True.  Topologies with a uniform port layout but position-dependent
        wiring (the fat tree: leaf switches have no children, roots no
        parents) override this; :meth:`neighbor` returns ``None`` exactly
        where this returns False, and validation plus the fault machinery
        skip such ports instead of flagging a broken link.
        """
        return True

    def port_target_region(self, router: int, port: int) -> int:
        """Region of the router reached through ``port`` of ``router``.

        Topologies may override this with arithmetic faster than the
        generic neighbor lookup (the Valiant hot path calls it for every
        global-port decision).
        """
        nbr = self.neighbor(router, port)
        if nbr is None:
            raise ValueError(f"port {port} is an injection port")
        return self.router_region(nbr[0])

    # -- Routing helpers ----------------------------------------------------
    @abstractmethod
    def minimal_output_port(self, router: int, dst_node: int) -> int:
        """Output port of ``router`` on the minimal path towards ``dst_node``."""

    @abstractmethod
    def minimal_path_length(self, src_node: int, dst_node: int) -> int:
        """Number of router-to-router hops on the minimal path."""

    def minimal_route_to_router(self, router: int, dst_router: int) -> int:
        """Output port on the minimal path from ``router`` towards ``dst_router``.

        Unlike :meth:`minimal_output_port` the destination is a *router*;
        used by Valiant routing to reach the intermediate router.  Raises if
        ``router == dst_router`` (there is no hop to take).
        """
        if router == dst_router:
            raise ValueError("already at the destination router")
        return self.minimal_output_port(router, dst_router * self.nodes_per_router)

    def region_gateway(self, router: int, target_region: int) -> Tuple[int, bool]:
        """Next hop ``(output_port, is_global)`` from ``router`` into
        ``target_region`` along a shortest inter-region route.

        This is what lets the group-style in-transit adaptive policy head
        for the *region* chosen by a global misroute without caring how the
        topology wires regions together: on the Dragonfly the gateway is
        the group's single global link towards the target (possibly behind
        one local hop), on the flattened butterfly it is the router's own
        column link to the target row.  Only required when the path model
        declares :attr:`PathModel.supports_in_transit_adaptive`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define a region gateway (required "
            "for group-style in-transit adaptive routing only)"
        )

    def minimal_router_path(self, src_router: int, dst_router: int) -> List[int]:
        """Sequence of routers (inclusive) on the minimal path between routers."""
        path = [src_router]
        r = src_router
        if src_router == dst_router:
            return path
        dst_node_proxy = dst_router * self.nodes_per_router
        while r != dst_router:
            port = self.minimal_output_port(r, dst_node_proxy)
            nbr = self.neighbor(r, port)
            assert nbr is not None
            r = nbr[0]
            path.append(r)
            if len(path) > self.path_model.max_minimal_hops + 1:
                raise RuntimeError(
                    "minimal path exceeds the topology's declared diameter"
                )
        return path

    def valiant_intermediate_router(self, source_router: int, rng) -> int:
        """Uniformly random Valiant intermediate router for ``source_router``.

        The default draws uniformly over the routers *outside* the source
        region — on path-stage and dateline topologies the VC schedules
        prove exactly the source->intermediate->destination shapes that
        such a choice produces.  Topologies whose deadlock argument needs a
        structurally constrained intermediate override this (the fat tree
        draws a *root*, so both Valiant legs keep the up-then-down shape).

        Consumes exactly one draw from ``rng``; the draw count and order
        are part of the determinism contract.
        """
        rpr = self.routers_per_region
        src_region = self.router_region(source_router)
        choice = int(rng.integers(0, self.num_routers - rpr))
        region, position = divmod(choice, rpr)
        if region >= src_region:
            region += 1
        return region * rpr + position

    # -- Dateline VC schedule (ring topologies only) -------------------------
    def ring_vc(self, packet, router: int, port: int) -> int:
        """Virtual channel for ``packet``'s next hop through ring ``port``.

        Only meaningful on topologies whose path model declares
        ``vc_schedule == "dateline"`` (the torus): the VC encodes the
        packet's Valiant leg and whether its current ring traversal has
        crossed the dimension's dateline.  The routing layer calls this
        instead of the path-stage formula whenever the schedule is declared.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not declare the dateline VC schedule"
        )

    def commit_ring_hop(self, packet, router: int, port: int) -> None:
        """Update ``packet``'s ring/dateline state after a granted hop.

        Called exactly once per granted non-ejection hop on dateline
        topologies (from :meth:`repro.routing.base.RoutingAlgorithm.on_grant`).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not declare the dateline VC schedule"
        )

    # -- Up/down VC schedule (fat tree only) ---------------------------------
    @property
    def updown_port_vcs(self) -> Tuple[int, ...]:
        """Port-indexed VC table of the up/down schedule.

        Only meaningful on topologies whose path model declares
        ``vc_schedule == "up_down"`` (the fat tree): entry ``port`` is the
        VC every packet must ride when leaving through ``port`` (injection
        and up ports 0, down ports 1).  The routing layer indexes this
        table instead of the path-stage formula whenever the schedule is
        declared.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not declare the up/down VC schedule"
        )

    @property
    def uplink_ports(self) -> Tuple[int, ...]:
        """Ports that climb towards the roots (uniform across routers).

        Only meaningful on topologies whose path model declares
        :attr:`PathModel.supports_uplink_multipath`: the adaptive uplink
        candidate set at a router whose minimal port is one of these is
        the *rest* of them (see
        :func:`repro.routing.misrouting.compute_uplink_candidates`).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not declare uplink ports (required "
            "for the uplink-multipath adaptive policy only)"
        )

    # -- Convenience --------------------------------------------------------
    def is_injection_port(self, port: int) -> bool:
        return self.port_kind(port) is PortKind.INJECTION

    def is_local_port(self, port: int) -> bool:
        return self.port_kind(port) is PortKind.LOCAL

    def is_global_port(self, port: int) -> bool:
        return self.port_kind(port) is PortKind.GLOBAL

    def validate(self) -> None:
        """Check structural invariants (bidirectional links, port kinds).

        Raises ``AssertionError`` on an inconsistent topology.  Intended for
        tests and for validating new topology implementations.
        """
        assert len(self.port_kinds) == self.router_radix
        assert self.num_routers == self.num_regions * self.routers_per_region
        if self.dense_node_map:
            assert self.num_nodes == self.num_routers * self.nodes_per_router
        else:
            assert self.num_nodes == sum(
                len(self.router_nodes(r)) for r in range(self.num_routers)
            )
        for r in range(self.num_routers):
            for port in range(self.router_radix):
                kind = self.port_kind(port)
                assert self.port_kinds[port] is kind
                nbr = self.neighbor(r, port)
                if kind is PortKind.INJECTION:
                    assert nbr is None, (
                        f"injection port {port} of router {r} must not have a "
                        f"router neighbor, got {nbr}"
                    )
                    continue
                if not self.port_connected(r, port):
                    assert nbr is None, (
                        f"port {port} of router {r} is declared unconnected "
                        f"but has a neighbor {nbr}"
                    )
                    continue
                assert nbr is not None, (
                    f"non-injection port {port} of router {r} has no neighbor"
                )
                nr, nport = nbr
                assert 0 <= nr < self.num_routers
                assert self.port_kind(nport) is kind, (
                    f"link {r}:{port} -> {nr}:{nport} joins ports of different kinds"
                )
                back = self.neighbor(nr, nport)
                assert back == (r, port), (
                    f"link {r}:{port} -> {nr}:{nport} is not bidirectional "
                    f"(reverse resolves to {back})"
                )
                assert self.port_target_region(r, port) == self.router_region(nr)
        for n in range(self.num_nodes):
            r = self.node_router(n)
            assert 0 <= r < self.num_routers
            if self.dense_node_map:
                assert r == n // self.nodes_per_router, (
                    "node ids must be dense per router (node_router(n) == n // p)"
                )
            assert n in self.router_nodes(r)
            assert self.port_kind(self.node_port(n)) is PortKind.INJECTION
            assert self.node_region(n) == self.router_region(r)
