"""Abstract topology interface.

A :class:`Topology` describes the static structure of the interconnection
network: how many routers and nodes exist, how router ports are classified
(injection / local / global), which router+port each port connects to, and
how minimal paths are computed.  The cycle-level network model
(:mod:`repro.network`) and the routing algorithms (:mod:`repro.routing`) are
written against this interface so that alternative topologies can be plugged
in; the paper's evaluation (and this reproduction) uses the canonical
Dragonfly of :mod:`repro.topology.dragonfly`.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

__all__ = ["PortKind", "Topology"]


class PortKind(enum.Enum):
    """Classification of a router port."""

    INJECTION = "injection"
    LOCAL = "local"
    GLOBAL = "global"


class Topology(ABC):
    """Static description of an interconnection network.

    Routers are identified by integers in ``[0, num_routers)`` and compute
    nodes by integers in ``[0, num_nodes)``.  Every router exposes
    ``router_radix`` ports identified by integers in ``[0, router_radix)``.
    """

    # -- Sizes --------------------------------------------------------------
    @property
    @abstractmethod
    def num_routers(self) -> int:
        """Total number of routers."""

    @property
    @abstractmethod
    def num_nodes(self) -> int:
        """Total number of compute nodes."""

    @property
    @abstractmethod
    def router_radix(self) -> int:
        """Number of ports per router."""

    # -- Node / router mapping ----------------------------------------------
    @abstractmethod
    def node_router(self, node: int) -> int:
        """Router to which ``node`` is attached."""

    @abstractmethod
    def node_port(self, node: int) -> int:
        """Injection/ejection port index of ``node`` at its router."""

    @abstractmethod
    def router_nodes(self, router: int) -> List[int]:
        """Compute nodes attached to ``router``."""

    # -- Ports --------------------------------------------------------------
    @abstractmethod
    def port_kind(self, port: int) -> PortKind:
        """Classify port ``port`` (same layout on every router)."""

    @abstractmethod
    def neighbor(self, router: int, port: int) -> Optional[Tuple[int, int]]:
        """Return ``(neighbor_router, neighbor_port)`` reached through ``port``.

        Returns ``None`` for injection/ejection ports (they connect to a
        node, not to another router).
        """

    # -- Routing helpers ----------------------------------------------------
    @abstractmethod
    def minimal_output_port(self, router: int, dst_node: int) -> int:
        """Output port of ``router`` on the minimal path towards ``dst_node``."""

    @abstractmethod
    def minimal_path_length(self, src_node: int, dst_node: int) -> int:
        """Number of router-to-router hops on the minimal path."""

    # -- Convenience --------------------------------------------------------
    def is_injection_port(self, port: int) -> bool:
        return self.port_kind(port) is PortKind.INJECTION

    def is_local_port(self, port: int) -> bool:
        return self.port_kind(port) is PortKind.LOCAL

    def is_global_port(self, port: int) -> bool:
        return self.port_kind(port) is PortKind.GLOBAL

    def validate(self) -> None:
        """Check structural invariants (bidirectional links, port kinds).

        Raises ``AssertionError`` on an inconsistent topology.  Intended for
        tests and for validating new topology implementations.
        """
        for r in range(self.num_routers):
            for port in range(self.router_radix):
                kind = self.port_kind(port)
                nbr = self.neighbor(r, port)
                if kind is PortKind.INJECTION:
                    assert nbr is None, (
                        f"injection port {port} of router {r} must not have a "
                        f"router neighbor, got {nbr}"
                    )
                    continue
                assert nbr is not None, (
                    f"non-injection port {port} of router {r} has no neighbor"
                )
                nr, nport = nbr
                assert 0 <= nr < self.num_routers
                assert self.port_kind(nport) is kind, (
                    f"link {r}:{port} -> {nr}:{nport} joins ports of different kinds"
                )
                back = self.neighbor(nr, nport)
                assert back == (r, port), (
                    f"link {r}:{port} -> {nr}:{nport} is not bidirectional "
                    f"(reverse resolves to {back})"
                )
        for n in range(self.num_nodes):
            r = self.node_router(n)
            assert 0 <= r < self.num_routers
            assert n in self.router_nodes(r)
            assert self.port_kind(self.node_port(n)) is PortKind.INJECTION
