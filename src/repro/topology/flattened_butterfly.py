"""2-D flattened butterfly topology (Kim et al., ISCA 2007; k-ary 2-flat).

Routers sit on a ``rows x cols`` grid; router ``(x, y)`` (column ``x``, row
``y``) has id ``y * cols + x``.  Each router is joined all-to-all with the
other routers of its *row* through first-dimension links and all-to-all with
the other routers of its *column* through second-dimension links, and
attaches ``p`` compute nodes.

Port layout (identical on every router)::

    [0, p)                      injection / ejection ports
    [p, p + cols - 1)           row ports, LOCAL kind (one per other column)
    [p + cols - 1, radix)       column ports, GLOBAL kind (one per other row)

Mapping onto the Dragonfly vocabulary: a row is the analogue of a group (a
clique of LOCAL links), and the column links play the role of the global
links — which is why rows are the topology's *regions* and the column ports
carry the GLOBAL port kind.  Unlike the Dragonfly, each pair of rows is
joined by ``cols`` parallel links (one per column) and a column link lands
directly on the destination router, so minimal paths have at most two hops.

Minimal routing is dimension-ordered, row first: correct the column with a
row (LOCAL) hop, then the row with a column (GLOBAL) hop.  This mirrors the
Dragonfly's local-then-global minimal hierarchy and keeps every minimal and
Valiant path inside the strictly increasing buffer-class schedule of
:mod:`repro.routing.deadlock` (hop shapes ``l``, ``g``, ``l-g`` and their
two-leg Valiant concatenations).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config.parameters import FlattenedButterflyConfig
from repro.topology.base import PathModel, PortKind, Topology

__all__ = ["FlattenedButterflyTopology"]

#: Minimal hop shapes: one row hop, one column hop, or row-then-column.
_MINIMAL_HOP_KINDS = (
    ("local",),
    ("global",),
    ("local", "global"),
)

#: Hop shapes of the in-transit adaptive (MM+L) paths.  A global misroute
#: takes a column link to an intermediate row — directly, or behind a local
#: proxy row hop — and then continues minimally (row hop to the destination
#: column, column hop to the destination row); a local detour adds one row
#: hop in the source row (intra-row traffic) or the intermediate row.  All
#: shapes stay inside the strictly increasing buffer-class order under the
#: nonminimal VC budget, which is what makes the Dragonfly's MM+L policy
#: sound on the butterfly (checked at mechanism construction).
_ADAPTIVE_HOP_KINDS = (
    ("local", "local"),
    ("global", "global"),
    ("global", "local", "global"),
    ("global", "local", "local", "global"),
    ("local", "global", "global"),
    ("local", "global", "local", "global"),
    ("local", "global", "local", "local", "global"),
)


class FlattenedButterflyTopology(Topology):
    """2-D flattened butterfly with dimension-ordered (row-first) routing."""

    def __init__(self, config: FlattenedButterflyConfig):
        self.config = config
        self._p = config.p
        self._rows = config.rows
        self._cols = config.cols
        self._num_routers = config.num_routers
        self._radix = config.router_radix
        # Port-range boundaries.
        self._first_row_port = self._p
        self._first_col_port = self._p + self._cols - 1
        self.port_kinds: Tuple[PortKind, ...] = tuple(
            PortKind.INJECTION
            if port < self._first_row_port
            else (PortKind.LOCAL if port < self._first_col_port else PortKind.GLOBAL)
            for port in range(self._radix)
        )
        self._path_model = PathModel.from_minimal_paths(
            "flattened_butterfly",
            _MINIMAL_HOP_KINDS,
            supports_in_transit_adaptive=True,
            adaptive_hop_kinds=_ADAPTIVE_HOP_KINDS,
        )

    # ------------------------------------------------------------------ sizes
    @property
    def num_routers(self) -> int:
        return self._num_routers

    @property
    def num_nodes(self) -> int:
        return self._num_routers * self._p

    @property
    def router_radix(self) -> int:
        return self._radix

    @property
    def nodes_per_router(self) -> int:
        return self._p

    # Regions of a flattened butterfly are its rows.
    @property
    def num_regions(self) -> int:
        return self._rows

    @property
    def routers_per_region(self) -> int:
        return self._cols

    @property
    def path_model(self) -> PathModel:
        return self._path_model

    # -------------------------------------------------------------- addressing
    def router_coords(self, router: int) -> Tuple[int, int]:
        """Grid coordinates ``(column, row)`` of ``router``."""
        y, x = divmod(router, self._cols)
        return x, y

    def router_id(self, column: int, row: int) -> int:
        if not (0 <= column < self._cols):
            raise ValueError(f"column {column} out of range [0, {self._cols})")
        if not (0 <= row < self._rows):
            raise ValueError(f"row {row} out of range [0, {self._rows})")
        return row * self._cols + column

    def node_router(self, node: int) -> int:
        return node // self._p

    def node_port(self, node: int) -> int:
        return node % self._p

    def router_nodes(self, router: int) -> List[int]:
        base = router * self._p
        return list(range(base, base + self._p))

    # ------------------------------------------------------------------- ports
    def port_kind(self, port: int) -> PortKind:
        if 0 <= port < self._radix:
            return self.port_kinds[port]
        raise ValueError(f"port {port} out of range [0, {self._radix})")

    @property
    def injection_ports(self) -> range:
        return range(0, self._p)

    @property
    def row_ports(self) -> range:
        return range(self._first_row_port, self._first_col_port)

    @property
    def column_ports(self) -> range:
        return range(self._first_col_port, self._radix)

    # Dragonfly-vocabulary aliases used by topology-generic helpers.
    local_ports = row_ports
    global_ports = column_ports

    def row_port_to(self, column: int, peer_column: int) -> int:
        """Row port of a router in ``column`` leading to ``peer_column``."""
        if column == peer_column:
            raise ValueError("a router has no row port to itself")
        idx = peer_column if peer_column < column else peer_column - 1
        return self._first_row_port + idx

    def column_port_to(self, row: int, peer_row: int) -> int:
        """Column port of a router in ``row`` leading to ``peer_row``."""
        if row == peer_row:
            raise ValueError("a router has no column port to itself")
        idx = peer_row if peer_row < row else peer_row - 1
        return self._first_col_port + idx

    def _row_port_peer(self, column: int, port: int) -> int:
        idx = port - self._first_row_port
        return idx if idx < column else idx + 1

    def _column_port_peer(self, row: int, port: int) -> int:
        idx = port - self._first_col_port
        return idx if idx < row else idx + 1

    def region_gateway(self, router: int, target_region: int) -> Tuple[int, bool]:
        """Next hop towards row ``target_region``: every router has its own
        column link directly into every other row, so the gateway is always
        the local column port (a single GLOBAL hop, no proxy needed)."""
        row = router // self._cols
        if row == target_region:
            raise ValueError("router is already inside the target region")
        return self.column_port_to(row, target_region), True

    def port_target_region(self, router: int, port: int) -> int:
        """Row reached through ``port`` (the router's own row for row ports)."""
        kind = self.port_kinds[port]
        if kind is PortKind.INJECTION:
            raise ValueError(f"port {port} is an injection port")
        row = router // self._cols
        if kind is PortKind.LOCAL:
            return row
        return self._column_port_peer(row, port)

    # --------------------------------------------------------------- neighbors
    def neighbor(self, router: int, port: int) -> Optional[Tuple[int, int]]:
        kind = self.port_kinds[port]
        if kind is PortKind.INJECTION:
            return None
        x, y = self.router_coords(router)
        if kind is PortKind.LOCAL:
            peer_x = self._row_port_peer(x, port)
            return self.router_id(peer_x, y), self.row_port_to(peer_x, x)
        peer_y = self._column_port_peer(y, port)
        return self.router_id(x, peer_y), self.column_port_to(peer_y, y)

    # ----------------------------------------------------------------- routing
    def minimal_output_port(self, router: int, dst_node: int) -> int:
        """Dimension-ordered (row-first) minimal output port towards ``dst_node``.

        At most two hops: a row hop to the destination's column, then a
        column hop to the destination's row.  When only one coordinate
        differs the single correcting hop is taken directly.
        """
        dst_router = dst_node // self._p
        if router == dst_router:
            return dst_node % self._p
        x, y = self.router_coords(router)
        dst_x, dst_y = self.router_coords(dst_router)
        if x != dst_x:
            return self.row_port_to(x, dst_x)
        return self.column_port_to(y, dst_y)

    def minimal_path_length(self, src_node: int, dst_node: int) -> int:
        src_router = self.node_router(src_node)
        dst_router = self.node_router(dst_node)
        if src_router == dst_router:
            return 0
        sx, sy = self.router_coords(src_router)
        dx, dy = self.router_coords(dst_router)
        return (sx != dx) + (sy != dy)

    # -------------------------------------------------------------- describing
    def describe(self) -> Dict[str, int]:
        return {
            "p": self._p,
            "rows": self._rows,
            "cols": self._cols,
            "routers": self.num_routers,
            "nodes": self.num_nodes,
            "router_radix": self._radix,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlattenedButterflyTopology(p={self._p}, rows={self._rows}, "
            f"cols={self._cols}, nodes={self.num_nodes})"
        )
