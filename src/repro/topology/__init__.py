"""Topologies: abstract interface, path models, and the supported networks.

The canonical Dragonfly of the paper plus a 2-D flattened butterfly, a full
mesh, and a k-ary n-cube torus with dateline virtual channels, all behind
the name-keyed registry in :mod:`repro.topology.registry`.

Typical entry points:

>>> from repro.topology import available_topologies, create_topology, topology_preset
>>> available_topologies()
['dragonfly', 'flattened_butterfly', 'full_mesh', 'torus']
>>> topo = create_topology(topology_preset("torus", "tiny"))

See :class:`~repro.topology.base.Topology` for the structural contract every
topology satisfies and :class:`~repro.topology.base.PathModel` for the
per-topology path/VC-schedule description that drives the deadlock checks.
"""

from repro.topology.base import PathModel, PortKind, Topology
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.faults import (
    DegradedLink,
    FaultEvent,
    FaultModel,
    FaultRuntime,
    FaultSchedule,
    NetworkPartitionError,
)
from repro.topology.flattened_butterfly import FlattenedButterflyTopology
from repro.topology.full_mesh import FullMeshTopology
from repro.topology.registry import (
    TOPOLOGY_REGISTRY,
    TopologyEntry,
    available_topologies,
    create_topology,
    topology_preset,
)
from repro.topology.torus import TorusTopology

__all__ = [
    "PortKind",
    "PathModel",
    "Topology",
    "DragonflyTopology",
    "DegradedLink",
    "FaultEvent",
    "FaultModel",
    "FaultRuntime",
    "FaultSchedule",
    "NetworkPartitionError",
    "FlattenedButterflyTopology",
    "FullMeshTopology",
    "TorusTopology",
    "TopologyEntry",
    "TOPOLOGY_REGISTRY",
    "available_topologies",
    "create_topology",
    "topology_preset",
]
