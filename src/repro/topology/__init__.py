"""Topologies: abstract interface, path models, and the supported networks.

The canonical Dragonfly of the paper plus a 2-D flattened butterfly and a
full mesh, all behind the name-keyed registry in
:mod:`repro.topology.registry`.
"""

from repro.topology.base import PathModel, PortKind, Topology
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.flattened_butterfly import FlattenedButterflyTopology
from repro.topology.full_mesh import FullMeshTopology
from repro.topology.registry import (
    TOPOLOGY_REGISTRY,
    TopologyEntry,
    available_topologies,
    create_topology,
    topology_preset,
)

__all__ = [
    "PortKind",
    "PathModel",
    "Topology",
    "DragonflyTopology",
    "FlattenedButterflyTopology",
    "FullMeshTopology",
    "TopologyEntry",
    "TOPOLOGY_REGISTRY",
    "available_topologies",
    "create_topology",
    "topology_preset",
]
