"""Topologies: abstract interface and the canonical Dragonfly of the paper."""

from repro.topology.base import PortKind, Topology
from repro.topology.dragonfly import DragonflyTopology

__all__ = ["PortKind", "Topology", "DragonflyTopology"]
