"""k-ary n-tree (fat tree) topology with up/down virtual channels.

A k-ary n-tree has ``levels`` router levels of ``m = k**(levels-1)``
switches each: level 0 holds the *leaf* switches (the only ones with
compute nodes, ``p`` per leaf), level ``levels-1`` the *roots*.  A switch
is addressed ``<level, w>`` where ``w`` in ``[0, m)`` is written in base-k
digits ``w = (d_{levels-2}, ..., d_1, d_0)``; up port ``j`` of ``<l, w>``
connects to ``<l+1, w[l := j]>`` (an up hop rewrites digit ``l``), so
``<l, w>`` is an ancestor of exactly the leaves sharing its digits at
positions ``>= l`` — a contiguous block of ``k**l`` leaves.

Port layout (identical on every switch)::

    [0, p)            injection / ejection ports
    [p, p + k)        down ports (child j), unconnected on the leaf level
    [p + k, p + 2k)   up ports (parent j), unconnected on the root level

All tree ports carry the LOCAL kind — a fat tree is an indirect network
with no global links.  The radix is uniform but the wiring is not: leaf
down ports and root up ports have no link (:meth:`FatTreeTopology.port_connected`).

Router ids are *region-major*: the ``k`` most-significant-digit subtrees
are the topology's regions (the fat-tree analogue of Dragonfly groups),
and each region's ``levels * k**(levels-2)`` switches occupy one
contiguous id block, level by level, as the region contract requires.
``ADV+i`` therefore shifts every node's traffic ``i`` subtrees over; under
destination-funneled minimal routing that concentrates each leaf's load on
a single uplink (the subtree hotspot), which is exactly the pattern the
adaptive uplink multipath is measured against, so ``ADV+h`` keeps the
default offset 1.

Minimal routing is destination-funneled up/down: a switch that is not an
ancestor of the destination leaf climbs through up port
``digit_level(dst_leaf)``; an ancestor descends through down port
``digit_{level-1}(dst_leaf)`` (forced — the down path is unique); the leaf
ejects.  Every uplink of a switch below the destination's nearest common
ancestor is *equal-cost* (an up hop rewrites a digit the descent will
rewrite again), which is what the uplink-multipath adaptive policy
(:attr:`~repro.topology.base.PathModel.supports_uplink_multipath`) exploits:
the candidate set at an up hop is simply *the other uplinks*, derived from
the port layout, not coordinates.

Router-to-router targets (Valiant steering, UGAL path estimates) cannot
reuse the node-proxy arithmetic of the dense topologies — nodes live on
leaves only — so they resolve through per-target BFS next-hop tables over
the tree links (smallest-port tie-break).  The Valiant intermediate is
drawn uniformly over the *roots*: every root is an ancestor of every leaf,
so both Valiant legs keep the up-then-down shape and need no extra VCs.

Up/down VC schedule
-------------------
Tree paths climb to an ancestor and descend exactly once, so the VC is a
pure function of the output port — up hops ride VC 0, down hops VC 1
(:attr:`FatTreeTopology.updown_port_vcs`).  Each hop occupies the buffer
class ``(direction, link_level)``; ranking up link level ``l`` as ``l``
and down link level ``l`` as ``2L - 1 - l`` makes every legal path visit
strictly ascending ranks (up legs climb, the single turn happens where
every down rank exceeds every up rank, down legs descend levels in
ascending rank), so the channel dependency graph is acyclic with no
dateline machinery.  :func:`repro.routing.deadlock.validate_updown_shapes`
re-proves this at construction time for every shape the path model declares.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config.parameters import FatTreeConfig
from repro.topology.base import PathModel, PortKind, Topology

__all__ = ["FatTreeTopology"]


def _updown_shapes(link_levels: int) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
    """Canonical (direction, link_level) class sequences of tree paths.

    One shape per turn height ``h``: up through link levels ``0..h-1``,
    then down through ``h-1..0``.  Every real path is exactly one of these
    (minimal and Valiant paths differ only in which ancestor they turn at).
    """
    return tuple(
        tuple((0, lvl) for lvl in range(h))
        + tuple((1, lvl) for lvl in reversed(range(h)))
        for h in range(1, link_levels + 1)
    )


class FatTreeTopology(Topology):
    """k-ary n-tree with destination-funneled up/down minimal routing."""

    dense_node_map = False

    def __init__(self, config: FatTreeConfig):
        self.config = config
        self._p = config.p
        self._k = config.k
        self._levels = config.levels
        self._m = config.switches_per_level
        self._num_routers = config.num_routers
        self._num_nodes = config.num_nodes
        self._radix = config.router_radix
        self._first_down_port = self._p
        self._first_up_port = self._p + self._k
        # Region geometry: the k most-significant-digit subtrees, each a
        # contiguous id block of ``levels * B`` switches (B leaves apiece).
        self._B = self._k ** (self._levels - 2)
        self._pow_k = tuple(self._k ** i for i in range(self._levels))
        self.port_kinds: Tuple[PortKind, ...] = tuple(
            PortKind.INJECTION if port < self._p else PortKind.LOCAL
            for port in range(self._radix)
        )
        # rid <-> <level, w> tables (hot paths index these instead of
        # re-deriving the region-major encoding).
        self._rid_level: List[int] = [0] * self._num_routers
        self._rid_label: List[int] = [0] * self._num_routers
        for level in range(self._levels):
            for w in range(self._m):
                rid = self._rid_of(level, w)
                self._rid_level[rid] = level
                self._rid_label[rid] = w
        self._leaf_rid: Tuple[int, ...] = tuple(
            self._rid_of(0, w) for w in range(self._m)
        )
        # Level -> connected link ports (leaves have no children, roots no
        # parents); used by the BFS router-target tables.
        down = tuple(range(self._first_down_port, self._first_up_port))
        up = tuple(range(self._first_up_port, self._radix))
        self._level_link_ports: Tuple[Tuple[int, ...], ...] = tuple(
            (up if level == 0 else down + up)
            if level < self._levels - 1
            else down
            for level in range(self._levels)
        )
        # Up/down VC table: injection and up ports ride VC 0, down ports
        # VC 1 (pure function of the output port; see module docstring).
        self._updown_port_vcs: Tuple[int, ...] = tuple(
            1 if self._first_down_port <= port < self._first_up_port else 0
            for port in range(self._radix)
        )
        # Lazy per-target BFS next-hop tables for router-proxy destinations.
        self._router_tables: Dict[int, List[int]] = {}
        link_levels = self._levels - 1
        shapes = _updown_shapes(link_levels)
        # Leaf-to-leaf minimal paths have even lengths (h up, h down), but
        # router-anchored walks (router proxies, Valiant legs) also expose
        # the partial all-up / all-down prefixes, so every length up to the
        # diameter is a declared hop-kind sequence.
        minimal_kinds = tuple(
            ("local",) * n for n in range(1, 2 * link_levels + 1)
        )
        # Valiant turns at a root, so its shapes are the full-height
        # minimal shape; a granted uplink divert is equal-cost, so the
        # adaptive shapes equal the minimal ones.
        self._path_model = PathModel(
            topology="fat_tree",
            has_global_ports=False,
            max_minimal_hops=2 * link_levels,
            max_valiant_hops=2 * link_levels,
            minimal_hop_kinds=minimal_kinds,
            valiant_hop_kinds=minimal_kinds,
            supports_uplink_multipath=True,
            vc_schedule="up_down",
            updown_link_levels=link_levels,
            updown_minimal_shapes=shapes,
            updown_valiant_shapes=(shapes[-1],),
            updown_adaptive_shapes=shapes,
        )

    # -------------------------------------------------------------- addressing
    def _rid_of(self, level: int, w: int) -> int:
        """Region-major router id of switch ``<level, w>``."""
        region, t = divmod(w, self._B)
        return (region * self._levels + level) * self._B + t

    def router_level(self, router: int) -> int:
        """Level of ``router`` (0 = leaves, ``levels - 1`` = roots)."""
        return self._rid_level[router]

    def router_label(self, router: int) -> int:
        """Base-k switch label ``w`` of ``router`` within its level."""
        return self._rid_label[router]

    def leaf_router(self, leaf: int) -> int:
        """Router id of leaf switch ``<0, leaf>``."""
        return self._leaf_rid[leaf]

    # ------------------------------------------------------------------ sizes
    @property
    def num_routers(self) -> int:
        return self._num_routers

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def router_radix(self) -> int:
        return self._radix

    @property
    def nodes_per_router(self) -> int:
        return self._p

    # Regions of a fat tree are its k most-significant-digit subtrees.
    @property
    def num_regions(self) -> int:
        return self._k

    @property
    def routers_per_region(self) -> int:
        return self._levels * self._B

    @property
    def path_model(self) -> PathModel:
        return self._path_model

    def region_node_range(self, region: int) -> Tuple[int, int]:
        """Nodes of a subtree: its ``B`` leaves times ``p`` nodes each.

        Overrides the dense default (``routers_per_region * p``), which
        would over-count — only the leaf level carries nodes.
        """
        nodes_per_region = self._B * self._p
        low = region * nodes_per_region
        return low, low + nodes_per_region

    # -------------------------------------------------------- node attachment
    def node_router(self, node: int) -> int:
        return self._leaf_rid[node // self._p]

    def node_port(self, node: int) -> int:
        return node % self._p

    def router_nodes(self, router: int) -> List[int]:
        if self._rid_level[router] != 0:
            return []
        base = self._rid_label[router] * self._p
        return list(range(base, base + self._p))

    # ------------------------------------------------------------------- ports
    def port_kind(self, port: int) -> PortKind:
        if 0 <= port < self._radix:
            return self.port_kinds[port]
        raise ValueError(f"port {port} out of range [0, {self._radix})")

    @property
    def injection_ports(self) -> range:
        return range(0, self._p)

    @property
    def downlink_ports(self) -> range:
        return range(self._first_down_port, self._first_up_port)

    @property
    def uplink_ports(self) -> range:
        return range(self._first_up_port, self._radix)

    @property
    def local_ports(self) -> range:
        return range(self._first_down_port, self._radix)

    @property
    def global_ports(self) -> range:
        return range(0)

    @property
    def updown_port_vcs(self) -> Tuple[int, ...]:
        return self._updown_port_vcs

    def port_connected(self, router: int, port: int) -> bool:
        """Leaf down ports and root up ports exist but carry no link."""
        level = self._rid_level[router]
        if self._first_down_port <= port < self._first_up_port:
            return level > 0
        if self._first_up_port <= port < self._radix:
            return level < self._levels - 1
        return True

    # --------------------------------------------------------------- neighbors
    def neighbor(self, router: int, port: int) -> Optional[Tuple[int, int]]:
        level = self._rid_level[router]
        w = self._rid_label[router]
        if self._first_up_port <= port < self._radix:
            if level == self._levels - 1:
                return None  # roots have no parents
            j = port - self._first_up_port
            pk = self._pow_k[level]
            digit = (w // pk) % self._k
            parent = w + (j - digit) * pk
            # The parent's down port back to us is our digit at its level.
            return self._rid_of(level + 1, parent), self._first_down_port + digit
        if self._first_down_port <= port < self._first_up_port:
            if level == 0:
                return None  # leaves have no children
            j = port - self._first_down_port
            pk = self._pow_k[level - 1]
            digit = (w // pk) % self._k
            child = w + (j - digit) * pk
            # The child's up port back to us is our digit at its level - 1.
            return self._rid_of(level - 1, child), self._first_up_port + digit
        return None

    # ----------------------------------------------------------------- routing
    def minimal_output_port(self, router: int, dst_node: int) -> int:
        """Destination-funneled up/down output port towards ``dst_node``.

        ``dst_node`` ids at or above ``num_nodes`` address *router*
        ``dst_node - num_nodes`` (the router-proxy convention of
        :meth:`minimal_route_to_router`) and resolve through the BFS
        next-hop tables; real node ids use digit arithmetic.
        """
        if dst_node >= self._num_nodes:
            return self._router_step(router, dst_node - self._num_nodes)
        level = self._rid_level[router]
        w = self._rid_label[router]
        wd = dst_node // self._p
        pk = self._pow_k[level]
        if w // pk == wd // pk:
            # Ancestor of (or at) the destination leaf: descend, digit by
            # digit — the down path is unique.
            if level == 0:
                return dst_node % self._p
            return self._first_down_port + (wd // self._pow_k[level - 1]) % self._k
        # Not an ancestor: climb.  Funnel through the destination's digit
        # at this level (any uplink would be equal-cost; the deterministic
        # funnel is what the adaptive multipath spreads out).
        return self._first_up_port + (wd // pk) % self._k

    def minimal_path_length(self, src_node: int, dst_node: int) -> int:
        w1 = src_node // self._p
        w2 = dst_node // self._p
        if w1 == w2:
            return 0
        h = 1
        while w1 // self._pow_k[h] != w2 // self._pow_k[h]:
            h += 1
        return 2 * h

    def minimal_route_to_router(self, router: int, dst_router: int) -> int:
        if router == dst_router:
            raise ValueError("already at the destination router")
        return self._router_step(router, dst_router)

    def minimal_router_path(self, src_router: int, dst_router: int) -> List[int]:
        path = [src_router]
        r = src_router
        while r != dst_router:
            nbr = self.neighbor(r, self._router_step(r, dst_router))
            assert nbr is not None
            r = nbr[0]
            path.append(r)
            if len(path) > 2 * (self._levels - 1) + 1:
                raise RuntimeError(
                    "router path exceeds the fat-tree router diameter"
                )
        return path

    def _router_step(self, router: int, dst_router: int) -> int:
        """Next-hop port from ``router`` towards router ``dst_router``."""
        table = self._router_tables.get(dst_router)
        if table is None:
            table = self._build_router_table(dst_router)
            self._router_tables[dst_router] = table
        port = table[router]
        if port < 0:
            raise ValueError("already at the destination router")
        return port

    def _build_router_table(self, target: int) -> List[int]:
        """BFS next-hop table towards ``target`` (smallest-port tie-break).

        Needed because router-to-router shortest paths are not always
        up-then-down (root to root descends first; some same-level pairs
        zigzag), so the node digit rule cannot serve router targets.  Used
        for steering metadata only — Valiant intermediates are roots, whose
        tables degenerate to the unique all-up paths.
        """
        dist = [-1] * self._num_routers
        dist[target] = 0
        frontier = [target]
        while frontier:
            nxt: List[int] = []
            for r in frontier:
                for port in self._level_link_ports[self._rid_level[r]]:
                    nbr = self.neighbor(r, port)
                    assert nbr is not None
                    if dist[nbr[0]] < 0:
                        dist[nbr[0]] = dist[r] + 1
                        nxt.append(nbr[0])
            frontier = nxt
        next_port = [-1] * self._num_routers
        for r in range(self._num_routers):
            if r == target:
                continue
            for port in self._level_link_ports[self._rid_level[r]]:
                nbr = self.neighbor(r, port)
                assert nbr is not None
                if dist[nbr[0]] == dist[r] - 1:
                    next_port[r] = port
                    break
        return next_port

    def valiant_intermediate_router(self, source_router: int, rng) -> int:
        """Draw a uniformly random *root* as the Valiant intermediate.

        Every root is an ancestor of every leaf, so both Valiant legs keep
        the up-then-down shape the up/down schedule proves deadlock-free —
        an arbitrary intermediate (the dense default) could force an
        up-down-up zigzag and a second turn.  Consumes exactly one draw,
        like the default.
        """
        choice = int(rng.integers(0, self._m))
        return self._rid_of(self._levels - 1, choice)

    # -------------------------------------------------------------- describing
    def describe(self) -> Dict[str, object]:
        return {
            "p": self._p,
            "k": self._k,
            "levels": self._levels,
            "routers": self.num_routers,
            "nodes": self.num_nodes,
            "router_radix": self._radix,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FatTreeTopology(p={self._p}, k={self._k}, "
            f"levels={self._levels}, nodes={self.num_nodes})"
        )
