"""Canonical Dragonfly topology (Kim et al., ISCA 2008; Camarero et al. 2014).

The canonical Dragonfly used in the paper connects ``a`` routers per group as
a complete graph (one *local* link between every pair of routers in the
group) and the ``a*h + 1`` groups as a complete graph (exactly one *global*
link between every pair of groups).  Each router additionally attaches ``p``
compute nodes through injection/ejection ports.

Port layout (identical on every router)::

    [0, p)              injection / ejection ports (node index within router)
    [p, p + a - 1)      local ports (one per other router of the group)
    [p + a - 1, radix)  global ports (h of them)

Global-link arrangements
------------------------
Within a group the ``a*h`` global links are distributed among routers; the
*arrangement* decides which router owns the link towards which remote group.
Two arrangements are provided:

``consecutive``
    The global link with group-local offset ``o = i*h + k`` (router ``i``,
    global port ``k``) connects group ``g`` to group ``(g + o + 1) mod N``.

``palmtree``
    The link with offset ``o`` connects group ``g`` to group
    ``(g - o - 1) mod N`` (links fan out "backwards"), the arrangement used
    for the PERCS/Table I configuration in the paper.

Both arrangements are *consistent*: each pair of groups is joined by exactly
one bidirectional link, and the reverse side resolves to the same link.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config.parameters import DragonflyConfig
from repro.topology.base import PathModel, PortKind, Topology

__all__ = ["DragonflyTopology"]

#: Hop-kind shapes of the (unique) Dragonfly minimal paths: up to one local
#: hop to the gateway, the single global link, up to one local hop in the
#: destination group.
_MINIMAL_HOP_KINDS = (
    ("local",),
    ("global",),
    ("local", "global"),
    ("global", "local"),
    ("local", "global", "local"),
)

#: Worst-case hop shapes of the in-transit adaptive (MM+L) paths: an
#: intra-group local detour, a direct global misroute with a local detour in
#: the intermediate group, and the full local-proxy + global-misroute path.
#: Every realizable adaptive path visits a counter-consistent prefix/suffix
#: of one of these, and each shape must walk strictly increasing buffer
#: classes under the nonminimal VC budget (checked at mechanism
#: construction by :func:`repro.routing.deadlock.validate_path_model`).
_ADAPTIVE_HOP_KINDS = (
    ("local", "local"),
    ("global", "local", "local", "global", "local"),
    ("local", "global", "local", "local", "global", "local"),
)


class DragonflyTopology(Topology):
    """Canonical (complete-graph / complete-graph) Dragonfly."""

    def __init__(self, config: DragonflyConfig):
        self.config = config
        self._p = config.p
        self._a = config.a
        self._h = config.h
        self._num_groups = config.num_groups
        self._num_routers = config.num_groups * config.a
        self._radix = config.router_radix
        # Port-range boundaries.
        self._first_local_port = self._p
        self._first_global_port = self._p + self._a - 1
        # Precomputed tables -------------------------------------------------
        # For each group-local offset o in [0, a*h): the remote group reached.
        self._offset_to_group: List[List[int]] = [
            [self._global_offset_target(g, o) for o in range(self._a * self._h)]
            for g in range(self._num_groups)
        ]
        # For each (group, remote group): the (router position, global port)
        # within `group` owning the link towards `remote group`.
        self._group_route: List[Dict[int, Tuple[int, int]]] = []
        for g in range(self._num_groups):
            table: Dict[int, Tuple[int, int]] = {}
            for o, dst in enumerate(self._offset_to_group[g]):
                pos, k = divmod(o, self._h)
                table[dst] = (pos, self._first_global_port + k)
            self._group_route.append(table)
        # Port index -> kind, so the per-packet hot paths avoid re-deriving
        # the kind from the range boundaries.  Public: routing hot loops index
        # it directly instead of paying a method call per lookup.
        self.port_kinds: Tuple[PortKind, ...] = tuple(
            PortKind.INJECTION
            if port < self._first_local_port
            else (PortKind.LOCAL if port < self._first_global_port else PortKind.GLOBAL)
            for port in range(self._radix)
        )
        # (router, dst_router) -> minimal output port memos; the minimal
        # paths are static, and routing recomputes them every cycle for every
        # blocked head.  Dense lists rather than dicts: indexing is faster
        # than hashing on the hot path and the footprint is bounded at
        # num_routers^2 pointers (~34 MB at the paper scale) instead of an
        # unbounded dict.  Allocated lazily on first use — the Valiant-phase
        # cache, for instance, is never touched by MIN/Base runs.
        self._minimal_port_cache: Optional[List[Optional[int]]] = None
        self._router_route_cache: Optional[List[Optional[int]]] = None
        self._path_model = PathModel.from_minimal_paths(
            "dragonfly",
            _MINIMAL_HOP_KINDS,
            supports_in_transit_adaptive=True,
            adaptive_hop_kinds=_ADAPTIVE_HOP_KINDS,
        )

    # ------------------------------------------------------------------ sizes
    @property
    def num_groups(self) -> int:
        return self._num_groups

    @property
    def routers_per_group(self) -> int:
        return self._a

    # Regions of a Dragonfly are its groups.
    @property
    def num_regions(self) -> int:
        return self._num_groups

    @property
    def routers_per_region(self) -> int:
        return self._a

    @property
    def path_model(self) -> PathModel:
        return self._path_model

    @property
    def hard_adversarial_offset(self) -> int:
        """ADV+h: the offset that concentrates load on one gateway router."""
        return self._h

    @property
    def num_routers(self) -> int:
        return self._num_routers

    @property
    def num_nodes(self) -> int:
        return self.num_routers * self._p

    @property
    def router_radix(self) -> int:
        return self._radix

    @property
    def nodes_per_router(self) -> int:
        return self._p

    @property
    def global_links_per_group(self) -> int:
        return self._a * self._h

    # -------------------------------------------------------------- addressing
    def router_group(self, router: int) -> int:
        """Group of ``router``."""
        return router // self._a

    def router_position(self, router: int) -> int:
        """Position of ``router`` within its group (``0 <= pos < a``)."""
        return router % self._a

    def router_id(self, group: int, position: int) -> int:
        """Router id from ``(group, position)``."""
        if not (0 <= group < self._num_groups):
            raise ValueError(f"group {group} out of range [0, {self._num_groups})")
        if not (0 <= position < self._a):
            raise ValueError(f"position {position} out of range [0, {self._a})")
        return group * self._a + position

    def node_router(self, node: int) -> int:
        return node // self._p

    def node_port(self, node: int) -> int:
        return node % self._p

    def node_group(self, node: int) -> int:
        """Group of the router that ``node`` attaches to."""
        return self.router_group(self.node_router(node))

    def router_nodes(self, router: int) -> List[int]:
        base = router * self._p
        return list(range(base, base + self._p))

    def group_routers(self, group: int) -> List[int]:
        base = group * self._a
        return list(range(base, base + self._a))

    def group_nodes(self, group: int) -> List[int]:
        nodes: List[int] = []
        for r in self.group_routers(group):
            nodes.extend(self.router_nodes(r))
        return nodes

    # ------------------------------------------------------------------- ports
    def port_kind(self, port: int) -> PortKind:
        if 0 <= port < self._radix:
            return self.port_kinds[port]
        raise ValueError(f"port {port} out of range [0, {self._radix})")

    @property
    def injection_ports(self) -> range:
        return range(0, self._p)

    @property
    def local_ports(self) -> range:
        return range(self._first_local_port, self._first_global_port)

    @property
    def global_ports(self) -> range:
        return range(self._first_global_port, self._radix)

    def local_port_to(self, position: int, peer_position: int) -> int:
        """Local port of the router at ``position`` leading to ``peer_position``."""
        if position == peer_position:
            raise ValueError("a router has no local port to itself")
        idx = peer_position if peer_position < position else peer_position - 1
        return self._first_local_port + idx

    def local_port_peer(self, position: int, port: int) -> int:
        """Group position of the router reached through local ``port``."""
        if self.port_kind(port) is not PortKind.LOCAL:
            raise ValueError(f"port {port} is not a local port")
        idx = port - self._first_local_port
        peer = idx if idx < position else idx + 1
        return peer

    # ----------------------------------------------------- global arrangement
    def _global_offset_target(self, group: int, offset: int) -> int:
        """Remote group reached by the global link with ``offset`` in ``group``."""
        n = self._num_groups
        if self.config.global_arrangement == "palmtree":
            return (group - offset - 1) % n
        return (group + offset + 1) % n

    def _global_offset_from(self, group: int, remote_group: int) -> int:
        """Group-local offset of the global link from ``group`` to ``remote_group``."""
        n = self._num_groups
        if group == remote_group:
            raise ValueError("no global link joins a group with itself")
        if self.config.global_arrangement == "palmtree":
            return (group - remote_group - 1) % n
        return (remote_group - group - 1) % n

    def global_link_endpoint(self, group: int, dst_group: int) -> Tuple[int, int]:
        """Return ``(router, global_port)`` in ``group`` owning the link to ``dst_group``."""
        pos, port = self._group_route[group][dst_group]
        return self.router_id(group, pos), port

    def region_gateway(self, router: int, target_region: int) -> Tuple[int, bool]:
        """Next hop towards ``target_region``: the group's single global link
        to the target group, behind at most one local hop to its owner."""
        group = self.router_group(router)
        if group == target_region:
            raise ValueError("router is already inside the target region")
        gw_router, gw_port = self.global_link_endpoint(group, target_region)
        if gw_router == router:
            return gw_port, True
        return (
            self.local_port_to(
                self.router_position(router), self.router_position(gw_router)
            ),
            False,
        )

    def global_port_target_group(self, router: int, port: int) -> int:
        """Remote group reached through global ``port`` of ``router``."""
        if self.port_kind(port) is not PortKind.GLOBAL:
            raise ValueError(f"port {port} is not a global port")
        group = self.router_group(router)
        pos = self.router_position(router)
        offset = pos * self._h + (port - self._first_global_port)
        return self._offset_to_group[group][offset]

    def port_target_region(self, router: int, port: int) -> int:
        """Region (group) reached through ``port``; arithmetic, no neighbor walk."""
        kind = self.port_kinds[port]
        if kind is PortKind.GLOBAL:
            return self.global_port_target_group(router, port)
        if kind is PortKind.INJECTION:
            raise ValueError(f"port {port} is an injection port")
        return self.router_group(router)

    # --------------------------------------------------------------- neighbors
    def neighbor(self, router: int, port: int) -> Optional[Tuple[int, int]]:
        kind = self.port_kind(port)
        if kind is PortKind.INJECTION:
            return None
        group = self.router_group(router)
        pos = self.router_position(router)
        if kind is PortKind.LOCAL:
            peer_pos = self.local_port_peer(pos, port)
            peer = self.router_id(group, peer_pos)
            return peer, self.local_port_to(peer_pos, pos)
        # Global port.
        dst_group = self.global_port_target_group(router, port)
        peer_router, peer_port = self.global_link_endpoint(dst_group, group)
        return peer_router, peer_port

    # ----------------------------------------------------------------- routing
    def minimal_output_port(self, router: int, dst_node: int) -> int:
        """Output port on the (unique) minimal path from ``router`` to ``dst_node``.

        The canonical Dragonfly has a single minimal path between any pair of
        routers: up to one local hop in the source group, the single global
        link joining the two groups, and up to one local hop in the
        destination group.
        """
        dst_router = dst_node // self._p
        if router == dst_router:
            return dst_node % self._p
        cache = self._minimal_port_cache
        if cache is None:
            cache = self._minimal_port_cache = [None] * (
                self._num_routers * self._num_routers
            )
        key = router * self._num_routers + dst_router
        port = cache[key]
        if port is None:
            group = self.router_group(router)
            dst_group = self.router_group(dst_router)
            pos = self.router_position(router)
            if group == dst_group:
                port = self.local_port_to(pos, self.router_position(dst_router))
            else:
                gw_router, gw_port = self.global_link_endpoint(group, dst_group)
                if gw_router == router:
                    port = gw_port
                else:
                    port = self.local_port_to(pos, self.router_position(gw_router))
            cache[key] = port
        return port

    def minimal_route_to_router(self, router: int, dst_router: int) -> int:
        """Output port on the minimal path from ``router`` towards ``dst_router``.

        Unlike :meth:`minimal_output_port` the destination is a *router*;
        used by Valiant routing to reach the intermediate router.  Raises if
        ``router == dst_router`` (there is no hop to take).
        """
        if router == dst_router:
            raise ValueError("already at the destination router")
        cache = self._router_route_cache
        if cache is None:
            cache = self._router_route_cache = [None] * (
                self._num_routers * self._num_routers
            )
        key = router * self._num_routers + dst_router
        port = cache[key]
        if port is None:
            group = self.router_group(router)
            dst_group = self.router_group(dst_router)
            pos = self.router_position(router)
            if group == dst_group:
                port = self.local_port_to(pos, self.router_position(dst_router))
            else:
                gw_router, gw_port = self.global_link_endpoint(group, dst_group)
                if gw_router == router:
                    port = gw_port
                else:
                    port = self.local_port_to(pos, self.router_position(gw_router))
            cache[key] = port
        return port

    def minimal_global_port_info(self, router: int, dst_node: int) -> Optional[Tuple[int, int]]:
        """Return ``(gateway_router, global_port)`` of the minimal global link.

        For a destination in the same group, returns ``None`` (the minimal
        path uses no global link).
        """
        group = self.router_group(router)
        dst_group = self.node_group(dst_node)
        if group == dst_group:
            return None
        return self.global_link_endpoint(group, dst_group)

    def minimal_path_length(self, src_node: int, dst_node: int) -> int:
        src_router = self.node_router(src_node)
        dst_router = self.node_router(dst_node)
        if src_router == dst_router:
            return 0
        hops = 0
        r = src_router
        # Bounded by the diameter (3 router-to-router hops).
        while r != dst_router:
            port = self.minimal_output_port(r, dst_node)
            nbr = self.neighbor(r, port)
            assert nbr is not None
            r = nbr[0]
            hops += 1
            if hops > 3:  # pragma: no cover - structural safety net
                raise RuntimeError("minimal path longer than the Dragonfly diameter")
        return hops

    def minimal_router_path(self, src_router: int, dst_router: int) -> List[int]:
        """Sequence of routers (inclusive) on the minimal path between routers."""
        path = [src_router]
        r = src_router
        if src_router == dst_router:
            return path
        dst_node_proxy = dst_router * self._p  # any node of the destination router
        while r != dst_router:
            port = self.minimal_output_port(r, dst_node_proxy)
            nbr = self.neighbor(r, port)
            assert nbr is not None
            r = nbr[0]
            path.append(r)
        return path

    # -------------------------------------------------------------- describing
    def describe(self) -> Dict[str, int]:
        """Summary of the topology sizes (for reports and examples)."""
        return {
            "p": self._p,
            "a": self._a,
            "h": self._h,
            "groups": self._num_groups,
            "routers": self.num_routers,
            "nodes": self.num_nodes,
            "router_radix": self._radix,
            "global_links_per_group": self.global_links_per_group,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DragonflyTopology(p={self._p}, a={self._a}, h={self._h}, "
            f"groups={self._num_groups}, nodes={self.num_nodes})"
        )
