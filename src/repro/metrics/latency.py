"""Packet-latency statistics."""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

__all__ = ["LatencyStats"]


class LatencyStats:
    """Accumulates end-to-end packet latencies (in cycles)."""

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        self._samples: List[int] = []

    def record(self, latency: int) -> None:
        if latency < 0:
            raise ValueError("latency cannot be negative")
        self._samples.append(latency)

    # -- summaries -------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return math.nan
        return float(np.mean(self._samples))

    @property
    def std(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        return float(np.std(self._samples, ddof=1))

    @property
    def minimum(self) -> Optional[int]:
        return min(self._samples) if self._samples else None

    @property
    def maximum(self) -> Optional[int]:
        return max(self._samples) if self._samples else None

    def percentile(self, q: float) -> float:
        if not self._samples:
            return math.nan
        return float(np.percentile(self._samples, q))

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def samples(self) -> List[int]:
        """Copy of the raw latency samples (used by the statistics helpers)."""
        return list(self._samples)
