"""Per-cycle (binned) time series of latency and misrouting.

The transient experiments of the paper (Figs. 7–9) plot the evolution of the
average packet latency and of the percentage of misrouted packets around a
traffic-pattern change.  Packets are binned by their *generation* cycle, so a
bin describes the fate of the traffic injected at that moment — which is what
makes the reaction time of the misrouting trigger visible.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

__all__ = ["TimeSeriesRecorder", "TimeSeriesPoint"]


class TimeSeriesPoint:
    """Aggregated statistics of one time bin."""

    __slots__ = ("bin_start", "count", "latency_sum", "misrouted", "delivered_phits")

    def __init__(self, bin_start: int):
        self.bin_start = bin_start
        self.count = 0
        self.latency_sum = 0
        self.misrouted = 0
        self.delivered_phits = 0

    @property
    def mean_latency(self) -> float:
        return self.latency_sum / self.count if self.count else math.nan

    @property
    def misrouted_fraction(self) -> float:
        return self.misrouted / self.count if self.count else math.nan


class TimeSeriesRecorder:
    """Bins delivered packets by generation cycle.

    Binning is by *generation* cycle of each delivered packet, so a time-warp
    engine that jumps over quiet stretches produces exactly the same bins as
    a cycle-by-cycle engine: bins with no generated packets simply never
    materialise, warped or not.
    """

    __slots__ = ("bin_size", "start_cycle", "end_cycle", "_bins")

    def __init__(self, bin_size: int = 1, start_cycle: int = 0, end_cycle: Optional[int] = None):
        if bin_size < 1:
            raise ValueError("bin_size must be >= 1")
        self.bin_size = bin_size
        self.start_cycle = start_cycle
        self.end_cycle = end_cycle
        self._bins: Dict[int, TimeSeriesPoint] = {}

    def record(
        self,
        creation_cycle: int,
        latency: int,
        *,
        globally_misrouted: bool,
        size_phits: int,
    ) -> None:
        if creation_cycle < self.start_cycle:
            return
        if self.end_cycle is not None and creation_cycle >= self.end_cycle:
            return
        bin_start = (
            (creation_cycle - self.start_cycle) // self.bin_size
        ) * self.bin_size + self.start_cycle
        point = self._bins.get(bin_start)
        if point is None:
            point = TimeSeriesPoint(bin_start)
            self._bins[bin_start] = point
        point.count += 1
        point.latency_sum += latency
        point.delivered_phits += size_phits
        if globally_misrouted:
            point.misrouted += 1

    # -- output -----------------------------------------------------------------
    def points(self) -> List[TimeSeriesPoint]:
        return [self._bins[k] for k in sorted(self._bins)]

    def bins(self) -> List[int]:
        return sorted(self._bins)

    def latency_series(self) -> List[float]:
        return [p.mean_latency for p in self.points()]

    def misrouted_series(self) -> List[float]:
        return [p.misrouted_fraction for p in self.points()]

    def as_rows(self) -> List[Dict[str, float]]:
        return [
            {
                "cycle": float(p.bin_start),
                "mean_latency": p.mean_latency,
                "misrouted_fraction": p.misrouted_fraction,
                "packets": float(p.count),
            }
            for p in self.points()
        ]
