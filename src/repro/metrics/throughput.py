"""Accepted-load (throughput) statistics."""

from __future__ import annotations

import math
from typing import Dict

__all__ = ["ThroughputStats"]


class ThroughputStats:
    """Counts delivered packets/phits inside a measurement window."""

    __slots__ = ("num_nodes", "delivered_packets", "delivered_phits", "_window_cycles")

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes
        self.delivered_packets = 0
        self.delivered_phits = 0
        self._window_cycles = 0

    def record_delivery(self, size_phits: int) -> None:
        self.delivered_packets += 1
        self.delivered_phits += size_phits

    def set_window(self, cycles: int) -> None:
        """Length (in cycles) of the measurement window used for normalisation."""
        if cycles < 0:
            raise ValueError("window length cannot be negative")
        self._window_cycles = cycles

    @property
    def window_cycles(self) -> int:
        return self._window_cycles

    @property
    def accepted_load(self) -> float:
        """Delivered phits per node per cycle (the paper's y-axis in Fig. 5)."""
        if self._window_cycles <= 0:
            return math.nan
        return self.delivered_phits / (self.num_nodes * self._window_cycles)

    def summary(self) -> Dict[str, float]:
        return {
            "delivered_packets": float(self.delivered_packets),
            "delivered_phits": float(self.delivered_phits),
            "accepted_load": self.accepted_load,
        }
