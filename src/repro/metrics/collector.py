"""Metrics collector fed by the simulation engine."""

from __future__ import annotations

from typing import Dict, Optional

from repro.metrics.latency import LatencyStats
from repro.metrics.misrouting import MisroutingStats
from repro.metrics.throughput import ThroughputStats
from repro.metrics.timeseries import TimeSeriesRecorder
from repro.network.packet import Packet

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Aggregates latency, throughput and misrouting inside a window.

    ``measure_start``/``measure_end`` bound the measurement window in cycles.
    Latency and misrouting are attributed to packets *generated* inside the
    window (and delivered before the simulation ends); throughput counts the
    phits *delivered* inside the window, the usual accepted-load definition.
    An optional :class:`~repro.metrics.timeseries.TimeSeriesRecorder` receives
    every delivered packet for the transient experiments.
    """

    __slots__ = (
        "measure_start",
        "measure_end",
        "latency",
        "throughput",
        "misrouting",
        "timeseries",
        "generated_in_window",
    )

    def __init__(
        self,
        num_nodes: int,
        measure_start: int = 0,
        measure_end: Optional[int] = None,
        timeseries: Optional[TimeSeriesRecorder] = None,
    ):
        self.measure_start = measure_start
        self.measure_end = measure_end
        self.latency = LatencyStats()
        self.throughput = ThroughputStats(num_nodes)
        self.misrouting = MisroutingStats()
        self.timeseries = timeseries
        self.generated_in_window = 0

    # -- window helpers ---------------------------------------------------------
    def in_window(self, cycle: int) -> bool:
        if cycle < self.measure_start:
            return False
        return self.measure_end is None or cycle < self.measure_end

    def finalize_window(self) -> None:
        """Set the throughput normalisation once the window bounds are known."""
        if self.measure_end is None:
            raise ValueError("measure_end must be set before finalizing the window")
        self.throughput.set_window(self.measure_end - self.measure_start)

    # -- event sinks --------------------------------------------------------------
    def record_generated(self, packet: Packet) -> None:
        if self.in_window(packet.creation_cycle):
            self.generated_in_window += 1

    def record_delivery(self, packet: Packet, cycle: int) -> None:
        assert packet.delivered_cycle is not None
        if self.in_window(packet.delivered_cycle):
            self.throughput.record_delivery(packet.size_phits)
        if self.in_window(packet.creation_cycle):
            latency = packet.latency
            assert latency is not None
            self.latency.record(latency)
            self.misrouting.record(
                globally_misrouted=packet.globally_misrouted,
                locally_misrouted=packet.locally_misrouted,
                hops=packet.hops,
            )
        if self.timeseries is not None:
            latency = packet.latency
            assert latency is not None
            self.timeseries.record(
                packet.creation_cycle,
                latency,
                globally_misrouted=packet.globally_misrouted,
                size_phits=packet.size_phits,
            )

    # -- summaries ---------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        out.update({f"latency_{k}": v for k, v in self.latency.summary().items()})
        out.update(self.throughput.summary())
        out.update(self.misrouting.summary())
        out["generated_in_window"] = float(self.generated_in_window)
        return out
