"""Metrics collector fed by the simulation engine."""

from __future__ import annotations

from typing import Dict, Optional

from repro.metrics.latency import LatencyStats
from repro.metrics.misrouting import MisroutingStats
from repro.metrics.throughput import ThroughputStats
from repro.metrics.timeseries import TimeSeriesRecorder
from repro.network.packet import Packet

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Aggregates latency, throughput and misrouting inside a window.

    ``measure_start``/``measure_end`` bound the measurement window in cycles.
    Latency and misrouting are attributed to packets *generated* inside the
    window (and delivered before the simulation ends); throughput counts the
    phits *delivered* inside the window, the usual accepted-load definition.
    An optional :class:`~repro.metrics.timeseries.TimeSeriesRecorder` receives
    every delivered packet for the transient experiments.
    """

    __slots__ = (
        "measure_start",
        "measure_end",
        "latency",
        "throughput",
        "misrouting",
        "timeseries",
        "generated_in_window",
        "dropped_packets",
        "dropped_in_window",
        "fault_rerouted_delivered",
        "_epoch_starts",
        "_epoch_phits",
        "_last_fault_cycle",
    )

    def __init__(
        self,
        num_nodes: int,
        measure_start: int = 0,
        measure_end: Optional[int] = None,
        timeseries: Optional[TimeSeriesRecorder] = None,
    ):
        self.measure_start = measure_start
        self.measure_end = measure_end
        self.latency = LatencyStats()
        self.throughput = ThroughputStats(num_nodes)
        self.misrouting = MisroutingStats()
        self.timeseries = timeseries
        self.generated_in_window = 0
        # --- fault accounting (zero on healthy runs) -----------------------
        #: Packets dropped because no surviving path reached the destination.
        self.dropped_packets = 0
        #: Dropped packets whose creation cycle fell in the window.
        self.dropped_in_window = 0
        #: Delivered packets that took at least one fault-fallback hop.
        self.fault_rerouted_delivered = 0
        # Per-fault-epoch throughput: epoch i spans
        # [_epoch_starts[i], _epoch_starts[i+1]) and delivered
        # _epoch_phits[i] phits.  Epoch 0 starts at cycle 0.
        self._epoch_starts = [0]
        self._epoch_phits = [0]
        self._last_fault_cycle = 0

    # -- window helpers ---------------------------------------------------------
    def in_window(self, cycle: int) -> bool:
        if cycle < self.measure_start:
            return False
        return self.measure_end is None or cycle < self.measure_end

    def finalize_window(self) -> None:
        """Set the throughput normalisation once the window bounds are known."""
        if self.measure_end is None:
            raise ValueError("measure_end must be set before finalizing the window")
        self.throughput.set_window(self.measure_end - self.measure_start)

    # -- event sinks --------------------------------------------------------------
    def record_generated(self, packet: Packet) -> None:
        if self.in_window(packet.creation_cycle):
            self.generated_in_window += 1

    def record_delivery(self, packet: Packet, cycle: int) -> None:
        assert packet.delivered_cycle is not None
        if self.in_window(packet.delivered_cycle):
            self.throughput.record_delivery(packet.size_phits)
            if packet.fault_mode:
                self.fault_rerouted_delivered += 1
        self._epoch_phits[-1] += packet.size_phits
        if self.in_window(packet.creation_cycle):
            latency = packet.latency
            assert latency is not None
            self.latency.record(latency)
            self.misrouting.record(
                globally_misrouted=packet.globally_misrouted,
                locally_misrouted=packet.locally_misrouted,
                hops=packet.hops,
            )
        if self.timeseries is not None:
            latency = packet.latency
            assert latency is not None
            self.timeseries.record(
                packet.creation_cycle,
                latency,
                globally_misrouted=packet.globally_misrouted,
                size_phits=packet.size_phits,
            )

    def record_dropped(self, packet: Packet, cycle: int) -> None:
        """A packet was dropped: its destination became unreachable."""
        self.dropped_packets += 1
        if self.in_window(packet.creation_cycle):
            self.dropped_in_window += 1

    def on_fault_epoch(self, cycle: int) -> None:
        """The fault state changed at ``cycle``: open a new throughput epoch."""
        if cycle == self._last_fault_cycle and len(self._epoch_starts) > 1:
            return
        self._epoch_starts.append(cycle)
        self._epoch_phits.append(0)
        self._last_fault_cycle = cycle

    def epoch_throughput(self, end_cycle: int) -> list:
        """Per-fault-epoch delivered phits/cycle, as ``(start, end, rate)``.

        ``end_cycle`` closes the last (still open) epoch.  On a run with no
        scheduled fault events this is a single epoch spanning the whole run.
        """
        out = []
        for i, start in enumerate(self._epoch_starts):
            end = (
                self._epoch_starts[i + 1]
                if i + 1 < len(self._epoch_starts)
                else end_cycle
            )
            span = end - start
            rate = self._epoch_phits[i] / span if span > 0 else 0.0
            out.append((start, end, rate))
        return out

    # -- summaries ---------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        out.update({f"latency_{k}": v for k, v in self.latency.summary().items()})
        out.update(self.throughput.summary())
        out.update(self.misrouting.summary())
        out["generated_in_window"] = float(self.generated_in_window)
        out["dropped_packets"] = float(self.dropped_packets)
        out["fault_rerouted_delivered"] = float(self.fault_rerouted_delivered)
        return out
