"""Multi-seed aggregation helpers.

The paper averages every figure over 10 independent simulations.  These
helpers combine the per-seed scalar results (mean latency, accepted load,
misrouted fraction) into means with confidence intervals, and average aligned
time series point-wise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

__all__ = ["AggregateResult", "aggregate_scalar", "aggregate_rows", "average_series"]


@dataclass(frozen=True, slots=True)
class AggregateResult:
    """Mean, standard deviation and 95 % confidence half-width of a metric."""

    mean: float
    std: float
    ci95: float
    n: int

    def as_dict(self) -> Dict[str, float]:
        return {"mean": self.mean, "std": self.std, "ci95": self.ci95, "n": float(self.n)}


def aggregate_scalar(values: Sequence[float]) -> AggregateResult:
    """Aggregate per-seed scalar values, ignoring NaNs."""
    clean = [v for v in values if not math.isnan(v)]
    n = len(clean)
    if n == 0:
        return AggregateResult(math.nan, math.nan, math.nan, 0)
    mean = float(np.mean(clean))
    std = float(np.std(clean, ddof=1)) if n > 1 else 0.0
    # Normal-approximation 95 % confidence half-width.
    ci95 = 1.96 * std / math.sqrt(n) if n > 1 else 0.0
    return AggregateResult(mean, std, ci95, n)


def aggregate_rows(rows: Iterable[Dict[str, float]], keys: Sequence[str]) -> Dict[str, AggregateResult]:
    """Aggregate a list of per-seed result dictionaries key by key."""
    rows = list(rows)
    return {key: aggregate_scalar([row[key] for row in rows if key in row]) for key in keys}


def average_series(series: Sequence[Sequence[float]]) -> List[float]:
    """Point-wise average of aligned time series (NaN-aware).

    Series may have different lengths; the result has the length of the
    longest one and each point averages the series that reach it.
    """
    series = [list(s) for s in series]
    if not series:
        return []
    length = max(len(s) for s in series)
    out: List[float] = []
    for i in range(length):
        values = [s[i] for s in series if i < len(s) and not math.isnan(s[i])]
        out.append(float(np.mean(values)) if values else math.nan)
    return out
