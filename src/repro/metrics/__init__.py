"""Measurement: latency, throughput, misrouting, time series, aggregation."""

from repro.metrics.collector import MetricsCollector
from repro.metrics.latency import LatencyStats
from repro.metrics.misrouting import MisroutingStats
from repro.metrics.statistics import (
    AggregateResult,
    aggregate_rows,
    aggregate_scalar,
    average_series,
)
from repro.metrics.throughput import ThroughputStats
from repro.metrics.timeseries import TimeSeriesPoint, TimeSeriesRecorder

__all__ = [
    "MetricsCollector",
    "LatencyStats",
    "ThroughputStats",
    "MisroutingStats",
    "TimeSeriesRecorder",
    "TimeSeriesPoint",
    "AggregateResult",
    "aggregate_scalar",
    "aggregate_rows",
    "average_series",
]
