"""Misrouting statistics."""

from __future__ import annotations

import math
from typing import Dict

__all__ = ["MisroutingStats"]


class MisroutingStats:
    """Counts globally and locally misrouted packets among delivered ones."""

    __slots__ = ("delivered", "globally_misrouted", "locally_misrouted", "mean_hops_sum")

    def __init__(self) -> None:
        self.delivered = 0
        self.globally_misrouted = 0
        self.locally_misrouted = 0
        self.mean_hops_sum = 0

    def record(self, *, globally_misrouted: bool, locally_misrouted: bool, hops: int) -> None:
        self.delivered += 1
        self.mean_hops_sum += hops
        if globally_misrouted:
            self.globally_misrouted += 1
        if locally_misrouted:
            self.locally_misrouted += 1

    @property
    def global_misroute_fraction(self) -> float:
        if self.delivered == 0:
            return math.nan
        return self.globally_misrouted / self.delivered

    @property
    def local_misroute_fraction(self) -> float:
        if self.delivered == 0:
            return math.nan
        return self.locally_misrouted / self.delivered

    @property
    def mean_hops(self) -> float:
        if self.delivered == 0:
            return math.nan
        return self.mean_hops_sum / self.delivered

    def summary(self) -> Dict[str, float]:
        return {
            "delivered": float(self.delivered),
            "global_misroute_fraction": self.global_misroute_fraction,
            "local_misroute_fraction": self.local_misroute_fraction,
            "mean_hops": self.mean_hops,
        }
