"""Router ports: input ports with per-VC buffers, output ports with credits.

An :class:`InputPort` owns one :class:`~repro.network.buffer.VCBuffer` per
virtual channel plus the list of packets currently in flight on its incoming
link (they become visible in the buffer only when the tail arrives).

An :class:`OutputPort` owns the output buffer, the per-downstream-VC credit
counters, the router-pipeline delay line of granted packets, and the state of
the outgoing link (serialization/busy time and in-flight credit returns).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.network.buffer import OutputBuffer, VCBuffer
from repro.network.packet import Packet
from repro.topology.base import PortKind

__all__ = ["InputVC", "InputPort", "OutputPort"]


class InputVC:
    """One virtual channel of an input port."""

    __slots__ = ("buffer", "head_seen")

    def __init__(self, capacity_phits: int):
        self.buffer = VCBuffer(capacity_phits)
        #: Whether the current head packet has already been reported to the
        #: routing algorithm (contention counters are incremented exactly once
        #: per packet when it reaches the head of its buffer).
        self.head_seen = False


class InputPort:
    """Input side of a router port."""

    __slots__ = (
        "router_id",
        "port",
        "kind",
        "vcs",
        "arrivals",
        "upstream",
        "upstream_router",
        "upstream_port",
        "upstream_latency",
    )

    def __init__(
        self,
        router_id: int,
        port: int,
        kind: PortKind,
        num_vcs: int,
        vc_capacity_phits: int,
        upstream: Optional[Tuple[int, int]] = None,
    ):
        self.router_id = router_id
        self.port = port
        self.kind = kind
        self.vcs: List[InputVC] = [InputVC(vc_capacity_phits) for _ in range(num_vcs)]
        #: Packets in flight on the incoming link: (arrival_complete_cycle, vc, packet),
        #: kept in arrival order (the link serializes transmissions).
        self.arrivals: Deque[Tuple[int, int, Packet]] = deque()
        #: ``(upstream_router_id, upstream_port)`` feeding this input port, or
        #: ``None`` for injection ports (fed by a compute node).
        self.upstream = upstream
        #: Direct references resolved by :class:`~repro.network.network.Network`
        #: once the routers exist, so the credit-return hot path needs no
        #: router-table indexing: the upstream Router object, its output port
        #: index, and that link's latency.
        self.upstream_router = None
        self.upstream_port = -1
        self.upstream_latency = 1

    @property
    def num_vcs(self) -> int:
        return len(self.vcs)

    def schedule_arrival(self, complete_cycle: int, vc: int, packet: Packet) -> None:
        """Register a packet that will have fully arrived at ``complete_cycle``."""
        self.arrivals.append((complete_cycle, vc, packet))

    def pop_arrivals(self, cycle: int) -> List[Tuple[int, Packet]]:
        """Return ``(vc, packet)`` for every packet fully arrived by ``cycle``."""
        out: List[Tuple[int, Packet]] = []
        while self.arrivals and self.arrivals[0][0] <= cycle:
            _, vc, packet = self.arrivals.popleft()
            out.append((vc, packet))
        return out

    def occupancy_phits(self) -> int:
        """Total phits buffered across all VCs of this input port."""
        return sum(vc.buffer.occupied_phits for vc in self.vcs)

    def total_packets(self) -> int:
        return sum(vc.buffer.num_packets for vc in self.vcs)


class OutputPort:
    """Output side of a router port."""

    __slots__ = (
        "router_id",
        "port",
        "kind",
        "neighbor",
        "link_latency",
        "serialize_factor",
        "buffer",
        "credits",
        "max_credits",
        "pipeline",
        "link_busy_until",
        "pending_credits",
        "credit_occupied",
        "downstream_router",
        "downstream_port",
    )

    def __init__(
        self,
        router_id: int,
        port: int,
        kind: PortKind,
        buffer_capacity_phits: int,
        downstream_vcs: int,
        downstream_vc_capacity_phits: int,
        link_latency: int,
        neighbor: Optional[Tuple[int, int]] = None,
    ):
        self.router_id = router_id
        self.port = port
        self.kind = kind
        #: ``(downstream_router_id, downstream_port)``, or ``None`` for
        #: ejection ports (the packet is consumed by the attached node).
        self.neighbor = neighbor
        self.link_latency = link_latency
        #: Serialization-time multiplier of the outgoing link (1 = healthy;
        #: a degraded link sets >1, halving/quartering its bandwidth).
        self.serialize_factor = 1
        self.buffer = OutputBuffer(buffer_capacity_phits)
        if neighbor is None:
            # Ejection: model a single, effectively unbounded downstream VC.
            self.max_credits = [2**30]
        else:
            self.max_credits = [downstream_vc_capacity_phits] * downstream_vcs
        self.credits: List[int] = list(self.max_credits)
        #: Router-pipeline delay line: (ready_cycle, packet), FIFO ordered.
        self.pipeline: Deque[Tuple[int, Packet]] = deque()
        #: Cycle until which the outgoing link is serializing a packet.
        self.link_busy_until = 0
        #: Credits returned by the downstream router, in flight on the
        #: reverse channel: (arrival_cycle, vc, phits).
        self.pending_credits: Deque[Tuple[int, int, int]] = deque()
        #: Aggregate of ``max_credits - credits`` over all VCs, maintained by
        #: ``consume_credits``/``apply_credit_returns`` so the adaptive
        #: mechanisms' occupancy estimate is an attribute read instead of a
        #: per-VC sum.
        self.credit_occupied = 0
        #: Direct reference to the downstream Router object (resolved by the
        #: Network) and its input-port index; ``None`` for ejection ports.
        self.downstream_router = None
        self.downstream_port = -1

    # -- credits --------------------------------------------------------------
    # ``credits`` must only be mutated through ``consume_credits`` and the
    # ``schedule_credit_return``/``apply_credit_returns`` pair, which keep the
    # ``credit_occupied`` aggregate consistent.
    @property
    def num_downstream_vcs(self) -> int:
        return len(self.credits)

    def credit_occupancy(self, vc: Optional[int] = None) -> int:
        """Estimated downstream occupancy (max credits minus available credits).

        With in-flight packets and credits this is exactly the paper's
        credit-count congestion estimate, including its inherent uncertainty
        (Section II-B).
        """
        if vc is None:
            return self.credit_occupied
        return self.max_credits[vc] - self.credits[vc]

    def has_credits(self, vc: int, size_phits: int) -> bool:
        return self.credits[vc] >= size_phits

    def consume_credits(self, vc: int, size_phits: int) -> None:
        if self.credits[vc] < size_phits:
            raise RuntimeError(
                f"credit underflow on router {self.router_id} port {self.port} vc {vc}"
            )
        self.credits[vc] -= size_phits
        self.credit_occupied += size_phits

    def schedule_credit_return(self, arrival_cycle: int, vc: int, phits: int) -> None:
        self.pending_credits.append((arrival_cycle, vc, phits))

    def apply_credit_returns(self, cycle: int) -> int:
        """Apply credits that arrived by ``cycle``; return how many were applied."""
        applied = 0
        while self.pending_credits and self.pending_credits[0][0] <= cycle:
            _, vc, phits = self.pending_credits.popleft()
            applied += 1
            self.credits[vc] += phits
            self.credit_occupied -= phits
            if self.credits[vc] > self.max_credits[vc]:
                raise RuntimeError(
                    f"credit overflow on router {self.router_id} port {self.port} vc {vc}"
                )
        return applied

    # -- occupancy estimates used by adaptive routing --------------------------
    def total_occupancy(self) -> int:
        """Local output-buffer commitment plus estimated downstream occupancy."""
        return self.buffer.committed_phits + self.credit_occupied

    def local_occupancy(self) -> int:
        return self.buffer.committed_phits

    # -- pipeline ---------------------------------------------------------------
    def push_pipeline(self, ready_cycle: int, packet: Packet) -> None:
        self.pipeline.append((ready_cycle, packet))

    def drain_pipeline(self, cycle: int) -> None:
        """Move pipeline packets whose router traversal completed into the buffer."""
        while self.pipeline and self.pipeline[0][0] <= cycle:
            _, packet = self.pipeline.popleft()
            self.buffer.enqueue(packet)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OutputPort(router={self.router_id}, port={self.port}, kind={self.kind.value}, "
            f"buffer={self.buffer.committed_phits}/{self.buffer.capacity_phits}, "
            f"credits={self.credits})"
        )
