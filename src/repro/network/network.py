"""The assembled network: routers, nodes and their wiring.

:class:`Network` instantiates one :class:`~repro.network.router.Router` per
topology router and one :class:`~repro.network.node.ComputeNode` per compute
node, and gives every router a back-reference so credit returns and link
arrivals can be delivered directly to the destination port objects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List

from repro.config.parameters import SimulationParameters
from repro.network.node import ComputeNode
from repro.network.router import Router
from repro.topology.base import Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.routing.base import RoutingAlgorithm

__all__ = ["Network"]


class Network:
    """All routers and nodes of one simulated system."""

    __slots__ = (
        "topology",
        "params",
        "routing",
        "faults",
        "routers",
        "nodes",
        "_active_routers",
        "_active_nodes",
        "_routers_unsorted",
        "_nodes_unsorted",
    )

    def __init__(
        self,
        topology: Topology,
        params: SimulationParameters,
        routing: "RoutingAlgorithm",
        faults=None,
    ):
        self.topology = topology
        self.params = params
        self.routing = routing
        #: Shared fault state (``None`` on a healthy network); see
        #: :mod:`repro.topology.faults`.
        self.faults = faults
        self.routers: List[Router] = [
            Router(rid, topology, params, routing, faults=faults)
            for rid in range(topology.num_routers)
        ]
        for router in self.routers:
            router.network = self
        self.nodes: List[ComputeNode] = [
            ComputeNode(nid, self.routers[topology.node_router(nid)], topology)
            for nid in range(topology.num_nodes)
        ]
        # Resolve the per-port upstream/downstream references now that every
        # router exists, so the credit-return and link-transmission hot paths
        # reach their peer objects with plain attribute reads.
        for router in self.routers:
            for ip in router.input_ports:
                if ip.upstream is not None:
                    up_router, up_port = ip.upstream
                    ip.upstream_router = self.routers[up_router]
                    ip.upstream_port = up_port
                    ip.upstream_latency = (
                        ip.upstream_router.output_ports[up_port].link_latency
                    )
            for op in router.output_ports:
                if op.neighbor is not None:
                    down_router, down_port = op.neighbor
                    op.downstream_router = self.routers[down_router]
                    op.downstream_port = down_port
        # Active sets: routers with pending work and nodes with a source-queue
        # backlog.  The engine only steps members of these sets; routers and
        # nodes register themselves when work arrives (arrivals, credits,
        # buffer pushes, generated traffic) and the engine retires them once
        # their work counters drop to zero.
        self._active_routers: List[Router] = []
        self._active_nodes: List[ComputeNode] = []
        # Activations append (cheap) and set the dirty flag; the engine sorts
        # an active set only when its flag is set instead of re-sorting every
        # cycle (its own filtering passes preserve the order).
        self._routers_unsorted = False
        self._nodes_unsorted = False

    # ------------------------------------------------------------- active sets
    def activate_router(self, router: Router) -> None:
        """Add ``router`` to the active set (no-op if already registered)."""
        if not router.active:
            router.active = True
            self._active_routers.append(router)
            self._routers_unsorted = True

    def activate_node(self, node: ComputeNode) -> None:
        """Add ``node`` to the backlogged-node set (no-op if registered)."""
        if not node.active:
            node.active = True
            self._active_nodes.append(node)
            self._nodes_unsorted = True

    @property
    def active_router_count(self) -> int:
        return len(self._active_routers)

    # ------------------------------------------------------------------ access
    def router(self, router_id: int) -> Router:
        return self.routers[router_id]

    def node(self, node_id: int) -> ComputeNode:
        return self.nodes[node_id]

    def region_routers(self, region: int) -> List[Router]:
        return [self.routers[r] for r in self.topology.region_routers(region)]

    #: Dragonfly-vocabulary alias (regions of a Dragonfly are its groups).
    group_routers = region_routers

    # ------------------------------------------------------------------ state
    def total_buffered_packets(self) -> int:
        """Packets currently inside the network (buffers, pipelines, links)."""
        in_routers = sum(r.total_buffered_packets() for r in self.routers)
        in_flight = sum(
            len(ip.arrivals) for r in self.routers for ip in r.input_ports
        )
        return in_routers + in_flight

    def total_source_queued(self) -> int:
        return sum(n.source_queue_length for n in self.nodes)

    def occupancy_summary(self) -> Dict[str, int]:
        """Aggregate occupancy (useful for debugging and tests)."""
        return {
            "buffered_packets": self.total_buffered_packets(),
            "source_queued": self.total_source_queued(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network(routers={len(self.routers)}, nodes={len(self.nodes)}, "
            f"routing={self.routing.name})"
        )
