"""Cycle-level network model: packets, buffers, ports, routers, nodes."""

from repro.network.allocator import AllocationRequest, RoundRobinArbiter, SeparableAllocator
from repro.network.buffer import OutputBuffer, VCBuffer
from repro.network.network import Network
from repro.network.node import ComputeNode
from repro.network.packet import Packet, RoutingPhase
from repro.network.ports import InputPort, InputVC, OutputPort
from repro.network.router import Router

__all__ = [
    "AllocationRequest",
    "RoundRobinArbiter",
    "SeparableAllocator",
    "OutputBuffer",
    "VCBuffer",
    "Network",
    "ComputeNode",
    "Packet",
    "RoutingPhase",
    "InputPort",
    "InputVC",
    "OutputPort",
    "Router",
]
