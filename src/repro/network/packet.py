"""Packet model.

The simulator works at packet granularity with phit-accurate accounting:
a packet occupies ``size_phits`` phits of buffer space and serializes over a
link at one phit per cycle.  Besides the usual identity fields, a packet
carries the routing state needed by the adaptive mechanisms: hop counters
(for virtual-channel assignment), the Valiant intermediate router (oblivious
nonminimal routing) or the intermediate group chosen by an in-transit global
misroute, and flags recording whether the packet has been misrouted globally
or locally (used both by the routing restrictions and by the metrics).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Packet", "RoutingPhase"]


class RoutingPhase(enum.Enum):
    """Coarse routing state of a packet.

    ``MINIMAL``
        The packet proceeds minimally towards its destination (possibly with
        local misrouting inside a group).
    ``TO_INTERMEDIATE``
        The packet is heading towards a nonminimal intermediate point: a
        Valiant intermediate router (VAL/PB) or an intermediate group chosen
        by an in-transit global misroute (OLM/Base/Hybrid/ECtN).
    """

    MINIMAL = "minimal"
    TO_INTERMEDIATE = "to_intermediate"


@dataclass(slots=True)
class Packet:
    """A network packet and its routing/measurement state."""

    pid: int
    src: int
    dst: int
    size_phits: int
    creation_cycle: int

    # --- measurement -------------------------------------------------------
    injection_cycle: Optional[int] = None   # entered the router injection buffer
    delivered_cycle: Optional[int] = None   # tail left the ejection port

    # --- routing state -----------------------------------------------------
    phase: RoutingPhase = RoutingPhase.MINIMAL
    valiant_router: Optional[int] = None     # VAL/PB intermediate router
    intermediate_group: Optional[int] = None  # in-transit global-misroute target
    local_hops: int = 0
    global_hops: int = 0
    local_hops_in_group: int = 0   # local hops taken inside the current group
    # --- dateline VC state (ring topologies; see repro.topology.torus) ------
    #: Valiant leg for the dateline schedule: 0 until the packet passes its
    #: Valiant intermediate router, 1 afterwards (minimal-only packets stay 0).
    vc_leg: int = 0
    #: Ring dimension of the packet's current traversal (-1 before any hop
    #: and right after a leg change).
    ring_dim: int = -1
    #: Whether the current ring traversal has reached its dateline (the
    #: wrap-around link); bumps the dateline buffer class.
    ring_crossed: bool = False
    #: Direction (+1 / -1) of the current ring traversal, 0 before any ring
    #: hop.  The ring-escape policy commits a traversal to one direction —
    #: minimal or the contention-triggered long way — and holds it there
    #: until the dimension is corrected, so a traversal crosses its
    #: dateline at most once.
    ring_dir: int = 0
    globally_misrouted: bool = False
    locally_misrouted: bool = False
    misroute_recorded_cycle: Optional[int] = None  # first nonminimal global hop
    current_vc: int = 0
    source_group: int = -1

    # --- contention-counter bookkeeping (Section III) -----------------------
    #: Output port whose contention counter this packet is currently holding
    #: incremented (set when it reaches the head of an input buffer).
    contention_port: Optional[int] = None
    #: Group-local global-link offset this packet currently contributes to in
    #: the router's ECtN partial array.
    ectn_offset: Optional[int] = None
    #: Set when the packet took a local "proxy" hop of an MM+L global
    #: misroute: its next hop must leave the group through a global link.
    must_misroute_global: bool = False

    # --- fault handling (see repro.topology.faults) --------------------------
    #: Sticky flag: the packet hit a failed link and now follows the
    #: surviving-path BFS tree to its destination (cleared never; the flag
    #: also feeds the rerouted-due-to-fault delivery counter).
    fault_mode: bool = False
    #: Cycle at which the packet was dropped because its destination became
    #: unreachable on the surviving graph (``None`` = not dropped).
    dropped_cycle: Optional[int] = None

    # --- bookkeeping -------------------------------------------------------
    hops: int = 0

    @property
    def latency(self) -> Optional[int]:
        """End-to-end latency in cycles (``None`` until delivered)."""
        if self.delivered_cycle is None:
            return None
        return self.delivered_cycle - self.creation_cycle

    @property
    def queue_latency(self) -> Optional[int]:
        """Cycles spent waiting in the source queue before injection."""
        if self.injection_cycle is None:
            return None
        return self.injection_cycle - self.creation_cycle

    @property
    def delivered(self) -> bool:
        return self.delivered_cycle is not None

    @property
    def misrouted(self) -> bool:
        """Whether the packet took any nonminimal (global or local) hop."""
        return self.globally_misrouted or self.locally_misrouted

    def record_hop(self, *, is_global: bool) -> None:
        """Update hop counters when the packet is forwarded through a port."""
        self.hops += 1
        if is_global:
            self.global_hops += 1
            self.local_hops_in_group = 0
        else:
            self.local_hops += 1
            self.local_hops_in_group += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Packet(pid={self.pid}, {self.src}->{self.dst}, size={self.size_phits}, "
            f"phase={self.phase.value}, hops={self.hops}, "
            f"gm={self.globally_misrouted}, lm={self.locally_misrouted})"
        )
