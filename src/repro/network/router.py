"""Cycle-level input/output-buffered virtual cut-through router.

The model follows the simple (non-tiled) high-radix router of the paper's
methodology (Section IV-B): per-VC input buffers with credit-based flow
control, a separable batch allocator with configurable internal speedup, a
fixed router pipeline latency, and per-port output buffers feeding the links.

Per-cycle operation (driven by :class:`repro.simulation.engine.Engine`):

1. ``begin_cycle`` — apply in-flight credit returns and store packets whose
   link transmission completed into the input VC buffers.
2. ``allocate`` — report new input-VC heads to the routing algorithm
   (contention counters), gather routing decisions for every head, run
   ``internal_speedup`` rounds of separable allocation, and move winners into
   the router pipeline towards their output port (returning credits
   upstream).
3. ``transmit`` — move pipeline-completed packets into the output buffers and
   start link transmissions (or deliver to the attached node on ejection
   ports) whenever the link is free and downstream credits allow.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.config.parameters import SimulationParameters
from repro.network.allocator import AllocationRequest, SeparableAllocator
from repro.network.packet import Packet
from repro.network.ports import InputPort, OutputPort
from repro.topology.base import PortKind
from repro.topology.dragonfly import DragonflyTopology

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network
    from repro.routing.base import RoutingAlgorithm

__all__ = ["Router"]


class Router:
    """One router of the network."""

    def __init__(
        self,
        router_id: int,
        topology: DragonflyTopology,
        params: SimulationParameters,
        routing: "RoutingAlgorithm",
    ):
        self.router_id = router_id
        self.topology = topology
        self.params = params
        self.routing = routing
        self.network: Optional["Network"] = None  # set by Network

        self.input_ports: List[InputPort] = []
        self.output_ports: List[OutputPort] = []
        self._build_ports()

        max_vcs = max(len(ip.vcs) for ip in self.input_ports)
        self.allocator = SeparableAllocator(topology.router_radix, max_vcs)

        # Delivered packets of the current cycle (drained by the engine).
        self.delivered: List[Packet] = []
        # (cycle, was_misrouted) events for first global hops (drained by engine).
        self.global_hop_events: List[Tuple[int, bool]] = []

    # ------------------------------------------------------------------ build
    def _build_ports(self) -> None:
        topo = self.topology
        params = self.params
        routing = self.routing
        for port in range(topo.router_radix):
            kind = topo.port_kind(port)
            nbr = topo.neighbor(self.router_id, port)
            num_vcs = routing.num_vcs(kind)
            in_capacity = params.input_buffer_phits(kind.value)
            self.input_ports.append(
                InputPort(
                    router_id=self.router_id,
                    port=port,
                    kind=kind,
                    num_vcs=num_vcs,
                    vc_capacity_phits=in_capacity,
                    upstream=nbr,
                )
            )
            latency = self._link_latency(kind)
            if nbr is None:
                downstream_vcs = 1
                downstream_capacity = 2**30
            else:
                downstream_vcs = num_vcs
                downstream_capacity = in_capacity
            self.output_ports.append(
                OutputPort(
                    router_id=self.router_id,
                    port=port,
                    kind=kind,
                    buffer_capacity_phits=params.output_buffer_phits,
                    downstream_vcs=downstream_vcs,
                    downstream_vc_capacity_phits=downstream_capacity,
                    link_latency=latency,
                    neighbor=nbr,
                )
            )

    def _link_latency(self, kind: PortKind) -> int:
        if kind is PortKind.GLOBAL:
            return self.params.global_link_latency
        if kind is PortKind.LOCAL:
            return self.params.local_link_latency
        return 1  # injection/ejection: the node sits next to the router

    # ------------------------------------------------------------------ phases
    def begin_cycle(self, cycle: int) -> None:
        """Apply credit returns and receive packets whose transmission finished."""
        for op in self.output_ports:
            if op.pending_credits:
                op.apply_credit_returns(cycle)
        for ip in self.input_ports:
            if not ip.arrivals:
                continue
            for vc, packet in ip.pop_arrivals(cycle):
                ip.vcs[vc].buffer.push(packet)
                self.routing.on_packet_arrival(self, ip.port, vc, packet, cycle)

    def allocate(self, cycle: int) -> None:
        """Report new heads, route them and run the separable allocation rounds."""
        routing = self.routing
        # --- new-head detection (contention counters) -------------------------
        for ip in self.input_ports:
            for vc_idx, ivc in enumerate(ip.vcs):
                if ivc.head_seen or ivc.buffer.empty:
                    continue
                head = ivc.buffer.head()
                assert head is not None
                routing.on_packet_head(self, ip.port, vc_idx, head, cycle)
                ivc.head_seen = True

        # --- allocation rounds (internal speedup) ------------------------------
        granted_vcs: set = set()
        for _ in range(self.params.internal_speedup):
            requests: List[AllocationRequest] = []
            for ip in self.input_ports:
                for vc_idx, ivc in enumerate(ip.vcs):
                    if (ip.port, vc_idx) in granted_vcs or ivc.buffer.empty:
                        continue
                    head = ivc.buffer.head()
                    assert head is not None
                    decision = routing.select_output(self, ip.port, vc_idx, head, cycle)
                    if decision is None:
                        continue
                    out = self.output_ports[decision.output_port]
                    if not out.buffer.can_commit(head.size_phits):
                        continue
                    # Virtual cut-through: the downstream VC must have room for
                    # the whole packet before it may leave the input buffer.
                    # Credits are reserved at grant time, which guarantees that
                    # the output stage always drains (no deadlock through the
                    # shared output buffers).
                    if not out.has_credits(decision.vc, head.size_phits):
                        continue
                    requests.append(
                        AllocationRequest(
                            input_port=ip.port,
                            input_vc=vc_idx,
                            output_port=decision.output_port,
                            size_phits=head.size_phits,
                            payload=decision,
                        )
                    )
            if not requests:
                break
            for grant in self.allocator.allocate(requests):
                self._apply_grant(grant, cycle)
                granted_vcs.add((grant.input_port, grant.input_vc))

    def _apply_grant(self, grant: AllocationRequest, cycle: int) -> None:
        decision = grant.payload
        ip = self.input_ports[grant.input_port]
        ivc = ip.vcs[grant.input_vc]
        packet = ivc.buffer.pop()
        ivc.head_seen = False

        # Credit return to the upstream router (not for injection ports).
        if ip.upstream is not None:
            assert self.network is not None
            up_router, up_port = ip.upstream
            upstream_out = self.network.routers[up_router].output_ports[up_port]
            upstream_out.schedule_credit_return(
                cycle + upstream_out.link_latency, grant.input_vc, packet.size_phits
            )

        self.routing.on_packet_leave_input(self, ip.port, grant.input_vc, packet, cycle)
        self.routing.on_grant(self, ip.port, grant.input_vc, packet, decision, cycle)

        out = self.output_ports[decision.output_port]
        if out.kind is not PortKind.INJECTION:
            packet.record_hop(is_global=out.kind is PortKind.GLOBAL)
            if out.kind is PortKind.GLOBAL and packet.global_hops == 1:
                self.global_hop_events.append((cycle, decision.nonminimal_global))
        packet.current_vc = decision.vc
        out.buffer.commit(packet.size_phits)
        out.consume_credits(decision.vc, packet.size_phits)
        out.push_pipeline(cycle + self.params.router_latency, packet)

    def transmit(self, cycle: int) -> None:
        """Start link transmissions / node deliveries on every output port."""
        for out in self.output_ports:
            if out.pipeline:
                out.drain_pipeline(cycle)
            if out.link_busy_until > cycle or out.buffer.empty:
                continue
            if out.neighbor is None:
                packet = out.buffer.pop()
                out.link_busy_until = cycle + packet.size_phits
                packet.delivered_cycle = cycle + packet.size_phits
                self.delivered.append(packet)
                continue
            # Downstream credits were reserved at grant time, so the head of
            # the output buffer can always be transmitted once the link frees.
            packet = out.buffer.pop()
            out.link_busy_until = cycle + packet.size_phits
            nbr_router, nbr_port = out.neighbor
            assert self.network is not None
            target = self.network.routers[nbr_router].input_ports[nbr_port]
            complete = cycle + out.link_latency + packet.size_phits
            target.schedule_arrival(complete, packet.current_vc, packet)

    # ------------------------------------------------------------- inspection
    @property
    def group(self) -> int:
        return self.topology.router_group(self.router_id)

    @property
    def position(self) -> int:
        return self.topology.router_position(self.router_id)

    def output_occupancy(self, port: int) -> int:
        """Output-buffer commitment plus credit-estimated downstream occupancy."""
        return self.output_ports[port].total_occupancy()

    def input_occupancy(self, port: int) -> int:
        return self.input_ports[port].occupancy_phits()

    def total_buffered_packets(self) -> int:
        n = sum(ip.total_packets() for ip in self.input_ports)
        n += sum(len(op.buffer) + len(op.pipeline) for op in self.output_ports)
        return n

    def drain_events(self) -> Tuple[List[Packet], List[Tuple[int, bool]]]:
        """Return and clear this router's delivery and global-hop events."""
        delivered, self.delivered = self.delivered, []
        events, self.global_hop_events = self.global_hop_events, []
        return delivered, events

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Router(id={self.router_id}, group={self.group}, pos={self.position})"
