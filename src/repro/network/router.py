"""Cycle-level input/output-buffered virtual cut-through router.

The model follows the simple (non-tiled) high-radix router of the paper's
methodology (Section IV-B): per-VC input buffers with credit-based flow
control, a separable batch allocator with configurable internal speedup, a
fixed router pipeline latency, and per-port output buffers feeding the links.

Per-cycle operation (driven by :class:`repro.simulation.engine.Engine`):

1. ``begin_cycle`` — apply in-flight credit returns and store packets whose
   link transmission completed into the input VC buffers.
2. ``allocate`` — report new input-VC heads to the routing algorithm
   (contention counters), gather routing decisions for every head, run
   ``internal_speedup`` rounds of separable allocation, and move winners into
   the router pipeline towards their output port (returning credits
   upstream).
3. ``transmit`` — move pipeline-completed packets into the output buffers and
   start link transmissions (or deliver to the attached node on ejection
   ports) whenever the link is free and downstream credits allow.

Activity tracking
-----------------
The router maintains aggregate work counters (in-flight arrivals, buffered
input packets, in-flight credit returns, pipeline/output-buffer packets) and
a set of occupied input VCs.  Every phase early-outs when its counter is
zero, ``allocate`` only visits occupied VCs instead of re-scanning all
``radix x num_vcs`` channels per speedup round, and the engine only steps
routers registered in the network's active set — an idle router costs
nothing per cycle.  The counters are updated at the few places packets and
credits enter or leave the router, so activation/deactivation is O(1).
"""

from __future__ import annotations

from bisect import insort
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

from repro.config.parameters import SimulationParameters
from repro.network.allocator import AllocationRequest, SeparableAllocator
from repro.network.packet import Packet
from repro.network.ports import InputPort, OutputPort
from repro.topology.base import PortKind, Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network
    from repro.routing.base import RoutingAlgorithm

__all__ = ["Router"]


#: Sentinel for "no scheduled event" (larger than any simulated cycle).
_NO_EVENT = 2**62


class Router:
    """One router of the network."""

    __slots__ = (
        "router_id",
        "topology",
        "params",
        "routing",
        "network",
        "_speedup",
        "_router_latency",
        "_pure_decisions",
        "input_ports",
        "output_ports",
        "allocator",
        "_vc_map",
        "delivered",
        "active",
        "_occupied_vcs",
        "_new_heads",
        "_arrival_ports",
        "_credit_ports",
        "_busy_out_ports",
        "_next_begin_event",
        "_next_transmit_event",
        "_notify_arrival",
        "_notify_head",
        "_notify_leave",
    )

    def __init__(
        self,
        router_id: int,
        topology: Topology,
        params: SimulationParameters,
        routing: "RoutingAlgorithm",
    ):
        self.router_id = router_id
        self.topology = topology
        self.params = params
        self.routing = routing
        self.network: Optional["Network"] = None  # set by Network
        self._speedup = params.internal_speedup
        self._router_latency = params.router_latency
        self._pure_decisions = routing.decision_is_pure

        self.input_ports: List[InputPort] = []
        self.output_ports: List[OutputPort] = []
        self._build_ports()

        max_vcs = max(len(ip.vcs) for ip in self.input_ports)
        self.allocator = SeparableAllocator(topology.router_radix, max_vcs)

        # (port, vc) -> InputVC, so the allocation loop reaches a head with a
        # single dict lookup instead of chained list indexing.
        self._vc_map = {
            (ip.port, vc): ivc
            for ip in self.input_ports
            for vc, ivc in enumerate(ip.vcs)
        }

        # Delivered packets of the current cycle (drained by the engine).
        self.delivered: List[Packet] = []

        # -- activity tracking ------------------------------------------------
        # The work lists below are kept sorted (insort on insert), so the
        # phases can iterate them directly in the port-major order of a full
        # scan without re-sorting every cycle.  They are small (bounded by
        # radix x VCs), so the O(n) inserts/removes are cheap.
        #: Whether this router is registered in the network's active set.
        self.active = False
        #: ``(port, vc)`` of every non-empty input VC buffer.
        self._occupied_vcs: List[Tuple[int, int]] = []
        #: Input VCs whose head changed since the last new-head report
        #: (buffer went empty -> non-empty, or a grant exposed the next
        #: packet).  Only maintained for mechanisms with a head hook.
        self._new_heads: List[Tuple[int, int]] = []
        #: Input ports with packets in flight on their incoming link.
        self._arrival_ports: List[int] = []
        #: Output ports with credit returns in flight on the reverse channel.
        self._credit_ports: List[int] = []
        #: Output ports with packets in the pipeline or the output buffer.
        self._busy_out_ports: List[int] = []
        #: Exact earliest cycle at which ``begin_cycle`` has something to do
        #: (a link arrival or credit return matures) and at which ``transmit``
        #: has something to do (a pipeline exit or a free link with a queued
        #: head).  Maintained at the scheduling sites and recomputed by the
        #: phases themselves, so the engine can skip a phase call — and
        #: compute the router's time-warp horizon — with one comparison.
        self._next_begin_event = _NO_EVENT
        self._next_transmit_event = _NO_EVENT

        # Skip no-op routing hooks in the hot loops (MIN/VAL/OLM do not track
        # heads; MIN does not watch arrivals).
        from repro.routing.base import RoutingAlgorithm as _Base

        routing_cls = type(routing)
        self._notify_arrival = (
            routing_cls.on_packet_arrival is not _Base.on_packet_arrival
        )
        self._notify_head = routing_cls.on_packet_head is not _Base.on_packet_head
        self._notify_leave = (
            routing_cls.on_packet_leave_input is not _Base.on_packet_leave_input
        )

    # ------------------------------------------------------------------ build
    def _build_ports(self) -> None:
        topo = self.topology
        params = self.params
        routing = self.routing
        for port in range(topo.router_radix):
            kind = topo.port_kind(port)
            nbr = topo.neighbor(self.router_id, port)
            num_vcs = routing.num_vcs(kind)
            in_capacity = params.input_buffer_phits(kind.value)
            self.input_ports.append(
                InputPort(
                    router_id=self.router_id,
                    port=port,
                    kind=kind,
                    num_vcs=num_vcs,
                    vc_capacity_phits=in_capacity,
                    upstream=nbr,
                )
            )
            latency = self._link_latency(kind)
            if nbr is None:
                downstream_vcs = 1
                downstream_capacity = 2**30
            else:
                downstream_vcs = num_vcs
                downstream_capacity = in_capacity
            self.output_ports.append(
                OutputPort(
                    router_id=self.router_id,
                    port=port,
                    kind=kind,
                    buffer_capacity_phits=params.output_buffer_phits,
                    downstream_vcs=downstream_vcs,
                    downstream_vc_capacity_phits=downstream_capacity,
                    link_latency=latency,
                    neighbor=nbr,
                )
            )

    def _link_latency(self, kind: PortKind) -> int:
        if kind is PortKind.GLOBAL:
            return self.params.global_link_latency
        if kind is PortKind.LOCAL:
            return self.params.local_link_latency
        return 1  # injection/ejection: the node sits next to the router

    # -------------------------------------------------------- activity tracking
    def activate(self) -> None:
        """Register this router in the network's active set."""
        if not self.active and self.network is not None:
            self.network.activate_router(self)

    def has_work(self) -> bool:
        """Whether any phase of the next cycles can do something."""
        return bool(
            self._occupied_vcs
            or self._arrival_ports
            or self._credit_ports
            or self._busy_out_ports
        )

    def next_event_cycle(self) -> int:
        """Earliest cycle at which this router can make progress.

        Used by the time-warp engine: an occupied input VC means "right now"
        (allocation must be retried every cycle), otherwise the answer is the
        min over the cached begin/transmit event times (scheduled link
        arrivals, in-flight credit returns, pipeline completions and
        link-free times).  Returns the huge ``_NO_EVENT`` sentinel when
        nothing is scheduled (the router is about to be retired).
        """
        if self._occupied_vcs:
            return -1
        begin = self._next_begin_event
        transmit = self._next_transmit_event
        return begin if begin < transmit else transmit

    def receive_arrival(
        self, port: int, complete_cycle: int, vc: int, packet: Packet
    ) -> None:
        """A neighbour started transmitting ``packet`` towards input ``port``."""
        ip = self.input_ports[port]
        if not ip.arrivals:
            insort(self._arrival_ports, port)
        ip.schedule_arrival(complete_cycle, vc, packet)
        if complete_cycle < self._next_begin_event:
            self._next_begin_event = complete_cycle
        if not self.active and self.network is not None:
            self.network.activate_router(self)

    def receive_credit_return(
        self, port: int, arrival_cycle: int, vc: int, phits: int
    ) -> None:
        """The downstream router freed buffer space fed by output ``port``."""
        op = self.output_ports[port]
        if not op.pending_credits:
            insort(self._credit_ports, port)
        op.schedule_credit_return(arrival_cycle, vc, phits)
        if arrival_cycle < self._next_begin_event:
            self._next_begin_event = arrival_cycle
        if not self.active and self.network is not None:
            self.network.activate_router(self)

    def note_input_push(self, port: int, vc: int) -> None:
        """Bookkeeping after a packet was pushed into input VC ``(port, vc)``."""
        if self.input_ports[port].vcs[vc].buffer.num_packets == 1:
            insort(self._occupied_vcs, (port, vc))
            if self._notify_head:
                self._new_heads.append((port, vc))
        if not self.active and self.network is not None:
            self.network.activate_router(self)

    # ------------------------------------------------------------------ phases
    def begin_cycle(self, cycle: int) -> None:
        """Apply credit returns and receive packets whose transmission finished."""
        nxt = _NO_EVENT
        credit_ports = self._credit_ports
        if credit_ports:
            remaining = []
            for port in credit_ports:
                op = self.output_ports[port]
                pending = op.pending_credits
                if pending[0][0] <= cycle:
                    op.apply_credit_returns(cycle)
                if pending:
                    remaining.append(port)
                    c = pending[0][0]
                    if c < nxt:
                        nxt = c
            self._credit_ports = remaining
        arrival_ports = self._arrival_ports
        if arrival_ports:
            occupied = self._occupied_vcs
            routing = self.routing
            notify = self._notify_arrival
            notify_head = self._notify_head
            new_heads = self._new_heads
            input_ports = self.input_ports
            remaining = []
            for port in arrival_ports:
                ip = input_ports[port]
                arrivals = ip.arrivals
                if arrivals[0][0] <= cycle:
                    vcs = ip.vcs
                    while arrivals and arrivals[0][0] <= cycle:
                        _, vc, packet = arrivals.popleft()
                        buf = vcs[vc].buffer
                        if buf.head_packet is None:
                            insort(occupied, (port, vc))
                            if notify_head:
                                new_heads.append((port, vc))
                        buf.push(packet)
                        if notify:
                            routing.on_packet_arrival(self, port, vc, packet, cycle)
                if arrivals:
                    remaining.append(port)
                    c = arrivals[0][0]
                    if c < nxt:
                        nxt = c
            self._arrival_ports = remaining
        self._next_begin_event = nxt

    def allocate(self, cycle: int) -> None:
        """Report new heads, route them and run the separable allocation rounds."""
        if not self._occupied_vcs:
            return
        routing = self.routing
        output_ports = self.output_ports
        vc_map = self._vc_map

        # --- new-head detection (contention counters) -------------------------
        # Only VCs whose head actually changed since the last report are
        # visited; sorting restores the port-major order of a full scan.
        if self._notify_head and self._new_heads:
            new_heads = self._new_heads
            if len(new_heads) > 1:
                new_heads.sort()
            for key in new_heads:
                ivc = vc_map[key]
                if ivc.head_seen:
                    continue
                port, vc_idx = key
                routing.on_packet_head(self, port, vc_idx, ivc.buffer.head_packet, cycle)
                ivc.head_seen = True
            self._new_heads = []

        # --- single-head fast path ---------------------------------------------
        # With exactly one occupied VC the round machinery degenerates: the
        # first round either grants that head (a one-request allocation always
        # succeeds, only the arbiter pointers rotate) or produces no request
        # at all, and in both cases every later round is a no-op (the VC is in
        # ``granted_vcs`` or the request list stays empty).  So exactly one
        # ``select_output`` call happens per cycle — identical to a full run.
        if len(self._occupied_vcs) == 1:
            key = self._occupied_vcs[0]
            head = vc_map[key].buffer.head_packet
            port, vc_idx = key
            decision = routing.select_output(self, port, vc_idx, head, cycle)
            if decision is None:
                return
            out = output_ports[decision.output_port]
            size = head.size_phits
            if out.buffer.free_phits < size or out.credits[decision.vc] < size:
                return
            self.allocator.grant_single(port, vc_idx, decision.output_port)
            self._commit_grant(port, vc_idx, decision, cycle)
            return

        # --- allocation rounds (internal speedup) ------------------------------
        # The occupied list holds exactly the non-empty input VCs in
        # port-major, VC-minor order, reproducing the visit order of a full
        # scan.  Grants remove entries from the live list, so iterate a copy.
        # For mechanisms with pure decisions (MIN/VAL/PB) the first round's
        # routing decision is reused by the later rounds of this cycle: a VC
        # granted once is skipped for the rest of the cycle, so the head — and
        # therefore its decision — cannot change between rounds.
        occupied = self._occupied_vcs[:]
        decision_memo = {} if self._pure_decisions else None
        granted_vcs: Set[Tuple[int, int]] = set()
        for round_index in range(self._speedup):
            requests: List[AllocationRequest] = []
            for key in occupied:
                if key in granted_vcs:
                    continue
                head = vc_map[key].buffer.head_packet
                if head is None:
                    continue
                port, vc_idx = key
                if decision_memo is None or round_index == 0:
                    decision = routing.select_output(self, port, vc_idx, head, cycle)
                    if decision_memo is not None:
                        decision_memo[key] = decision
                else:
                    decision = decision_memo[key]
                if decision is None:
                    continue
                out_port = decision.output_port
                out = output_ports[out_port]
                size = head.size_phits
                if out.buffer.free_phits < size:
                    continue
                # Virtual cut-through: the downstream VC must have room for
                # the whole packet before it may leave the input buffer.
                # Credits are reserved at grant time, which guarantees that
                # the output stage always drains (no deadlock through the
                # shared output buffers).
                if out.credits[decision.vc] < size:
                    continue
                requests.append(
                    AllocationRequest(port, vc_idx, out_port, size, decision)
                )
            if not requests:
                break
            for grant in self.allocator.allocate(requests):
                self._commit_grant(grant.input_port, grant.input_vc, grant.payload, cycle)
                granted_vcs.add((grant.input_port, grant.input_vc))

    def _commit_grant(self, input_port: int, input_vc: int, decision, cycle: int) -> None:
        ip = self.input_ports[input_port]
        ivc = ip.vcs[input_vc]
        packet = ivc.buffer.pop()
        ivc.head_seen = False
        if ivc.buffer.head_packet is None:
            self._occupied_vcs.remove((input_port, input_vc))
        elif self._notify_head:
            self._new_heads.append((input_port, input_vc))

        # Credit return to the upstream router (not for injection ports).
        upstream = ip.upstream_router
        if upstream is not None:
            upstream.receive_credit_return(
                ip.upstream_port,
                cycle + ip.upstream_latency,
                input_vc,
                packet.size_phits,
            )

        if self._notify_leave:
            self.routing.on_packet_leave_input(self, input_port, input_vc, packet, cycle)
        self.routing.on_grant(self, input_port, input_vc, packet, decision, cycle)

        out = self.output_ports[decision.output_port]
        if out.kind is not PortKind.INJECTION:
            packet.record_hop(is_global=out.kind is PortKind.GLOBAL)
        packet.current_vc = decision.vc
        if not out.pipeline and out.buffer.head_packet is None:
            insort(self._busy_out_ports, decision.output_port)
        out.buffer.commit(packet.size_phits)
        out.consume_credits(decision.vc, packet.size_phits)
        ready = cycle + self._router_latency
        out.pipeline.append((ready, packet))
        if ready < self._next_transmit_event:
            self._next_transmit_event = ready

    def transmit(self, cycle: int) -> None:
        """Start link transmissions / node deliveries on the busy output ports."""
        busy = self._busy_out_ports
        if not busy:
            self._next_transmit_event = _NO_EVENT
            return
        output_ports = self.output_ports
        remaining = []
        nxt = _NO_EVENT
        for port in busy:
            out = output_ports[port]
            buf = out.buffer
            pipeline = out.pipeline
            if pipeline:
                while pipeline and pipeline[0][0] <= cycle:
                    _, ready = pipeline.popleft()
                    buf.enqueue(ready)
            if buf.head_packet is not None and out.link_busy_until <= cycle:
                packet = buf.pop()
                size = packet.size_phits
                out.link_busy_until = cycle + size
                downstream = out.downstream_router
                if downstream is None:
                    packet.delivered_cycle = cycle + size
                    self.delivered.append(packet)
                else:
                    # Downstream credits were reserved at grant time, so the
                    # head of the output buffer can always be transmitted
                    # once the link frees.
                    downstream.receive_arrival(
                        out.downstream_port,
                        cycle + out.link_latency + size,
                        packet.current_vc,
                        packet,
                    )
            keep = False
            if pipeline:
                keep = True
                c = pipeline[0][0]
                if c < nxt:
                    nxt = c
            if buf.head_packet is not None:
                keep = True
                c = out.link_busy_until
                if c < nxt:
                    nxt = c
            if keep:
                remaining.append(port)
        self._busy_out_ports = remaining
        self._next_transmit_event = nxt

    # ------------------------------------------------------------- inspection
    @property
    def group(self) -> int:
        """Region (Dragonfly group, butterfly row, ...) of this router."""
        return self.topology.router_region(self.router_id)

    @property
    def position(self) -> int:
        return self.topology.router_position(self.router_id)

    def output_occupancy(self, port: int) -> int:
        """Output-buffer commitment plus credit-estimated downstream occupancy."""
        return self.output_ports[port].total_occupancy()

    def input_occupancy(self, port: int) -> int:
        return self.input_ports[port].occupancy_phits()

    def total_buffered_packets(self) -> int:
        n = sum(ip.total_packets() for ip in self.input_ports)
        n += sum(len(op.buffer) + len(op.pipeline) for op in self.output_ports)
        return n

    def drain_delivered(self) -> List[Packet]:
        """Return and clear the packets delivered to local nodes this cycle."""
        delivered, self.delivered = self.delivered, []
        return delivered

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Router(id={self.router_id}, group={self.group}, pos={self.position})"
