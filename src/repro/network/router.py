"""Cycle-level input/output-buffered virtual cut-through router.

The model follows the simple (non-tiled) high-radix router of the paper's
methodology (Section IV-B): per-VC input buffers with credit-based flow
control, a separable batch allocator with configurable internal speedup, a
fixed router pipeline latency, and per-port output buffers feeding the links.

Per-cycle operation (driven by :class:`repro.simulation.engine.Engine`):

1. ``begin_cycle`` — apply in-flight credit returns and store packets whose
   link transmission completed into the input VC buffers.
2. ``allocate`` — report new input-VC heads to the routing algorithm
   (contention counters), gather routing decisions for every head, run
   ``internal_speedup`` rounds of separable allocation, and move winners into
   the router pipeline towards their output port (returning credits
   upstream).
3. ``transmit`` — move pipeline-completed packets into the output buffers and
   start link transmissions (or deliver to the attached node on ejection
   ports) whenever the link is free and downstream credits allow.

Activity tracking
-----------------
The router maintains aggregate work counters (in-flight arrivals, buffered
input packets, in-flight credit returns, pipeline/output-buffer packets) and
a set of occupied input VCs.  Every phase early-outs when its counter is
zero, ``allocate`` only visits occupied VCs instead of re-scanning all
``radix x num_vcs`` channels per speedup round, and the engine only steps
routers registered in the network's active set — an idle router costs
nothing per cycle.  The counters are updated at the few places packets and
credits enter or leave the router, so activation/deactivation is O(1).
"""

from __future__ import annotations

from bisect import insort
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

from repro.config.parameters import SimulationParameters
from repro.network.allocator import AllocationRequest, SeparableAllocator
from repro.network.packet import Packet
from repro.network.ports import InputPort, OutputPort
from repro.topology.base import PortKind, Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network
    from repro.routing.base import RoutingAlgorithm

__all__ = ["Router"]


#: Sentinel for "no scheduled event" (larger than any simulated cycle).
_NO_EVENT = 2**62


class Router:
    """One router of the network."""

    __slots__ = (
        "router_id",
        "topology",
        "params",
        "routing",
        "network",
        "_speedup",
        "_router_latency",
        "_pure_decisions",
        "input_ports",
        "output_ports",
        "allocator",
        "_vc_map",
        "delivered",
        "dropped",
        "_faults",
        "active",
        "_occupied_vcs",
        "_new_heads",
        "_arrival_ports",
        "_credit_ports",
        "_busy_out_ports",
        "_next_begin_event",
        "_next_transmit_event",
        "_notify_arrival",
        "_notify_head",
        "_notify_leave",
    )

    def __init__(
        self,
        router_id: int,
        topology: Topology,
        params: SimulationParameters,
        routing: "RoutingAlgorithm",
        faults=None,
    ):
        self.router_id = router_id
        self.topology = topology
        self.params = params
        self.routing = routing
        self.network: Optional["Network"] = None  # set by Network
        self._speedup = params.internal_speedup
        self._router_latency = params.router_latency
        self._pure_decisions = routing.decision_is_pure
        #: Fault state shared across the network (``None`` = healthy run;
        #: every fault check in the phases is then one ``is None`` test).
        self._faults = faults

        self.input_ports: List[InputPort] = []
        self.output_ports: List[OutputPort] = []
        self._build_ports()

        max_vcs = max(len(ip.vcs) for ip in self.input_ports)
        self.allocator = SeparableAllocator(topology.router_radix, max_vcs)

        # (port, vc) -> InputVC, so the allocation loop reaches a head with a
        # single dict lookup instead of chained list indexing.
        self._vc_map = {
            (ip.port, vc): ivc
            for ip in self.input_ports
            for vc, ivc in enumerate(ip.vcs)
        }

        # Delivered packets of the current cycle (drained by the engine).
        self.delivered: List[Packet] = []
        # Packets dropped this cycle because their destination is unreachable
        # on the surviving graph (fault runs only; drained by the engine).
        self.dropped: List[Packet] = []

        # -- activity tracking ------------------------------------------------
        # The work lists below are kept sorted (insort on insert), so the
        # phases can iterate them directly in the port-major order of a full
        # scan without re-sorting every cycle.  They are small (bounded by
        # radix x VCs), so the O(n) inserts/removes are cheap.
        #: Whether this router is registered in the network's active set.
        self.active = False
        #: ``(port, vc)`` of every non-empty input VC buffer.
        self._occupied_vcs: List[Tuple[int, int]] = []
        #: Input VCs whose head changed since the last new-head report
        #: (buffer went empty -> non-empty, or a grant exposed the next
        #: packet).  Only maintained for mechanisms with a head hook.
        self._new_heads: List[Tuple[int, int]] = []
        #: Input ports with packets in flight on their incoming link.
        self._arrival_ports: List[int] = []
        #: Output ports with credit returns in flight on the reverse channel.
        self._credit_ports: List[int] = []
        #: Output ports with packets in the pipeline or the output buffer.
        self._busy_out_ports: List[int] = []
        #: Exact earliest cycle at which ``begin_cycle`` has something to do
        #: (a link arrival or credit return matures) and at which ``transmit``
        #: has something to do (a pipeline exit or a free link with a queued
        #: head).  Maintained at the scheduling sites and recomputed by the
        #: phases themselves, so the engine can skip a phase call — and
        #: compute the router's time-warp horizon — with one comparison.
        self._next_begin_event = _NO_EVENT
        self._next_transmit_event = _NO_EVENT

        # Skip no-op routing hooks in the hot loops (MIN/VAL/OLM do not track
        # heads; MIN does not watch arrivals).
        from repro.routing.base import RoutingAlgorithm as _Base

        routing_cls = type(routing)
        self._notify_arrival = (
            routing_cls.on_packet_arrival is not _Base.on_packet_arrival
        )
        self._notify_head = routing_cls.on_packet_head is not _Base.on_packet_head
        self._notify_leave = (
            routing_cls.on_packet_leave_input is not _Base.on_packet_leave_input
        )

    # ------------------------------------------------------------------ build
    def _build_ports(self) -> None:
        topo = self.topology
        params = self.params
        routing = self.routing
        for port in range(topo.router_radix):
            kind = topo.port_kind(port)
            nbr = topo.neighbor(self.router_id, port)
            num_vcs = routing.num_vcs(kind)
            if (
                self._faults is not None
                and kind is not PortKind.INJECTION
                and nbr is not None
            ):
                # Fault injection provisions one extra *escape* VC on every
                # router-to-router link, used exclusively by fault-mode
                # packets routed on the surviving spanning tree (see
                # RoutingAlgorithm.fault_decision).  Healthy runs never
                # allocate it, so disabling faults keeps buffers, credits,
                # and goldens bit-identical.
                num_vcs += 1
            in_capacity = params.input_buffer_phits(kind.value)
            self.input_ports.append(
                InputPort(
                    router_id=self.router_id,
                    port=port,
                    kind=kind,
                    num_vcs=num_vcs,
                    vc_capacity_phits=in_capacity,
                    upstream=nbr,
                )
            )
            latency = self._link_latency(kind)
            degradation = (
                self._faults.degradation(self.router_id, port)
                if self._faults is not None
                else None
            )
            if degradation is not None:
                latency *= degradation.latency_factor
            if nbr is None:
                downstream_vcs = 1
                downstream_capacity = 2**30
            else:
                downstream_vcs = num_vcs
                downstream_capacity = in_capacity
            op = OutputPort(
                router_id=self.router_id,
                port=port,
                kind=kind,
                buffer_capacity_phits=params.output_buffer_phits,
                downstream_vcs=downstream_vcs,
                downstream_vc_capacity_phits=downstream_capacity,
                link_latency=latency,
                neighbor=nbr,
            )
            if degradation is not None:
                # Bandwidth multiplier stretches every serialization on this
                # link; the static credit-occupied bias makes the link read
                # as persistently congested to the occupancy-based triggers
                # (OLM/UGAL/Hybrid) — the degraded-as-high-contention signal.
                op.serialize_factor = degradation.bandwidth_factor
                op.credit_occupied = (
                    degradation.bias_packets * params.packet_size_phits
                )
            self.output_ports.append(op)

    def _link_latency(self, kind: PortKind) -> int:
        if kind is PortKind.GLOBAL:
            return self.params.global_link_latency
        if kind is PortKind.LOCAL:
            return self.params.local_link_latency
        return 1  # injection/ejection: the node sits next to the router

    # -------------------------------------------------------- activity tracking
    def activate(self) -> None:
        """Register this router in the network's active set."""
        if not self.active and self.network is not None:
            self.network.activate_router(self)

    def has_work(self) -> bool:
        """Whether any phase of the next cycles can do something."""
        return bool(
            self._occupied_vcs
            or self._arrival_ports
            or self._credit_ports
            or self._busy_out_ports
        )

    def next_event_cycle(self) -> int:
        """Earliest cycle at which this router can make progress.

        Used by the time-warp engine: an occupied input VC means "right now"
        (allocation must be retried every cycle), otherwise the answer is the
        min over the cached begin/transmit event times (scheduled link
        arrivals, in-flight credit returns, pipeline completions and
        link-free times).  Returns the huge ``_NO_EVENT`` sentinel when
        nothing is scheduled (the router is about to be retired).
        """
        if self._occupied_vcs:
            return -1
        begin = self._next_begin_event
        transmit = self._next_transmit_event
        return begin if begin < transmit else transmit

    def receive_arrival(
        self, port: int, complete_cycle: int, vc: int, packet: Packet
    ) -> None:
        """A neighbour started transmitting ``packet`` towards input ``port``."""
        ip = self.input_ports[port]
        if not ip.arrivals:
            insort(self._arrival_ports, port)
        ip.schedule_arrival(complete_cycle, vc, packet)
        if complete_cycle < self._next_begin_event:
            self._next_begin_event = complete_cycle
        if not self.active and self.network is not None:
            self.network.activate_router(self)

    def receive_credit_return(
        self, port: int, arrival_cycle: int, vc: int, phits: int
    ) -> None:
        """The downstream router freed buffer space fed by output ``port``."""
        op = self.output_ports[port]
        if not op.pending_credits:
            insort(self._credit_ports, port)
        op.schedule_credit_return(arrival_cycle, vc, phits)
        if arrival_cycle < self._next_begin_event:
            self._next_begin_event = arrival_cycle
        if not self.active and self.network is not None:
            self.network.activate_router(self)

    def note_input_push(self, port: int, vc: int) -> None:
        """Bookkeeping after a packet was pushed into input VC ``(port, vc)``."""
        if self.input_ports[port].vcs[vc].buffer.num_packets == 1:
            insort(self._occupied_vcs, (port, vc))
            if self._notify_head:
                self._new_heads.append((port, vc))
        if not self.active and self.network is not None:
            self.network.activate_router(self)

    # ------------------------------------------------------------------ phases
    def begin_cycle(self, cycle: int) -> None:
        """Apply credit returns and receive packets whose transmission finished."""
        nxt = _NO_EVENT
        credit_ports = self._credit_ports
        if credit_ports:
            remaining = []
            for port in credit_ports:
                op = self.output_ports[port]
                pending = op.pending_credits
                if pending[0][0] <= cycle:
                    op.apply_credit_returns(cycle)
                if pending:
                    remaining.append(port)
                    c = pending[0][0]
                    if c < nxt:
                        nxt = c
            self._credit_ports = remaining
        arrival_ports = self._arrival_ports
        if arrival_ports:
            occupied = self._occupied_vcs
            routing = self.routing
            notify = self._notify_arrival
            notify_head = self._notify_head
            new_heads = self._new_heads
            input_ports = self.input_ports
            remaining = []
            for port in arrival_ports:
                ip = input_ports[port]
                arrivals = ip.arrivals
                if arrivals[0][0] <= cycle:
                    vcs = ip.vcs
                    while arrivals and arrivals[0][0] <= cycle:
                        _, vc, packet = arrivals.popleft()
                        buf = vcs[vc].buffer
                        if buf.head_packet is None:
                            insort(occupied, (port, vc))
                            if notify_head:
                                new_heads.append((port, vc))
                        buf.push(packet)
                        if notify:
                            routing.on_packet_arrival(self, port, vc, packet, cycle)
                if arrivals:
                    remaining.append(port)
                    c = arrivals[0][0]
                    if c < nxt:
                        nxt = c
            self._arrival_ports = remaining
        self._next_begin_event = nxt

    def allocate(self, cycle: int) -> None:
        """Report new heads, route them and run the separable allocation rounds."""
        if not self._occupied_vcs:
            return
        routing = self.routing
        output_ports = self.output_ports
        vc_map = self._vc_map

        # --- new-head detection (contention counters) -------------------------
        # Only VCs whose head actually changed since the last report are
        # visited; sorting restores the port-major order of a full scan.
        if self._notify_head and self._new_heads:
            new_heads = self._new_heads
            if len(new_heads) > 1:
                new_heads.sort()
            for key in new_heads:
                ivc = vc_map[key]
                if ivc.head_seen:
                    continue
                port, vc_idx = key
                routing.on_packet_head(self, port, vc_idx, ivc.buffer.head_packet, cycle)
                ivc.head_seen = True
            self._new_heads = []

        # --- single-head fast path ---------------------------------------------
        # With exactly one occupied VC the round machinery degenerates: the
        # first round either grants that head (a one-request allocation always
        # succeeds, only the arbiter pointers rotate) or produces no request
        # at all, and in both cases every later round is a no-op (the VC is in
        # ``granted_vcs`` or the request list stays empty).  So exactly one
        # ``select_output`` call happens per cycle — identical to a full run.
        if len(self._occupied_vcs) == 1:
            key = self._occupied_vcs[0]
            head = vc_map[key].buffer.head_packet
            port, vc_idx = key
            decision = routing.select_output(self, port, vc_idx, head, cycle)
            if self._faults is not None:
                decision = self._resolve_faults(port, vc_idx, head, decision, cycle)
            if decision is None:
                return
            out = output_ports[decision.output_port]
            size = head.size_phits
            if out.buffer.free_phits < size or out.credits[decision.vc] < size:
                return
            self.allocator.grant_single(port, vc_idx, decision.output_port)
            self._commit_grant(port, vc_idx, decision, cycle)
            return

        # --- allocation rounds (internal speedup) ------------------------------
        # The occupied list holds exactly the non-empty input VCs in
        # port-major, VC-minor order, reproducing the visit order of a full
        # scan.  Grants remove entries from the live list, so iterate a copy.
        # For mechanisms with pure decisions (MIN/VAL/PB) the first round's
        # routing decision is reused by the later rounds of this cycle: a VC
        # granted once is skipped for the rest of the cycle, so the head — and
        # therefore its decision — cannot change between rounds.
        occupied = self._occupied_vcs[:]
        decision_memo = {} if self._pure_decisions else None
        granted_vcs: Set[Tuple[int, int]] = set()
        faults = self._faults
        for round_index in range(self._speedup):
            requests: List[AllocationRequest] = []
            for key in occupied:
                if key in granted_vcs:
                    continue
                head = vc_map[key].buffer.head_packet
                if head is None:
                    continue
                port, vc_idx = key
                if decision_memo is None or round_index == 0:
                    decision = routing.select_output(self, port, vc_idx, head, cycle)
                    if decision_memo is not None:
                        decision_memo[key] = decision
                else:
                    decision = decision_memo[key]
                if faults is not None:
                    # The memo holds the raw policy decision; the fault
                    # resolution is deterministic (BFS tables, no RNG), so
                    # re-resolving per round is round-stable.
                    decision = self._resolve_faults(port, vc_idx, head, decision, cycle)
                if decision is None:
                    continue
                out_port = decision.output_port
                out = output_ports[out_port]
                size = head.size_phits
                if out.buffer.free_phits < size:
                    continue
                # Virtual cut-through: the downstream VC must have room for
                # the whole packet before it may leave the input buffer.
                # Credits are reserved at grant time, which guarantees that
                # the output stage always drains (no deadlock through the
                # shared output buffers).
                if out.credits[decision.vc] < size:
                    continue
                requests.append(
                    AllocationRequest(port, vc_idx, out_port, size, decision)
                )
            if not requests:
                break
            for grant in self.allocator.allocate(requests):
                self._commit_grant(grant.input_port, grant.input_vc, grant.payload, cycle)
                granted_vcs.add((grant.input_port, grant.input_vc))

    def _resolve_faults(self, port: int, vc: int, head, decision, cycle: int):
        """Resolve a routing decision against the live fault state.

        A packet in fault mode, or one whose chosen output port is dead, is
        re-steered through the routing algorithm's fault fallback; a packet
        whose destination is unreachable is dropped here (and ``None`` is
        returned so the caller skips the head).  The failure boundary is the
        allocation stage: packets already granted keep their reserved
        credits and complete their transmission, which preserves the credit
        and output-buffer invariants across a mid-run fault event.
        """
        if head.fault_mode:
            pass  # sticky: always re-steered by the fault fallback
        elif decision is None or decision.output_port not in self._faults.failed_ports[self.router_id]:
            return decision
        resolved = self.routing.fault_decision(self, head, cycle, port, vc)
        if resolved is None:
            self._drop_head(port, vc, cycle)
        return resolved

    def _drop_head(self, port: int, vc: int, cycle: int) -> None:
        """Drop the head of input VC ``(port, vc)`` (unreachable destination).

        Mirrors the input-side bookkeeping of ``_commit_grant`` — upstream
        credit return, contention-counter release, occupied-VC tracking —
        without any output-side forwarding.  The engine drains ``dropped``
        and counts the drop as watchdog progress.
        """
        ip = self.input_ports[port]
        ivc = ip.vcs[vc]
        packet = ivc.buffer.pop()
        ivc.head_seen = False
        if ivc.buffer.head_packet is None:
            self._occupied_vcs.remove((port, vc))
        elif self._notify_head:
            self._new_heads.append((port, vc))
        upstream = ip.upstream_router
        if upstream is not None:
            upstream.receive_credit_return(
                ip.upstream_port,
                cycle + ip.upstream_latency,
                vc,
                packet.size_phits,
            )
        if self._notify_leave:
            self.routing.on_packet_leave_input(self, port, vc, packet, cycle)
        packet.dropped_cycle = cycle
        self._faults.dropped_packets += 1
        self.dropped.append(packet)

    def _commit_grant(self, input_port: int, input_vc: int, decision, cycle: int) -> None:
        ip = self.input_ports[input_port]
        ivc = ip.vcs[input_vc]
        packet = ivc.buffer.pop()
        ivc.head_seen = False
        if ivc.buffer.head_packet is None:
            self._occupied_vcs.remove((input_port, input_vc))
        elif self._notify_head:
            self._new_heads.append((input_port, input_vc))

        # Credit return to the upstream router (not for injection ports).
        upstream = ip.upstream_router
        if upstream is not None:
            upstream.receive_credit_return(
                ip.upstream_port,
                cycle + ip.upstream_latency,
                input_vc,
                packet.size_phits,
            )

        if self._notify_leave:
            self.routing.on_packet_leave_input(self, input_port, input_vc, packet, cycle)
        self.routing.on_grant(self, input_port, input_vc, packet, decision, cycle)

        out = self.output_ports[decision.output_port]
        if out.kind is not PortKind.INJECTION:
            packet.record_hop(is_global=out.kind is PortKind.GLOBAL)
        packet.current_vc = decision.vc
        if not out.pipeline and out.buffer.head_packet is None:
            insort(self._busy_out_ports, decision.output_port)
        out.buffer.commit(packet.size_phits)
        out.consume_credits(decision.vc, packet.size_phits)
        ready = cycle + self._router_latency
        out.pipeline.append((ready, packet))
        if ready < self._next_transmit_event:
            self._next_transmit_event = ready

    def transmit(self, cycle: int) -> None:
        """Start link transmissions / node deliveries on the busy output ports."""
        busy = self._busy_out_ports
        if not busy:
            self._next_transmit_event = _NO_EVENT
            return
        output_ports = self.output_ports
        remaining = []
        nxt = _NO_EVENT
        for port in busy:
            out = output_ports[port]
            buf = out.buffer
            pipeline = out.pipeline
            if pipeline:
                while pipeline and pipeline[0][0] <= cycle:
                    _, ready = pipeline.popleft()
                    buf.enqueue(ready)
            if buf.head_packet is not None and out.link_busy_until <= cycle:
                packet = buf.pop()
                # Degraded links stretch the serialization (factor 1 when
                # healthy, so the healthy arithmetic is bit-identical).
                size = packet.size_phits * out.serialize_factor
                out.link_busy_until = cycle + size
                downstream = out.downstream_router
                if downstream is None:
                    packet.delivered_cycle = cycle + size
                    self.delivered.append(packet)
                else:
                    # Downstream credits were reserved at grant time, so the
                    # head of the output buffer can always be transmitted
                    # once the link frees.
                    downstream.receive_arrival(
                        out.downstream_port,
                        cycle + out.link_latency + size,
                        packet.current_vc,
                        packet,
                    )
            keep = False
            if pipeline:
                keep = True
                c = pipeline[0][0]
                if c < nxt:
                    nxt = c
            if buf.head_packet is not None:
                keep = True
                c = out.link_busy_until
                if c < nxt:
                    nxt = c
            if keep:
                remaining.append(port)
        self._busy_out_ports = remaining
        self._next_transmit_event = nxt

    # ------------------------------------------------------------- inspection
    @property
    def group(self) -> int:
        """Region (Dragonfly group, butterfly row, ...) of this router."""
        return self.topology.router_region(self.router_id)

    @property
    def position(self) -> int:
        return self.topology.router_position(self.router_id)

    def output_occupancy(self, port: int) -> int:
        """Output-buffer commitment plus credit-estimated downstream occupancy."""
        return self.output_ports[port].total_occupancy()

    def input_occupancy(self, port: int) -> int:
        return self.input_ports[port].occupancy_phits()

    def total_buffered_packets(self) -> int:
        n = sum(ip.total_packets() for ip in self.input_ports)
        n += sum(len(op.buffer) + len(op.pipeline) for op in self.output_ports)
        return n

    def drain_delivered(self) -> List[Packet]:
        """Return and clear the packets delivered to local nodes this cycle."""
        delivered, self.delivered = self.delivered, []
        return delivered

    def drain_dropped(self) -> List[Packet]:
        """Return and clear the packets dropped as unreachable this cycle."""
        dropped, self.dropped = self.dropped, []
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Router(id={self.router_id}, group={self.group}, pos={self.position})"
