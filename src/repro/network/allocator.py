"""Switch allocation: round-robin arbiters and a separable batch allocator.

The paper's router model (Table I / Section IV-B) uses a *separable batch
allocator* with a 2x internal speedup.  A separable allocator performs
input-first arbitration (each input port proposes at most one of its VC
requests) followed by output arbitration (each output port accepts at most
one proposal); the speedup is modelled by running several allocation rounds
per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["RoundRobinArbiter", "AllocationRequest", "SeparableAllocator"]


class RoundRobinArbiter:
    """A round-robin arbiter over a fixed number of clients."""

    __slots__ = ("num_clients", "_pointer")

    def __init__(self, num_clients: int):
        if num_clients < 1:
            raise ValueError("arbiter needs at least one client")
        self.num_clients = num_clients
        self._pointer = 0

    @property
    def pointer(self) -> int:
        return self._pointer

    def arbitrate(self, requests: Sequence[int]) -> int:
        """Grant one of ``requests`` (client indices); returns -1 if empty.

        The winner is the first requesting client at or after the current
        pointer; the pointer then advances past the winner, giving the
        classic strong-fairness rotation.
        """
        if not requests:
            return -1
        request_set = set(requests)
        for offset in range(self.num_clients):
            candidate = (self._pointer + offset) % self.num_clients
            if candidate in request_set:
                self._pointer = (candidate + 1) % self.num_clients
                return candidate
        return -1


@dataclass(slots=True)
class AllocationRequest:
    """A request from an input VC head for an output port."""

    input_port: int
    input_vc: int
    output_port: int
    size_phits: int
    payload: object = None  # opaque handle carried back to the router


class SeparableAllocator:
    """Input-first separable allocator.

    One arbiter per input port chooses among its VC requests; one arbiter per
    output port chooses among the surviving proposals.  ``allocate`` performs
    a single round; the router invokes it ``speedup`` times per cycle.
    """

    def __init__(self, num_ports: int, max_vcs: int):
        self.num_ports = num_ports
        self.max_vcs = max_vcs
        self._input_arbiters = [RoundRobinArbiter(max_vcs) for _ in range(num_ports)]
        self._output_arbiters = [RoundRobinArbiter(num_ports) for _ in range(num_ports)]

    def allocate(self, requests: Sequence[AllocationRequest]) -> List[AllocationRequest]:
        """Return the subset of ``requests`` granted in this round.

        Guarantees: at most one grant per input port and at most one grant
        per output port.
        """
        if not requests:
            return []

        # --- input stage: each input port proposes one VC ---------------------
        by_input: Dict[int, Dict[int, AllocationRequest]] = {}
        for req in requests:
            by_input.setdefault(req.input_port, {})[req.input_vc] = req

        proposals: Dict[int, List[AllocationRequest]] = {}
        for in_port, vc_requests in by_input.items():
            winner_vc = self._input_arbiters[in_port].arbitrate(sorted(vc_requests))
            if winner_vc < 0:
                continue
            req = vc_requests[winner_vc]
            proposals.setdefault(req.output_port, []).append(req)

        # --- output stage: each output port accepts one proposal --------------
        grants: List[AllocationRequest] = []
        for out_port, port_proposals in proposals.items():
            by_in = {req.input_port: req for req in port_proposals}
            winner_in = self._output_arbiters[out_port].arbitrate(sorted(by_in))
            if winner_in < 0:
                continue
            grants.append(by_in[winner_in])
        return grants
