"""Switch allocation: round-robin arbiters and a separable batch allocator.

The paper's router model (Table I / Section IV-B) uses a *separable batch
allocator* with a 2x internal speedup.  A separable allocator performs
input-first arbitration (each input port proposes at most one of its VC
requests) followed by output arbitration (each output port accepts at most
one proposal); the speedup is modelled by running several allocation rounds
per cycle.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence

__all__ = ["RoundRobinArbiter", "AllocationRequest", "SeparableAllocator"]


class RoundRobinArbiter:
    """A round-robin arbiter over a fixed number of clients."""

    __slots__ = ("num_clients", "_pointer")

    def __init__(self, num_clients: int):
        if num_clients < 1:
            raise ValueError("arbiter needs at least one client")
        self.num_clients = num_clients
        self._pointer = 0

    @property
    def pointer(self) -> int:
        return self._pointer

    def record_win(self, client: int) -> None:
        """Advance the pointer past ``client`` as if it had won arbitration.

        Used by the allocator fast paths that can prove the winner without a
        full arbitration round; keeps the rotation rule in one place.
        """
        self._pointer = (client + 1) % self.num_clients

    def arbitrate(self, requests: Sequence[int]) -> int:
        """Grant one of ``requests`` (client indices); returns -1 if empty.

        The winner is the first requesting client at or after the current
        pointer; the pointer then advances past the winner, giving the
        classic strong-fairness rotation.  Equivalently, the winner minimizes
        the cyclic distance from the pointer, which is what the loop below
        computes in O(len(requests)) instead of scanning all clients.
        """
        if not requests:
            return -1
        pointer = self._pointer
        n = self.num_clients
        winner = -1
        winner_distance = n
        for client in requests:
            if client < 0 or client >= n:
                continue
            distance = client - pointer
            if distance < 0:
                distance += n
            if distance < winner_distance:
                winner_distance = distance
                winner = client
        if winner < 0:
            return -1
        self._pointer = (winner + 1) % n
        return winner


class AllocationRequest(NamedTuple):
    """A request from an input VC head for an output port.

    A ``NamedTuple`` rather than a dataclass: requests are created in the
    per-VC-per-round allocation hot loop and tuple construction is
    measurably cheaper.
    """

    input_port: int
    input_vc: int
    output_port: int
    size_phits: int
    payload: object = None  # opaque handle carried back to the router


class SeparableAllocator:
    """Input-first separable allocator.

    One arbiter per input port chooses among its VC requests; one arbiter per
    output port chooses among the surviving proposals.  ``allocate`` performs
    a single round; the router invokes it ``speedup`` times per cycle.
    """

    __slots__ = ("num_ports", "max_vcs", "_input_arbiters", "_output_arbiters")

    def __init__(self, num_ports: int, max_vcs: int):
        self.num_ports = num_ports
        self.max_vcs = max_vcs
        self._input_arbiters = [RoundRobinArbiter(max_vcs) for _ in range(num_ports)]
        self._output_arbiters = [RoundRobinArbiter(num_ports) for _ in range(num_ports)]

    def grant_single(self, input_port: int, input_vc: int, output_port: int) -> None:
        """Record an uncontested single-request grant (pointer rotation only).

        A lone request always wins both stages, so callers that can prove
        there is exactly one request (e.g. a router with a single occupied
        VC) may skip the staging machinery and just rotate the arbiters.
        """
        self._input_arbiters[input_port].record_win(input_vc)
        self._output_arbiters[output_port].record_win(input_port)

    def allocate(self, requests: Sequence[AllocationRequest]) -> List[AllocationRequest]:
        """Return the subset of ``requests`` granted in this round.

        Guarantees: at most one grant per input port and at most one grant
        per output port.
        """
        if not requests:
            return []

        # Fast path: a single request always wins both stages; only the
        # round-robin pointers need the same update a full round would apply.
        if len(requests) == 1:
            req = requests[0]
            self.grant_single(req.input_port, req.input_vc, req.output_port)
            return [req]

        # Fast path: all input ports and all output ports distinct — every
        # input proposes its only request and every output accepts its only
        # proposal, so everything is granted (the common case outside
        # hotspots); only the round-robin pointers need updating.
        if len({req.input_port for req in requests}) == len(requests) and len(
            {req.output_port for req in requests}
        ) == len(requests):
            input_arbiters = self._input_arbiters
            output_arbiters = self._output_arbiters
            for req in requests:
                input_arbiters[req.input_port].record_win(req.input_vc)
                output_arbiters[req.output_port].record_win(req.input_port)
            return list(requests)

        # --- input stage: each input port proposes one VC ---------------------
        by_input: Dict[int, Dict[int, AllocationRequest]] = {}
        for req in requests:
            vc_requests = by_input.get(req.input_port)
            if vc_requests is None:
                by_input[req.input_port] = vc_requests = {}
            vc_requests[req.input_vc] = req

        proposals: Dict[int, List[AllocationRequest]] = {}
        for in_port, vc_requests in by_input.items():
            # The arbiter picks the minimal cyclic distance from its pointer,
            # so the request order does not matter and the dict views can be
            # passed without sorting.
            winner_vc = self._input_arbiters[in_port].arbitrate(list(vc_requests))
            if winner_vc < 0:
                continue
            req = vc_requests[winner_vc]
            proposals.setdefault(req.output_port, []).append(req)

        # --- output stage: each output port accepts one proposal --------------
        grants: List[AllocationRequest] = []
        for out_port, port_proposals in proposals.items():
            by_in = {req.input_port: req for req in port_proposals}
            winner_in = self._output_arbiters[out_port].arbitrate(list(by_in))
            if winner_in < 0:
                continue
            grants.append(by_in[winner_in])
        return grants
