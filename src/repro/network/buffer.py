"""Buffers: per-VC input buffers and per-port output buffers.

All capacities and occupancies are expressed in phits.  Virtual cut-through
switching is assumed: a packet is admitted into a buffer only if the buffer
has space for the *whole* packet, and it is forwarded as a unit.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional, Tuple

from repro.network.packet import Packet

__all__ = ["VCBuffer", "OutputBuffer"]


class VCBuffer:
    """A FIFO buffer for one virtual channel of an input port.

    The head packet is mirrored in the ``head_packet`` attribute so the
    allocation hot loop can test for work with a single attribute read
    instead of a method call per VC per round.
    """

    __slots__ = ("capacity_phits", "_queue", "_occupied", "head_packet", "free_phits")

    def __init__(self, capacity_phits: int):
        if capacity_phits < 1:
            raise ValueError("buffer capacity must be positive")
        self.capacity_phits = capacity_phits
        self._queue: Deque[Packet] = deque()
        self._occupied = 0
        #: The packet at the head of the FIFO, or ``None`` when empty.
        self.head_packet: Optional[Packet] = None
        #: Maintained as a plain attribute (not a property) so the admission
        #: checks in the allocation hot loop are single attribute reads.
        self.free_phits = capacity_phits

    # -- state ---------------------------------------------------------------
    @property
    def occupied_phits(self) -> int:
        return self._occupied

    @property
    def num_packets(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        return self.head_packet is None

    def can_accept(self, size_phits: int) -> bool:
        """Virtual cut-through admission check: room for the whole packet."""
        return self.free_phits >= size_phits

    # -- operations ----------------------------------------------------------
    def push(self, packet: Packet) -> None:
        if not self.can_accept(packet.size_phits):
            raise OverflowError(
                f"VC buffer overflow: {packet.size_phits} phits requested, "
                f"{self.free_phits} free (capacity {self.capacity_phits})"
            )
        if self.head_packet is None:
            self.head_packet = packet
        self._queue.append(packet)
        self._occupied += packet.size_phits
        self.free_phits -= packet.size_phits

    def head(self) -> Optional[Packet]:
        return self.head_packet

    def pop(self) -> Packet:
        if not self._queue:
            raise IndexError("pop from empty VC buffer")
        packet = self._queue.popleft()
        self._occupied -= packet.size_phits
        self.free_phits += packet.size_phits
        self.head_packet = self._queue[0] if self._queue else None
        return packet

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VCBuffer(occupied={self._occupied}/{self.capacity_phits} phits, "
            f"packets={len(self._queue)})"
        )


class OutputBuffer:
    """Per-output-port buffer between the crossbar and the link.

    Space is *committed* when a packet wins allocation (so that the router
    pipeline cannot overflow it) and *released* when the packet starts
    serializing onto the link.
    """

    __slots__ = ("capacity_phits", "_queue", "committed_phits", "head_packet", "free_phits")

    def __init__(self, capacity_phits: int):
        if capacity_phits < 1:
            raise ValueError("buffer capacity must be positive")
        self.capacity_phits = capacity_phits
        self._queue: Deque[Packet] = deque()
        #: Phits committed to the buffer (queued packets + in-pipeline
        #: grants).  A plain attribute, like ``free_phits`` below, so the
        #: occupancy probes of the adaptive mechanisms are attribute reads.
        self.committed_phits = 0
        #: The packet at the head of the FIFO, or ``None`` when empty.
        self.head_packet: Optional[Packet] = None
        #: Maintained as a plain attribute (not a property) so the admission
        #: checks in the allocation hot loop are single attribute reads.
        self.free_phits = capacity_phits

    @property
    def num_packets(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        return self.head_packet is None

    def can_commit(self, size_phits: int) -> bool:
        return self.free_phits >= size_phits

    def commit(self, size_phits: int) -> None:
        """Reserve space for a packet that has won allocation."""
        if not self.can_commit(size_phits):
            raise OverflowError(
                f"output buffer over-commit: {size_phits} requested, {self.free_phits} free"
            )
        self.committed_phits += size_phits
        self.free_phits -= size_phits

    def enqueue(self, packet: Packet) -> None:
        """Place a packet (whose space was already committed) in the FIFO."""
        if self.head_packet is None:
            self.head_packet = packet
        self._queue.append(packet)

    def head(self) -> Optional[Packet]:
        return self.head_packet

    def pop(self) -> Packet:
        """Remove the head packet and release its committed space."""
        if not self._queue:
            raise IndexError("pop from empty output buffer")
        packet = self._queue.popleft()
        self.committed_phits -= packet.size_phits
        self.free_phits += packet.size_phits
        self.head_packet = self._queue[0] if self._queue else None
        return packet

    def packets(self) -> Tuple[Packet, ...]:
        """Snapshot of the queued packets, head first."""
        return tuple(self._queue)

    def pop_at(self, index: int) -> Packet:
        """Remove the packet at ``index`` (0 = head) and release its space.

        Used by the link stage to let a packet whose downstream VC has
        credits bypass a blocked head on a different VC.
        """
        if index < 0 or index >= len(self._queue):
            raise IndexError("output buffer index out of range")
        if index == 0:
            return self.pop()
        packet = self._queue[index]
        del self._queue[index]
        self.committed_phits -= packet.size_phits
        self.free_phits += packet.size_phits
        self.head_packet = self._queue[0] if self._queue else None
        return packet

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OutputBuffer(committed={self.committed_phits}/{self.capacity_phits} phits, "
            f"queued={len(self._queue)})"
        )
