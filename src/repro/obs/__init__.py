"""Zero-overhead observability: probes, flight recorder, run telemetry.

The subsystem is wired into *both* simulation backends through a single
:class:`~repro.obs.hub.ObservationHub` object:

* **network-state probes** — periodic per-(router, port, VC) occupancy
  snapshots, per-link utilization accumulation and contention-trigger
  traces (which sampled packets consulted a trigger, the counter value and
  threshold they saw, minimal vs. escape outcome);
* a **packet flight recorder** — full hop-by-hop lifetimes (injection,
  per-hop cycle/router/port/VC/buffer class/decision taxonomy,
  delivery/drop) for a deterministic sample of packets, selected by a
  packet-id hash so the sample never touches an RNG stream;
* **run telemetry** — a manifest (config hash, seed, backend, git rev,
  schema versions), per-phase wall-clock timers and warp/allocation
  counters, emitted as a ``perf`` block.

Everything is serialized as JSONL (one event object per line) and rendered
by ``python -m repro.tools.trace_report``.

The contract (asserted by ``tests/obs/``):

* **zero overhead when disabled** — every instrumentation site is a single
  ``is None`` attribute check on a cached slot, exactly the idiom the
  engines already use for ``metrics``;
* **draw-free** — probes never read or advance an RNG stream and never
  mutate simulation state, so goldens and warp on/off identity hold with
  probes on or off, and flight-recorder traces are bit-identical across
  the ``object`` and ``soa`` backends (a much sharper invariant than
  identical end results);
* **warp-aware** — cycles the engine warps over are provably no-ops, so
  skipped snapshot points are recorded as explicit quiet ranges instead of
  being lost.
"""

from repro.obs.config import ObservationConfig, pid_sampled
from repro.obs.hub import (
    FLIGHT_EVENTS,
    ObservationHub,
    load_trace,
)
from repro.obs.telemetry import (
    MANIFEST_SCHEMA_VERSION,
    TRACE_SCHEMA_VERSION,
    build_manifest,
    config_hash,
    git_revision,
    phase_timer,
)

__all__ = [
    "ObservationConfig",
    "ObservationHub",
    "FLIGHT_EVENTS",
    "MANIFEST_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "build_manifest",
    "config_hash",
    "git_revision",
    "load_trace",
    "phase_timer",
    "pid_sampled",
]
