"""Run telemetry: manifest, config hash, git revision, phase timers.

Every trace stream starts with a **manifest** line identifying the run —
enough to answer "what produced this file?" without the producing process:
schema versions, the configuration hash, seed, backend, routing/pattern
names and the git revision of the working tree.  Wall-clock **phase
timers** (warmup / measure / drain) accumulate into the hub's ``perf``
block, which is emitted as the last line of the stream.
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Optional

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "build_manifest",
    "config_hash",
    "git_revision",
    "phase_timer",
]

#: Version of the manifest line layout.
MANIFEST_SCHEMA_VERSION = 1
#: Version of the event-line layout (hop/snapshot/warp/perf records).
TRACE_SCHEMA_VERSION = 1


def config_hash(params) -> str:
    """Content hash of the simulated system's configuration.

    Hashes :meth:`~repro.config.parameters.SimulationParameters.canonical_dict`,
    which enumerates every semantic parameter field (including ones the
    reporting view omits) and excludes ``backend`` on purpose: the
    backends are bit-identical by contract, so traces produced by
    ``object`` and ``soa`` runs of the same configuration carry the same
    hash (the backend itself is a separate manifest field).  The sweep
    service builds its content-addressed cache key on this same hash
    (:mod:`repro.service.keys`), so cache entries and trace manifests
    always agree on configuration identity.
    """
    payload = params.canonical_dict()
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def git_revision(start: Optional[Path] = None) -> str:
    """Best-effort git revision of the tree containing ``start``.

    Reads ``.git/HEAD`` directly (no subprocess — telemetry must work in
    sandboxed CI and in sweep worker processes).  Returns ``"unknown"``
    when no repository is found or the files are unreadable.
    """
    try:
        directory = (start or Path(__file__)).resolve()
        for parent in [directory, *directory.parents]:
            git_dir = parent / ".git"
            if not git_dir.is_dir():
                continue
            head = (git_dir / "HEAD").read_text().strip()
            if head.startswith("ref:"):
                ref = head.split(None, 1)[1]
                ref_file = git_dir / ref
                if ref_file.is_file():
                    return ref_file.read_text().strip()[:12]
                packed = git_dir / "packed-refs"
                if packed.is_file():
                    for line in packed.read_text().splitlines():
                        if line.endswith(ref):
                            return line.split()[0][:12]
                return "unknown"
            return head[:12]
    except OSError:  # pragma: no cover - unreadable .git
        pass
    return "unknown"


def build_manifest(sim) -> dict:
    """Manifest line for a :class:`~repro.simulation.simulator.Simulator`."""
    params = sim.params
    return {
        "ev": "manifest",
        "schema": MANIFEST_SCHEMA_VERSION,
        "trace_schema": TRACE_SCHEMA_VERSION,
        "config_hash": config_hash(params),
        "backend": params.backend,
        "seed": sim.seed,
        "routing": sim.routing.name,
        "pattern": sim.pattern.name,
        "offered_load": sim.traffic.offered_load,
        "topology": type(sim.topology).__name__,
        "num_nodes": sim.topology.num_nodes,
        "git_rev": git_revision(),
    }


@contextmanager
def phase_timer(hub, name: str):
    """Accumulate the wall-clock time of a run phase into ``hub.perf``.

    Accepts ``hub=None`` (observation disabled) as a no-op so callers can
    wrap their phases unconditionally.  Wall-clock goes to telemetry only —
    it never feeds back into simulated state, so determinism is untouched.
    """
    if hub is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        phases = hub.perf.setdefault("phase_seconds", {})
        phases[name] = round(phases.get(name, 0.0) + elapsed, 6)
