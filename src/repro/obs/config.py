"""Observation configuration and the deterministic packet sampler.

The flight-recorder sample is selected by hashing the packet id with a
Knuth multiplicative hash — **not** by drawing from an RNG stream.  The
number and order of RNG draws is part of the simulator's determinism
contract (see ``docs/architecture.md``), so a sampling decision that
consumed a draw would perturb every subsequent routing choice and break
the goldens.  The hash gives a well-mixed, reproducible subset that is
identical across backends and across runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping, Optional

__all__ = ["ObservationConfig", "pid_sampled"]

#: Knuth's multiplicative hash constant (2**32 / golden ratio, odd).
_HASH_MULT = 0x9E3779B1
_HASH_MASK = 0xFFFFFFFF

_TRUE_SPELLINGS = frozenset({"1", "true", "yes", "on"})
_FALSE_SPELLINGS = frozenset({"0", "false", "no", "off"})


def _parse_bool(key: str, value: str) -> bool:
    """Parse a boolean ``REPRO_OBS`` value, rejecting unknown spellings.

    Accepting only the usual spellings (case-insensitively) keeps a typo
    like ``link=fasle`` — or a well-meant ``link=off`` under a parser that
    only knew ``0``/``false`` — from silently enabling the probe.
    """
    lowered = value.lower()
    if lowered in _TRUE_SPELLINGS:
        return True
    if lowered in _FALSE_SPELLINGS:
        return False
    raise ValueError(
        f"REPRO_OBS {key}={value!r} is not a boolean; use one of "
        f"{'/'.join(sorted(_TRUE_SPELLINGS))} or "
        f"{'/'.join(sorted(_FALSE_SPELLINGS))}"
    )


def pid_sampled(pid: int, threshold: int) -> bool:
    """Deterministic, RNG-free sampling decision for packet ``pid``.

    ``threshold`` is a 32-bit cut-off (see
    :meth:`ObservationConfig.sample_threshold`); a packet is sampled when
    its hashed id falls below it, so a rate of 1.0 samples everything and
    0.0 nothing.
    """
    return ((pid * _HASH_MULT) & _HASH_MASK) < threshold


@dataclass(frozen=True)
class ObservationConfig:
    """What the :class:`~repro.obs.hub.ObservationHub` records.

    The default configuration records everything except periodic snapshots
    (``snapshot_period=0`` disables them); ``from_env`` builds one from the
    ``REPRO_OBS`` environment variable so CI lanes can enable probes
    without touching call sites (mirroring ``REPRO_BACKEND``).
    """

    #: Fraction of packet ids recorded by the flight recorder (0.0 .. 1.0).
    flight_sample_rate: float = 1.0
    #: Cycles between occupancy snapshots; 0 disables periodic snapshots.
    snapshot_period: int = 0
    #: Accumulate per-(router, output port) forwarded phits.
    link_utilization: bool = True
    #: Attach trigger consultations (counter value, threshold, outcome) to
    #: sampled hop events and keep per-router trigger aggregates.
    trigger_trace: bool = True
    #: Hard cap on recorded events; beyond it events are counted as dropped
    #: in the ``perf`` block instead of silently growing without bound.
    max_events: int = 1_000_000

    def __post_init__(self) -> None:
        if not 0.0 <= self.flight_sample_rate <= 1.0:
            raise ValueError(
                f"flight_sample_rate must be in [0, 1], got {self.flight_sample_rate}"
            )
        if self.snapshot_period < 0:
            raise ValueError("snapshot_period must be >= 0")
        if self.max_events < 0:
            raise ValueError("max_events must be >= 0")

    def sample_threshold(self) -> int:
        """32-bit cut-off for :func:`pid_sampled` at this sample rate."""
        if self.flight_sample_rate >= 1.0:
            return _HASH_MASK + 1
        return int(self.flight_sample_rate * (_HASH_MASK + 1))

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> Optional["ObservationConfig"]:
        """Build a config from ``REPRO_OBS``, or ``None`` when unset.

        ``REPRO_OBS=1`` enables the defaults; a comma-separated key=value
        list tunes them, e.g. ``REPRO_OBS=sample=0.25,snapshot=100``.
        Recognized keys: ``sample`` (flight sample rate), ``snapshot``
        (snapshot period in cycles), ``link`` / ``trigger`` (booleans:
        ``1/true/yes/on`` or ``0/false/no/off``, case-insensitive),
        ``max_events``.
        """
        if environ is None:
            environ = os.environ
        raw = environ.get("REPRO_OBS", "").strip()
        if raw in ("", "0"):
            return None
        kwargs = {}
        if raw != "1":
            for item in raw.split(","):
                item = item.strip()
                if not item:
                    continue
                if "=" not in item:
                    raise ValueError(
                        f"REPRO_OBS entries must be key=value (or the whole "
                        f"variable '1'), got {item!r}"
                    )
                key, value = item.split("=", 1)
                key = key.strip()
                value = value.strip()
                if key == "sample":
                    kwargs["flight_sample_rate"] = float(value)
                elif key == "snapshot":
                    kwargs["snapshot_period"] = int(value)
                elif key == "link":
                    kwargs["link_utilization"] = _parse_bool(key, value)
                elif key == "trigger":
                    kwargs["trigger_trace"] = _parse_bool(key, value)
                elif key == "max_events":
                    kwargs["max_events"] = int(value)
                else:
                    raise ValueError(f"unknown REPRO_OBS key {key!r}")
        return cls(**kwargs)
