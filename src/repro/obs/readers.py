"""Backend-specific network-state readers for occupancy snapshots.

The two engine backends keep the in-flight state in different places —
the object engine in per-router ``VCBuffer`` / ``OutputBuffer`` objects,
the SoA engine in flat arrays — so the hub delegates state reads to a
small reader built by ``engine._make_obs_reader()``.  Both readers report
the same logical quantities in the same ``(router, port, vc)`` order, so
a snapshot taken at the same cycle is identical across backends (asserted
by ``tests/obs/``).

Readers are pure observers: they only iterate, never mutate, and are
invoked outside the per-hop hot paths (snapshots are periodic).
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["ObjectStateReader", "SoAStateReader"]

#: (router, port, vc, buffered packets, buffered phits) for non-empty VCs.
OccupancyRow = Tuple[int, int, int, int, int]
#: (router, port, committed output phits) for non-empty output buffers.
OutputRow = Tuple[int, int, int]


class ObjectStateReader:
    """Reads occupancy from the object network's router buffers."""

    __slots__ = ("_network",)

    def __init__(self, network) -> None:
        self._network = network

    def input_occupancy(self) -> List[OccupancyRow]:
        rows: List[OccupancyRow] = []
        for router in self._network.routers:
            rid = router.router_id
            for port, ip in enumerate(router.input_ports):
                for vc, ivc in enumerate(ip.vcs):
                    buffer = ivc.buffer
                    packets = buffer.num_packets
                    if packets:
                        rows.append((rid, port, vc, packets, buffer.occupied_phits))
        return rows

    def output_committed(self) -> List[OutputRow]:
        rows: List[OutputRow] = []
        for router in self._network.routers:
            rid = router.router_id
            for port, op in enumerate(router.output_ports):
                committed = op.buffer.committed_phits
                if committed:
                    rows.append((rid, port, committed))
        return rows


class SoAStateReader:
    """Reads the same occupancy quantities from the flat SoA arrays."""

    __slots__ = ("_st",)

    def __init__(self, st) -> None:
        self._st = st

    def input_occupancy(self) -> List[OccupancyRow]:
        st = self._st
        rows: List[OccupancyRow] = []
        P, V = st.P, st.V
        in_q = st.in_q
        for rid in range(st.R):
            base_q = rid * P * V
            for port in range(P):
                for vc in range(V):
                    dq = in_q[base_q + port * V + vc]
                    if dq:
                        phits = sum(packet.size_phits for packet in dq)
                        rows.append((rid, port, vc, len(dq), phits))
        return rows

    def output_committed(self) -> List[OutputRow]:
        st = self._st
        rows: List[OutputRow] = []
        P = st.P
        out_committed = st.out_committed
        for rid in range(st.R):
            base = rid * P
            for port in range(P):
                committed = out_committed[base + port]
                if committed:
                    rows.append((rid, port, committed))
        return rows
