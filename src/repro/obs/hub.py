"""The observation hub: probes, flight recorder, and the event stream.

One :class:`ObservationHub` instance is attached to an engine (either
backend) via ``engine.attach_observation(hub)``.  The engine then pays
exactly one cached-attribute ``is None`` check per instrumentation site:

* ``RoutingAlgorithm.on_grant`` (both backends funnel every grant through
  the same base-class method) → :meth:`ObservationHub.record_grant`, the
  per-hop site serving the flight recorder, link-utilization accumulation
  and trigger traces at once;
* the engines' delivery/drop drain loops → :meth:`record_delivery` /
  :meth:`record_dropped`;
* the end of ``step()`` → :meth:`on_cycle` (periodic snapshots, counters);
* the warp-jump branch of ``run()`` → :meth:`on_warp` (quiet ranges).

Why grants, not trigger evaluations: the SoA backend legitimately skips
re-evaluating heads whose trigger state cannot have changed (the
``alloc_clean`` fast path) and inlines closed-gate checks, so the *number
of trigger consultations* differs across backends while remaining
observationally identical.  The committed grant — and every quantity
readable at grant time — is bit-identical, which is exactly the invariant
the cross-backend trace-equality test pins.

The hub is an observer only: it never mutates simulation state and never
touches an RNG stream (sampling is a packet-id hash, see
:mod:`repro.obs.config`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.config import ObservationConfig, pid_sampled
from repro.obs.telemetry import TRACE_SCHEMA_VERSION
from repro.topology.base import PortKind

__all__ = ["ObservationHub", "FLIGHT_EVENTS", "load_trace"]

#: Event kinds produced by the flight recorder (the deterministic,
#: backend-invariant subset of the stream; ``trace_diff`` compares these).
FLIGHT_EVENTS = ("inject", "hop", "deliver", "drop")

_NEVER = 2**62

#: Buffer-class letter per output-port kind (ejection ports have
#: ``PortKind.INJECTION``; seen from the crossbar they are the exit).
_KIND_CHAR = {PortKind.GLOBAL: "G", PortKind.LOCAL: "L", PortKind.INJECTION: "E"}


class ObservationHub:
    """Collects probe events, flight records and run telemetry for one run."""

    __slots__ = (
        "config",
        "events",
        "manifest",
        "perf",
        "_threshold",
        "_reader",
        "_radix",
        "_port_chars",
        "_topology",
        "_link_phits",
        "_seen_pids",
        "_next_snapshot",
        "_trigger_totals",
        "_last_trigger",
        "_grants",
        "_events_dropped",
        "_cycles_observed",
        "_alloc_router_cycles",
        "_warp_jumps",
        "_snapshots_taken",
        "_snapshots_skipped",
    )

    def __init__(self, config: Optional[ObservationConfig] = None):
        self.config = config or ObservationConfig()
        self.events: List[dict] = []
        self.manifest: Optional[dict] = None
        self.perf: dict = {}
        self._threshold = self.config.sample_threshold()
        self._reader = None
        self._radix = 0
        self._port_chars: List[str] = []
        self._topology = None
        self._link_phits: List[int] = []
        self._seen_pids: set = set()
        self._next_snapshot = _NEVER
        #: rid -> [consultations, escapes] over sampled grants.
        self._trigger_totals: Dict[int, List[int]] = {}
        #: rid -> the most recent trigger consultation (stall diagnostics).
        self._last_trigger: Dict[int, dict] = {}
        self._grants = 0
        self._events_dropped = 0
        self._cycles_observed = 0
        self._alloc_router_cycles = 0
        self._warp_jumps = 0
        self._snapshots_taken = 0
        self._snapshots_skipped = 0

    # ------------------------------------------------------------- attachment
    def on_attach(self, engine) -> None:
        """Bind to an engine: build the backend's state reader, size tables."""
        self._reader = engine._make_obs_reader()
        topology = engine.network.topology
        self._topology = topology
        self._radix = topology.router_radix
        self._port_chars = [_KIND_CHAR[kind] for kind in topology.port_kinds]
        self._link_phits = [0] * (topology.num_routers * self._radix)
        if self.config.snapshot_period:
            self._next_snapshot = self.config.snapshot_period

    # ------------------------------------------------------------ hot hooks
    def record_grant(self, routing, router, port, vc, packet, decision, cycle) -> None:
        """One committed grant (called from ``RoutingAlgorithm.on_grant``).

        At this point ``on_packet_leave_input`` has already fired in both
        backends, so contention counters exclude the departing packet and
        ``packet.contention_port`` is cleared — trigger snapshots recompute
        the minimal port from the topology instead.
        """
        self._grants += 1
        out_port = decision.output_port
        rid = router.router_id
        if self.config.link_utilization:
            self._link_phits[rid * self._radix + out_port] += packet.size_phits
        pid = packet.pid
        if not pid_sampled(pid, self._threshold):
            return
        if pid not in self._seen_pids:
            self._seen_pids.add(pid)
            self._emit(
                {
                    "ev": "inject",
                    "pid": pid,
                    "cycle": packet.injection_cycle,
                    "src": packet.src,
                    "dst": packet.dst,
                    "size": packet.size_phits,
                    "created": packet.creation_cycle,
                }
            )
        kind = self._hop_kind(decision, out_port)
        event = {
            "ev": "hop",
            "pid": pid,
            "cycle": cycle,
            "router": rid,
            "in_port": port,
            "in_vc": vc,
            "out_port": out_port,
            "out_vc": decision.vc,
            "cls": f"{self._port_chars[out_port]}{decision.vc}",
            "kind": kind,
        }
        if self.config.trigger_trace and kind not in ("eject", "fault"):
            trigger = routing.trigger_observation(router, packet)
            if trigger is not None:
                escape = kind != "minimal"
                trigger["escape"] = escape
                event["trigger"] = trigger
                totals = self._trigger_totals.setdefault(rid, [0, 0])
                totals[0] += 1
                if escape:
                    totals[1] += 1
                self._last_trigger[rid] = {"pid": pid, "cycle": cycle, **trigger}
        self._emit(event)

    def record_delivery(self, packet, cycle) -> None:
        """A packet handed to its destination node (engine drain loop)."""
        pid = packet.pid
        if not pid_sampled(pid, self._threshold):
            return
        self._emit(
            {
                "ev": "deliver",
                "pid": pid,
                "cycle": packet.delivered_cycle,
                "latency": packet.delivered_cycle - packet.creation_cycle,
                "hops": packet.hops,
            }
        )

    def record_dropped(self, packet, cycle) -> None:
        """A packet dropped as unreachable after a fault (engine drain loop)."""
        pid = packet.pid
        if not pid_sampled(pid, self._threshold):
            return
        self._emit({"ev": "drop", "pid": pid, "cycle": cycle, "hops": packet.hops})

    def on_cycle(self, cycle: int, alloc_routers: int) -> None:
        """End of one executed engine cycle (both backends)."""
        self._cycles_observed += 1
        self._alloc_router_cycles += alloc_routers
        if cycle >= self._next_snapshot:
            self._take_snapshot(cycle)
            self._next_snapshot = cycle + self.config.snapshot_period

    def on_warp(self, start: int, target: int) -> None:
        """The engine warped from ``start`` to ``target`` (exclusive..inclusive).

        Warped-over cycles are provably no-ops — the network state at
        ``target`` equals the state at ``start`` — so snapshot points
        inside the range are recorded as one explicit quiet range rather
        than re-read (they would all be identical) or silently lost.
        """
        self._warp_jumps += 1
        event = {"ev": "warp", "start": start, "end": target}
        period = self.config.snapshot_period
        if period and self._next_snapshot <= target:
            missed = (target - self._next_snapshot) // period + 1
            self._snapshots_skipped += missed
            event["snapshots_skipped"] = missed
            self._next_snapshot += missed * period
        self._emit(event)

    # ------------------------------------------------------------- internals
    def _hop_kind(self, decision, out_port: int) -> str:
        if decision.set_fault_mode:
            return "fault"
        if self._port_chars[out_port] == "E":
            return "eject"
        if decision.set_must_misroute_global:
            return "nm_global_proxy"
        if decision.nonminimal_global:
            return "nm_global"
        if decision.nonminimal_local:
            return "nm_local"
        return "minimal"

    def _emit(self, event: dict) -> None:
        if len(self.events) >= self.config.max_events:
            self._events_dropped += 1
            return
        self.events.append(event)

    def _take_snapshot(self, cycle: int) -> None:
        reader = self._reader
        if reader is None:
            return
        self._snapshots_taken += 1
        self._emit(
            {
                "ev": "snapshot",
                "cycle": cycle,
                "inputs": [list(row) for row in reader.input_occupancy()],
                "outputs": [list(row) for row in reader.output_committed()],
            }
        )

    # ------------------------------------------------------------- telemetry
    def finalize(self, engine) -> dict:
        """Fold the engine's counters into the ``perf`` block and return it."""
        perf = self.perf
        perf.update(
            {
                "ev": "perf",
                "cycles_executed": engine.cycle - engine.cycles_skipped,
                "cycles_skipped": engine.cycles_skipped,
                "warp_jumps": self._warp_jumps,
                "cycles_observed": self._cycles_observed,
                "alloc_router_cycles": self._alloc_router_cycles,
                "delivered_packets": engine.delivered_packets,
                "dropped_packets": engine.dropped_packets,
                "grants": self._grants,
                "events": len(self.events),
                "events_dropped": self._events_dropped,
                "snapshots_taken": self._snapshots_taken,
                "snapshots_skipped": self._snapshots_skipped,
            }
        )
        draws = getattr(engine, "_draws", None)
        if draws is not None:
            perf["rng_draws"] = draws
        return perf

    def set_manifest(self, manifest: dict) -> None:
        self.manifest = manifest

    # ----------------------------------------------------------- query / dump
    def flight_events(self, pid: Optional[int] = None) -> List[dict]:
        """The deterministic flight-recorder subset, optionally one packet."""
        events = [e for e in self.events if e["ev"] in FLIGHT_EVENTS]
        if pid is not None:
            events = [e for e in events if e.get("pid") == pid]
        return events

    def link_utilization(self) -> List[dict]:
        """Per-(router, output port) forwarded phits, non-zero links only."""
        rows = []
        radix = self._radix
        for index, phits in enumerate(self._link_phits):
            if phits:
                rid, port = divmod(index, radix)
                rows.append(
                    {
                        "router": rid,
                        "port": port,
                        "kind": self._port_chars[port],
                        "phits": phits,
                    }
                )
        return rows

    def trigger_summary(self) -> List[dict]:
        """Per-router trigger consultations and escape counts (sampled grants)."""
        return [
            {"router": rid, "consultations": totals[0], "escapes": totals[1]}
            for rid, totals in sorted(self._trigger_totals.items())
        ]

    def last_trigger(self, rid: int) -> Optional[dict]:
        return self._last_trigger.get(rid)

    def stall_context(self, pid: int, rid: int) -> List[str]:
        """Extra ``SimulationStallError`` diagnostics from the probe state."""
        lines = []
        path = self.flight_events(pid)
        if path:
            hops = ", ".join(
                f"c{e['cycle']} r{e['router']} p{e['in_port']}->"
                f"{e['out_port']} {e['cls']} {e['kind']}"
                for e in path
                if e["ev"] == "hop"
            )
            lines.append(f"  recorded flight path of pid={pid}: {hops or 'no hops'}")
        trigger = self._last_trigger.get(rid)
        if trigger is not None:
            lines.append(f"  last trigger decision at router {rid}: {trigger}")
        return lines

    def to_jsonl(self) -> str:
        """Serialize manifest + events + perf, one JSON object per line."""
        lines = []
        if self.manifest is not None:
            lines.append(json.dumps(self.manifest, sort_keys=True))
        lines.extend(json.dumps(event, sort_keys=True) for event in self.events)
        if self.perf:
            lines.append(json.dumps(self.perf, sort_keys=True))
        return "\n".join(lines) + "\n"

    def dump(self, path) -> None:
        Path(path).write_text(self.to_jsonl())


def load_trace(path) -> dict:
    """Load a JSONL trace into ``{"manifest", "events", "perf"}``.

    Tolerates streams without a manifest or perf line (e.g. a hub dumped
    mid-run); unknown trace schema versions are rejected loudly rather
    than misread.
    """
    manifest = None
    perf = None
    events: List[dict] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        ev = record.get("ev")
        if ev == "manifest":
            manifest = record
            schema = record.get("trace_schema")
            if schema is not None and schema > TRACE_SCHEMA_VERSION:
                raise ValueError(
                    f"trace schema {schema} is newer than supported "
                    f"({TRACE_SCHEMA_VERSION}); upgrade repro"
                )
        elif ev == "perf":
            perf = record
        else:
            events.append(record)
    return {"manifest": manifest, "events": events, "perf": perf}
