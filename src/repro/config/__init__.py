"""Configuration: topology and simulation parameters (paper Table I)."""

from repro.config.parameters import (
    PAPER_PARAMETERS,
    SMALL_PARAMETERS,
    TINY_PARAMETERS,
    DragonflyConfig,
    FlattenedButterflyConfig,
    FullMeshConfig,
    SimulationParameters,
    TopologyConfig,
    TorusConfig,
    validate_parameters,
)

__all__ = [
    "TopologyConfig",
    "DragonflyConfig",
    "FlattenedButterflyConfig",
    "FullMeshConfig",
    "TorusConfig",
    "SimulationParameters",
    "validate_parameters",
    "PAPER_PARAMETERS",
    "SMALL_PARAMETERS",
    "TINY_PARAMETERS",
]
