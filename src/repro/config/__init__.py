"""Configuration: topology and simulation parameters (paper Table I)."""

from repro.config.parameters import (
    PAPER_PARAMETERS,
    SMALL_PARAMETERS,
    TINY_PARAMETERS,
    DragonflyConfig,
    SimulationParameters,
    validate_parameters,
)

__all__ = [
    "DragonflyConfig",
    "SimulationParameters",
    "validate_parameters",
    "PAPER_PARAMETERS",
    "SMALL_PARAMETERS",
    "TINY_PARAMETERS",
]
