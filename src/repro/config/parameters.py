"""Simulation parameters mirroring Table I of the paper.

The paper (Fuentes et al., IPDPS 2015, Table I) evaluates a Canonical
Dragonfly with 31-port routers (h=8 global, p=8 injection, 15 local ports),
16 routers per group, 129 groups, virtual cut-through switching, a 5-cycle
router pipeline with a 2x internal speedup, and link latencies of 10 (local)
and 100 (global) cycles.  This module exposes those parameters as frozen
dataclasses together with smaller presets that keep the same proportions but
are tractable for a pure-Python cycle-level simulation.

The topology part is pluggable: :class:`SimulationParameters` holds any
:class:`TopologyConfig` — the canonical :class:`DragonflyConfig`, the 2-D
:class:`FlattenedButterflyConfig`, the :class:`FullMeshConfig`, the
k-ary n-cube :class:`TorusConfig`, or the k-ary n-tree
:class:`FatTreeConfig` — and the simulator instantiates the
matching :class:`~repro.topology.base.Topology` through
:func:`repro.topology.registry.create_topology`.  Each config class
carries its own ``tiny``/``small`` presets so experiment scales can swap
topologies without touching the microarchitectural parameters.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Mapping, Tuple

__all__ = [
    "TopologyConfig",
    "DragonflyConfig",
    "FlattenedButterflyConfig",
    "FullMeshConfig",
    "TorusConfig",
    "FatTreeConfig",
    "SimulationParameters",
    "VALID_BACKENDS",
    "default_backend",
    "PAPER_PARAMETERS",
    "SMALL_PARAMETERS",
    "TINY_PARAMETERS",
]

#: Valid values of ``SimulationParameters.backend``.
VALID_BACKENDS = frozenset({"object", "soa", "soa-numba"})


def default_backend() -> str:
    """The session's default simulation backend.

    Reads ``REPRO_BACKEND`` at *instantiation* time (not import time), so a
    test may monkeypatch the environment and every parameter set built
    afterwards picks the override up.
    """
    return os.environ.get("REPRO_BACKEND", "object")


@dataclass(frozen=True)
class TopologyConfig:
    """Base class for topology parameter sets.

    Subclasses are frozen dataclasses that set the class attribute ``kind``
    (the registry name) and provide the derived sizes below plus
    ``tiny()`` / ``small()`` presets.  The simulator resolves a config to a
    :class:`~repro.topology.base.Topology` through the registry in
    :mod:`repro.topology.registry`, keyed by the config's type.
    """

    #: Registry name of the topology this config describes.
    kind = "abstract"

    @property
    def num_routers(self) -> int:
        raise NotImplementedError

    @property
    def nodes_per_router(self) -> int:
        raise NotImplementedError

    @property
    def router_radix(self) -> int:
        raise NotImplementedError

    @property
    def num_nodes(self) -> int:
        return self.num_routers * self.nodes_per_router

    def describe(self) -> Dict[str, object]:
        """Flat summary of the topology sizes (for reports and ``as_dict``)."""
        return {
            "topology": self.kind,
            "routers": self.num_routers,
            "nodes": self.num_nodes,
            "router_radix": self.router_radix,
        }

    def canonical_dict(self) -> Dict[str, object]:
        """Complete, JSON-serializable identity of this topology config.

        Unlike :meth:`describe` (a human-oriented summary that omits
        semantic fields such as the Dragonfly's ``global_arrangement``),
        this enumerates **every** dataclass field, so two configs hash
        equal under :func:`repro.obs.telemetry.config_hash` if and only if
        they describe the same network.  Derived generically from the
        dataclass fields: a newly added parameter can never be silently
        missing from the hash.
        """
        payload: Dict[str, object] = {"kind": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            payload[f.name] = list(value) if isinstance(value, tuple) else value
        return payload


@dataclass(frozen=True)
class DragonflyConfig(TopologyConfig):
    """Canonical Dragonfly topology parameters.

    Parameters
    ----------
    p:
        Number of compute nodes attached to each router (injection ports).
    a:
        Number of routers in each first-level group.
    h:
        Number of global links per router.

    The canonical (maximum-size, complete-graph) Dragonfly has
    ``a*h + 1`` groups, ``a - 1`` local ports per router and one global link
    between every pair of groups.
    """

    kind = "dragonfly"

    p: int
    a: int
    h: int
    global_arrangement: str = "palmtree"

    def __post_init__(self) -> None:
        if self.p < 1 or self.a < 1 or self.h < 1:
            raise ValueError(
                f"Dragonfly parameters must be positive, got p={self.p}, a={self.a}, h={self.h}"
            )
        if self.global_arrangement not in ("palmtree", "consecutive"):
            raise ValueError(
                f"Unknown global arrangement {self.global_arrangement!r}; "
                "expected 'palmtree' or 'consecutive'"
            )

    # -- Derived quantities -------------------------------------------------
    @property
    def num_groups(self) -> int:
        """Number of groups in the canonical (complete) Dragonfly: a*h + 1."""
        return self.a * self.h + 1

    @property
    def routers_per_group(self) -> int:
        return self.a

    @property
    def num_routers(self) -> int:
        return self.num_groups * self.a

    @property
    def nodes_per_router(self) -> int:
        return self.p

    @property
    def nodes_per_group(self) -> int:
        return self.p * self.a

    @property
    def num_nodes(self) -> int:
        return self.num_groups * self.nodes_per_group

    @property
    def local_ports_per_router(self) -> int:
        """Local (intra-group) ports: one to every other router in the group."""
        return self.a - 1

    @property
    def global_ports_per_router(self) -> int:
        return self.h

    @property
    def global_links_per_group(self) -> int:
        return self.a * self.h

    @property
    def router_radix(self) -> int:
        """Total number of router ports (injection + local + global)."""
        return self.p + self.local_ports_per_router + self.h

    def describe(self) -> Dict[str, object]:
        return {
            "topology": self.kind,
            "p": self.p,
            "a": self.a,
            "h": self.h,
            "groups": self.num_groups,
            "routers": self.num_routers,
            "nodes": self.num_nodes,
            "router_radix": self.router_radix,
        }

    # -- Presets ------------------------------------------------------------
    @classmethod
    def paper(cls) -> "DragonflyConfig":
        """The full-scale configuration from Table I (16,512 nodes)."""
        return cls(p=8, a=16, h=8)

    @classmethod
    def small(cls) -> "DragonflyConfig":
        """A scaled-down Dragonfly (p=2, a=4, h=2 -> 9 groups, 72 nodes)."""
        return cls(p=2, a=4, h=2)

    @classmethod
    def tiny(cls) -> "DragonflyConfig":
        """The smallest balanced Dragonfly useful for unit tests (36 nodes)."""
        return cls(p=2, a=3, h=1)


@dataclass(frozen=True)
class FlattenedButterflyConfig(TopologyConfig):
    """2-D flattened butterfly (k-ary 2-flat) topology parameters.

    Routers sit on a ``rows x cols`` grid.  Every router is connected to
    all other routers of its row (first-dimension links, LOCAL ports) and
    to all other routers of its column (second-dimension links, GLOBAL
    ports), and attaches ``p`` compute nodes.  Rows play the role of the
    Dragonfly's groups for region-based traffic and routing.
    """

    kind = "flattened_butterfly"

    p: int
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.p < 1 or self.rows < 1 or self.cols < 1:
            raise ValueError(
                "flattened butterfly parameters must be positive, got "
                f"p={self.p}, rows={self.rows}, cols={self.cols}"
            )
        if self.rows * self.cols < 2:
            raise ValueError("a flattened butterfly needs at least two routers")

    # -- Derived quantities -------------------------------------------------
    @property
    def num_routers(self) -> int:
        return self.rows * self.cols

    @property
    def nodes_per_router(self) -> int:
        return self.p

    @property
    def routers_per_row(self) -> int:
        return self.cols

    @property
    def row_ports_per_router(self) -> int:
        return self.cols - 1

    @property
    def column_ports_per_router(self) -> int:
        return self.rows - 1

    @property
    def router_radix(self) -> int:
        return self.p + self.row_ports_per_router + self.column_ports_per_router

    def describe(self) -> Dict[str, object]:
        return {
            "topology": self.kind,
            "p": self.p,
            "rows": self.rows,
            "cols": self.cols,
            "routers": self.num_routers,
            "nodes": self.num_nodes,
            "router_radix": self.router_radix,
        }

    # -- Presets ------------------------------------------------------------
    @classmethod
    def small(cls) -> "FlattenedButterflyConfig":
        """A 4x4 grid with four nodes per router (64 nodes).

        ``p == rows == cols`` keeps the MIN-vs-VAL adversarial contrast of
        larger flattened butterflies: the per-dimension VAL capacity
        ``(k - 1) / (2p)`` exceeds MIN's ``1/p`` bottleneck once ``k >= 4``.
        """
        return cls(p=4, rows=4, cols=4)

    @classmethod
    def tiny(cls) -> "FlattenedButterflyConfig":
        """The smallest useful grid for unit tests (3x3, 18 nodes)."""
        return cls(p=2, rows=3, cols=3)


@dataclass(frozen=True)
class FullMeshConfig(TopologyConfig):
    """Full-mesh topology parameters (the single-group Dragonfly limit).

    ``a`` routers are joined as a complete graph by LOCAL links (there are
    no global ports at all) and each attaches ``p`` compute nodes.  Every
    router is its own region: the adversarial pattern ``ADV+i`` sends the
    nodes of router ``r`` to router ``r + i``, saturating the single direct
    link under minimal routing.
    """

    kind = "full_mesh"

    p: int
    a: int

    def __post_init__(self) -> None:
        if self.p < 1 or self.a < 2:
            raise ValueError(
                f"full mesh needs p >= 1 and a >= 2 routers, got p={self.p}, a={self.a}"
            )

    # -- Derived quantities -------------------------------------------------
    @property
    def num_routers(self) -> int:
        return self.a

    @property
    def nodes_per_router(self) -> int:
        return self.p

    @property
    def local_ports_per_router(self) -> int:
        return self.a - 1

    @property
    def router_radix(self) -> int:
        return self.p + self.a - 1

    def describe(self) -> Dict[str, object]:
        return {
            "topology": self.kind,
            "p": self.p,
            "a": self.a,
            "routers": self.num_routers,
            "nodes": self.num_nodes,
            "router_radix": self.router_radix,
        }

    # -- Presets ------------------------------------------------------------
    @classmethod
    def small(cls) -> "FullMeshConfig":
        """Eight routers with four nodes each (32 nodes)."""
        return cls(p=4, a=8)

    @classmethod
    def tiny(cls) -> "FullMeshConfig":
        """The smallest useful mesh for unit tests (6 routers, 12 nodes)."""
        return cls(p=2, a=6)


@dataclass(frozen=True)
class TorusConfig(TopologyConfig):
    """k-ary n-cube (torus) topology parameters, n in {2, 3}.

    ``dims`` gives the ring length of each dimension (e.g. ``(4, 4)`` for a
    4x4 2-D torus, ``(4, 4, 4)`` for a 3-D one); every router has one plus-
    and one minus-direction ring port per dimension (all LOCAL kind — a
    torus is a direct network with no global links) and attaches ``p``
    compute nodes.  Slabs of the *last* dimension (all routers sharing the
    last coordinate) play the role of the Dragonfly's groups for
    region-based traffic, and ``ADV+h`` resolves to the tornado offset
    ``dims[-1] // 2`` — the shift that concentrates all minimal traffic on
    one ring direction.

    Ring links cannot use the strictly-increasing buffer-class argument of
    the other topologies, so the torus declares the *dateline* VC schedule
    (see :mod:`repro.topology.torus` and :mod:`repro.routing.deadlock`).
    """

    kind = "torus"

    p: int
    dims: Tuple[int, ...]

    def __post_init__(self) -> None:
        # Accept any sequence for convenience; store the canonical tuple.
        object.__setattr__(self, "dims", tuple(int(k) for k in self.dims))
        if self.p < 1:
            raise ValueError(f"torus needs p >= 1 nodes per router, got p={self.p}")
        if not 2 <= len(self.dims) <= 3:
            raise ValueError(
                f"torus supports 2 or 3 dimensions, got dims={self.dims}"
            )
        if any(k < 2 for k in self.dims):
            raise ValueError(
                f"every torus dimension needs at least 2 routers, got dims={self.dims}"
            )

    # -- Derived quantities -------------------------------------------------
    @property
    def num_dimensions(self) -> int:
        return len(self.dims)

    @property
    def num_routers(self) -> int:
        n = 1
        for k in self.dims:
            n *= k
        return n

    @property
    def nodes_per_router(self) -> int:
        return self.p

    @property
    def ring_ports_per_router(self) -> int:
        """Two ring ports (plus / minus direction) per dimension."""
        return 2 * len(self.dims)

    @property
    def router_radix(self) -> int:
        return self.p + self.ring_ports_per_router

    def describe(self) -> Dict[str, object]:
        return {
            "topology": self.kind,
            "p": self.p,
            "dims": "x".join(str(k) for k in self.dims),
            "routers": self.num_routers,
            "nodes": self.num_nodes,
            "router_radix": self.router_radix,
        }

    # -- Presets ------------------------------------------------------------
    @classmethod
    def small(cls) -> "TorusConfig":
        """A 4x4 torus with four nodes per router (64 nodes).

        ``dims[-1] = 4`` gives a nontrivial tornado offset (``ADV+h`` =
        ``ADV+2``): minimal dimension-order routing funnels all last-ring
        traffic one way and saturates at ``1/(2p)``, while Valiant spreads
        it over both directions and all intermediate slabs.
        """
        return cls(p=4, dims=(4, 4))

    @classmethod
    def tiny(cls) -> "TorusConfig":
        """The smallest torus with a real tornado pattern (4x4, 32 nodes)."""
        return cls(p=2, dims=(4, 4))


@dataclass(frozen=True)
class FatTreeConfig(TopologyConfig):
    """k-ary n-tree (fat tree) topology parameters.

    A k-ary n-tree has ``levels`` router levels of ``k**(levels-1)``
    switches each — level 0 holds the *leaf* switches, level ``levels-1``
    the *roots* — wired so every switch has ``k`` down and ``k`` up ports
    (leaves have no children below them, roots no parents above; those
    ports exist in the uniform radix but stay unconnected).  Compute nodes
    attach to the leaf switches only, ``p`` per leaf, so ``num_nodes`` is
    ``k**(levels-1) * p`` — *not* ``num_routers * p`` — and the node id
    map is non-dense (:attr:`~repro.topology.base.Topology.dense_node_map`).

    The ``k`` most-significant-digit subtrees play the role of the
    Dragonfly's groups for region-based traffic: ``ADV+1`` sends every
    node's traffic into the next subtree, which under destination-funneled
    MIN concentrates each leaf's load on a single uplink — the subtree
    hotspot the adaptive uplink multipath is measured against.

    Tree links cannot deadlock when every path goes up then down exactly
    once, which the *up/down* VC schedule proves at construction (see
    :mod:`repro.topology.fat_tree` and :mod:`repro.routing.deadlock`).
    """

    kind = "fat_tree"

    p: int
    k: int
    levels: int

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ValueError(
                f"fat tree needs p >= 1 nodes per leaf switch, got p={self.p}"
            )
        if self.k < 2:
            raise ValueError(
                f"fat tree needs k >= 2 up/down links per switch, got k={self.k}"
            )
        if self.levels < 2:
            raise ValueError(
                f"fat tree needs at least 2 levels, got levels={self.levels}"
            )

    # -- Derived quantities -------------------------------------------------
    @property
    def switches_per_level(self) -> int:
        return self.k ** (self.levels - 1)

    @property
    def num_routers(self) -> int:
        return self.levels * self.switches_per_level

    @property
    def nodes_per_router(self) -> int:
        return self.p

    @property
    def num_nodes(self) -> int:
        """Nodes attach to the leaf level only."""
        return self.switches_per_level * self.p

    @property
    def router_radix(self) -> int:
        """``p`` injection + ``k`` down + ``k`` up ports, on every switch."""
        return self.p + 2 * self.k

    def describe(self) -> Dict[str, object]:
        return {
            "topology": self.kind,
            "p": self.p,
            "k": self.k,
            "levels": self.levels,
            "routers": self.num_routers,
            "nodes": self.num_nodes,
            "router_radix": self.router_radix,
        }

    # -- Presets ------------------------------------------------------------
    @classmethod
    def small(cls) -> "FatTreeConfig":
        """A 4-ary 2-tree with four nodes per leaf (8 switches, 16 nodes).

        The sharpest MIN-vs-multipath contrast: under ``ADV+1`` every
        leaf's four injectors funnel into one of its four uplinks under
        destination-funneled MIN (accepted load caps at ``1/p = 0.25``),
        while spreading over all four equal-cost uplinks lifts the cap to
        the full injection bandwidth.
        """
        return cls(p=4, k=4, levels=2)

    @classmethod
    def tiny(cls) -> "FatTreeConfig":
        """The smallest tree with an interior level (2-ary 3-tree, 8 nodes)."""
        return cls(p=2, k=2, levels=3)


@dataclass(frozen=True)
class SimulationParameters:
    """Full simulation parameter set (paper Table I).

    All sizes are expressed in *phits*; all latencies in router cycles.
    """

    topology: TopologyConfig

    # Router microarchitecture
    router_latency: int = 5
    internal_speedup: int = 2

    # Links
    local_link_latency: int = 10
    global_link_latency: int = 100

    # Switching / packets
    packet_size_phits: int = 8

    # Virtual channels
    global_port_vcs: int = 2
    local_port_vcs: int = 3
    injection_vcs: int = 3
    local_port_vcs_oblivious: int = 4  # VAL & PB need one extra local VC

    # Buffers (phits)
    output_buffer_phits: int = 32
    local_input_buffer_phits: int = 32   # per VC
    global_input_buffer_phits: int = 256  # per VC

    # Congestion (credit/occupancy) thresholds
    olm_congestion_threshold: float = 0.50   # relative, Section IV-A
    hybrid_congestion_threshold: float = 0.35
    pb_offset_threshold: int = 3             # "T" in PB's UGAL-like comparison

    # Contention thresholds (Section IV-A / Table I)
    base_contention_threshold: int = 6
    hybrid_contention_threshold: int = 7
    ectn_local_contention_threshold: int = 6
    ectn_combined_threshold: int = 10
    ectn_update_period: int = 100

    # PB saturation detection: a global link is marked saturated when the
    # occupancy of its output exceeds this fraction of the downstream buffer.
    pb_saturation_fraction: float = 0.50

    # Simulation backend.  ``"object"`` is the per-object router model;
    # ``"soa"`` is the struct-of-arrays transcription of the same model
    # (bit-identical results by contract); ``"soa-numba"`` additionally
    # routes the batched kernels through numba when it is importable
    # (pure-numpy fallback otherwise).  The default comes from the
    # ``REPRO_BACKEND`` environment variable when set, so a whole test or
    # benchmark session can be pointed at another backend without touching
    # call sites (this is how CI runs the tier-1 matrix).  See
    # docs/architecture.md ("Simulation backends").
    backend: str = field(default_factory=lambda: default_backend())

    def __post_init__(self) -> None:
        validate_parameters(self)

    # -- Derived ------------------------------------------------------------
    @property
    def phits_per_packet(self) -> int:
        return self.packet_size_phits

    def vcs_for_port(self, port_kind: str, routing_needs_extra_local_vc: bool = False) -> int:
        """Number of virtual channels for a port of the given kind.

        ``port_kind`` is one of ``"injection"``, ``"local"``, ``"global"``.
        """
        if port_kind == "injection":
            return self.injection_vcs
        if port_kind == "local":
            if routing_needs_extra_local_vc:
                return self.local_port_vcs_oblivious
            return self.local_port_vcs
        if port_kind == "global":
            return self.global_port_vcs
        raise ValueError(f"Unknown port kind {port_kind!r}")

    def input_buffer_phits(self, port_kind: str) -> int:
        """Per-VC input-buffer size (phits) for a port of the given kind."""
        if port_kind == "global":
            return self.global_input_buffer_phits
        return self.local_input_buffer_phits

    def with_buffers(self, local: int, global_: int) -> "SimulationParameters":
        """Return a copy with different input-buffer sizes (used by Fig. 8)."""
        return replace(
            self,
            local_input_buffer_phits=local,
            global_input_buffer_phits=global_,
        )

    def with_threshold(self, base_threshold: int) -> "SimulationParameters":
        """Return a copy with a different Base contention threshold (Fig. 10)."""
        return replace(self, base_contention_threshold=base_threshold)

    def with_topology(self, topology: TopologyConfig) -> "SimulationParameters":
        return replace(self, topology=topology)

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view of the parameters (for reporting)."""
        return {
            **self.topology.describe(),
            "router_latency": self.router_latency,
            "internal_speedup": self.internal_speedup,
            "local_link_latency": self.local_link_latency,
            "global_link_latency": self.global_link_latency,
            "packet_size_phits": self.packet_size_phits,
            "global_port_vcs": self.global_port_vcs,
            "local_port_vcs": self.local_port_vcs,
            "injection_vcs": self.injection_vcs,
            "output_buffer_phits": self.output_buffer_phits,
            "local_input_buffer_phits": self.local_input_buffer_phits,
            "global_input_buffer_phits": self.global_input_buffer_phits,
            "olm_congestion_threshold": self.olm_congestion_threshold,
            "hybrid_congestion_threshold": self.hybrid_congestion_threshold,
            "pb_offset_threshold": self.pb_offset_threshold,
            "base_contention_threshold": self.base_contention_threshold,
            "hybrid_contention_threshold": self.hybrid_contention_threshold,
            "ectn_combined_threshold": self.ectn_combined_threshold,
            "ectn_update_period": self.ectn_update_period,
            "backend": self.backend,
        }

    def with_backend(self, backend: str) -> "SimulationParameters":
        """Return a copy selecting a different simulation backend."""
        return replace(self, backend=backend)

    def canonical_dict(self) -> Dict[str, object]:
        """Canonical serialization of the *simulated system* for hashing.

        This is the payload behind :func:`repro.obs.telemetry.config_hash`
        (trace manifests) and the sweep-service cache key, so the two
        always agree on what "the same configuration" means.  Two rules:

        * every semantic dataclass field is included — enumerated via
          :func:`dataclasses.fields` so a newly added parameter perturbs
          the hash without anyone remembering to list it (contrast
          :meth:`as_dict`, a reporting view that omits several fields);
        * ``backend`` is **excluded**: the backends are bit-identical by
          contract, so the hash identifies the simulated system, not the
          engine that computed it.
        """
        payload: Dict[str, object] = {}
        for f in fields(self):
            if f.name in ("topology", "backend"):
                continue
            payload[f.name] = getattr(self, f.name)
        payload["topology"] = self.topology.canonical_dict()
        return payload

    # -- Presets ------------------------------------------------------------
    @classmethod
    def paper(cls) -> "SimulationParameters":
        """The exact Table I configuration (huge; slow in pure Python)."""
        return cls(topology=DragonflyConfig.paper())

    @classmethod
    def small(cls, topology: "TopologyConfig | None" = None) -> "SimulationParameters":
        """Scaled-down configuration preserving the Table I proportions.

        Link latencies and buffer depths are scaled by roughly the same
        factor so that the buffer-size/RTT relationship (which drives the
        credit-uncertainty effects in Section II) is preserved.  Pass a
        ``topology`` config to keep these microarchitectural settings on a
        different topology (e.g. ``FlattenedButterflyConfig.small()``).
        """
        return cls(
            topology=topology if topology is not None else DragonflyConfig.small(),
            local_link_latency=4,
            global_link_latency=16,
            packet_size_phits=4,
            output_buffer_phits=16,
            local_input_buffer_phits=16,
            global_input_buffer_phits=64,
            base_contention_threshold=4,
            hybrid_contention_threshold=5,
            ectn_local_contention_threshold=4,
            ectn_combined_threshold=6,
            ectn_update_period=50,
        )

    @classmethod
    def transient(cls) -> "SimulationParameters":
        """Preset for the transient experiments (Figs. 7-9).

        The paper's fast-adaptation effect relies on *source-side* contention:
        with ``p`` injection ports per router, an adversarial load ``rho``
        stresses the local link towards the group's gateway router whenever
        ``p * rho > 1``.  The Table I router has ``p = 8`` so the 20 % load of
        the transient experiments saturates that link; the two injection ports
        of the :meth:`small` preset cannot.  This preset therefore uses a
        larger balanced Dragonfly (p=4, a=8, h=4; 1,056 nodes) with the
        scaled-down latencies and buffers of :meth:`small`, driven at ~30 %
        load by the transient experiment scale, together with the paper's
        ``th = 6`` threshold.  It is noticeably slower to simulate than the
        small preset and is used only by the transient harnesses (Figs. 7-9).
        """
        return cls(
            topology=DragonflyConfig(p=4, a=8, h=4),
            local_link_latency=4,
            global_link_latency=16,
            packet_size_phits=4,
            output_buffer_phits=16,
            local_input_buffer_phits=16,
            global_input_buffer_phits=64,
            base_contention_threshold=6,
            hybrid_contention_threshold=7,
            ectn_local_contention_threshold=6,
            ectn_combined_threshold=10,
            ectn_update_period=50,
        )

    @classmethod
    def tiny(cls, topology: "TopologyConfig | None" = None) -> "SimulationParameters":
        """Smallest useful configuration for unit tests.

        Pass a ``topology`` config to keep the tiny latencies/buffers on a
        different topology (used by the cross-topology scales and goldens).
        """
        return cls(
            topology=topology if topology is not None else DragonflyConfig.tiny(),
            local_link_latency=2,
            global_link_latency=6,
            packet_size_phits=2,
            output_buffer_phits=8,
            local_input_buffer_phits=8,
            global_input_buffer_phits=16,
            base_contention_threshold=3,
            hybrid_contention_threshold=3,
            ectn_local_contention_threshold=3,
            ectn_combined_threshold=4,
            ectn_update_period=20,
        )


def validate_parameters(params: SimulationParameters) -> None:
    """Raise ``ValueError`` if a parameter combination is inconsistent."""
    if params.packet_size_phits < 1:
        raise ValueError("packet_size_phits must be >= 1")
    if params.router_latency < 0:
        raise ValueError("router_latency must be >= 0")
    if params.internal_speedup < 1:
        raise ValueError("internal_speedup must be >= 1")
    if params.local_link_latency < 1 or params.global_link_latency < 1:
        raise ValueError("link latencies must be >= 1 cycle")
    for name in (
        "output_buffer_phits",
        "local_input_buffer_phits",
        "global_input_buffer_phits",
    ):
        if getattr(params, name) < params.packet_size_phits:
            raise ValueError(
                f"{name}={getattr(params, name)} cannot hold a single "
                f"{params.packet_size_phits}-phit packet (virtual cut-through "
                "requires room for at least one full packet)"
            )
    for name in ("global_port_vcs", "local_port_vcs", "injection_vcs"):
        if getattr(params, name) < 1:
            raise ValueError(f"{name} must be >= 1")
    if params.local_port_vcs_oblivious < params.local_port_vcs:
        raise ValueError(
            "local_port_vcs_oblivious must be >= local_port_vcs (VAL/PB need "
            "at least as many VCs as the adaptive mechanisms)"
        )
    if not (0.0 < params.olm_congestion_threshold <= 1.0):
        raise ValueError("olm_congestion_threshold must be in (0, 1]")
    if not (0.0 < params.hybrid_congestion_threshold <= 1.0):
        raise ValueError("hybrid_congestion_threshold must be in (0, 1]")
    if not (0.0 < params.pb_saturation_fraction <= 1.0):
        raise ValueError("pb_saturation_fraction must be in (0, 1]")
    if params.base_contention_threshold < 1:
        raise ValueError("base_contention_threshold must be >= 1")
    if params.ectn_update_period < 1:
        raise ValueError("ectn_update_period must be >= 1")
    if params.backend not in VALID_BACKENDS:
        raise ValueError(
            f"backend={params.backend!r} is not one of {sorted(VALID_BACKENDS)}"
        )


#: The exact Table I configuration.
PAPER_PARAMETERS: SimulationParameters = SimulationParameters.paper()

#: A scaled-down configuration used by the example scripts and benchmarks.
SMALL_PARAMETERS: SimulationParameters = SimulationParameters.small()

#: The smallest configuration, used by unit tests.
TINY_PARAMETERS: SimulationParameters = SimulationParameters.tiny()
