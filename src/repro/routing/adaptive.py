"""Shared framework for in-transit nonminimal adaptive routing.

OLM and the three contention-based mechanisms of the paper (Base, Hybrid,
ECtN) share the same *misrouting policy* — where a packet may be diverted and
which paths are candidates (Section IV-A: "We implement the same misrouting
policy and deadlock avoidance mechanisms as OLM") — and differ only in the
*misrouting trigger*.  :class:`AdaptiveInTransitRouting` implements the
shared policy:

* global misrouting may be selected in the source group while the packet has
  not yet crossed a global link, with MM+L candidates (own global links, plus
  local-proxy links at injection);
* once a nonminimal global link is chosen, the packet records its
  intermediate group and proceeds minimally to it, then minimally to the
  destination (at most one global misroute per packet);
* local misrouting (one extra local hop) may be selected in the intermediate
  or destination group when the minimal output is a local link.

Subclasses provide the trigger by implementing
:meth:`AdaptiveInTransitRouting.choose_global_misroute` and
:meth:`AdaptiveInTransitRouting.choose_local_misroute`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.network.packet import Packet, RoutingPhase
from repro.routing.base import RoutingAlgorithm, RoutingDecision
from repro.routing.misrouting import (
    MisrouteCandidate,
    global_misroute_candidates,
    local_misroute_candidates,
)
from repro.topology.base import PortKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.router import Router

__all__ = ["AdaptiveInTransitRouting"]


class AdaptiveInTransitRouting(RoutingAlgorithm):
    """Base class for OLM-style in-transit adaptive routing."""

    name = "adaptive"
    #: The path-stage VC assignment needs the fourth local VC on the longest
    #: allowed nonminimal paths (see :mod:`repro.routing.deadlock`).
    needs_extra_local_vc = True

    # ----------------------------------------------------------------- hooks
    def on_packet_arrival(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> None:
        if (
            packet.phase is RoutingPhase.TO_INTERMEDIATE
            and packet.intermediate_group is not None
            and self.topology.router_group(router.router_id) == packet.intermediate_group
        ):
            packet.intermediate_group = None
            packet.phase = RoutingPhase.MINIMAL

    # -------------------------------------------------------------- decisions
    def select_output(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> Optional[RoutingDecision]:
        topo = self.topology
        rid = router.router_id
        if rid == topo.node_router(packet.dst):
            return self.ejection_decision(router, packet)

        if packet.phase is RoutingPhase.TO_INTERMEDIATE and packet.intermediate_group is not None:
            return self._towards_group(router, packet, packet.intermediate_group)

        current_group = topo.router_group(rid)
        dst_group = topo.node_group(packet.dst)
        minimal_port = topo.minimal_output_port(rid, packet.dst)
        minimal_kind = topo.port_kind(minimal_port)

        # --- committed MM+L proxy: the previous hop was the local step of a
        # global misroute, so this hop must leave the group through a global
        # link (this keeps the buffer-class order acyclic).
        if (
            packet.must_misroute_global
            and dst_group != current_group
            and packet.global_hops == 0
        ):
            return self._forced_global_decision(router, packet, minimal_port, cycle)

        # --- global misrouting (source group, before the first global hop) ----
        if (
            dst_group != current_group
            and packet.global_hops == 0
            and not packet.globally_misrouted
        ):
            allow_proxy = packet.hops == 0
            candidates = global_misroute_candidates(
                topo, router, packet, minimal_port, allow_local_proxy=allow_proxy
            )
            chosen = self.choose_global_misroute(
                router, port, packet, minimal_port, candidates, cycle
            )
            if chosen is not None:
                if chosen.kind is PortKind.GLOBAL:
                    return RoutingDecision(
                        output_port=chosen.port,
                        vc=self.next_vc(packet, PortKind.GLOBAL),
                        nonminimal_global=True,
                        set_intermediate_group=chosen.target_group,
                    )
                # Local proxy hop: move to a neighbouring router of the group
                # and misroute through one of its global links (the "+L" of
                # MM+L).  The global hop at the next router is mandatory.
                return RoutingDecision(
                    output_port=chosen.port,
                    vc=self.next_vc(packet, PortKind.LOCAL),
                    set_must_misroute_global=True,
                )

        # --- local misrouting ---------------------------------------------------
        # Allowed for the first local hop of the destination group of minimal
        # packets and of the intermediate group of globally misrouted packets;
        # not in the destination group after a global misroute (the path-stage
        # VC assignment has no class left for that extra hop).
        if (
            minimal_kind is PortKind.LOCAL
            and packet.local_hops_in_group == 0
            and packet.global_hops <= 1
            and (current_group == dst_group or packet.global_hops == 1)
        ):
            candidates = local_misroute_candidates(topo, router, packet, minimal_port)
            chosen = self.choose_local_misroute(
                router, port, packet, minimal_port, candidates, cycle
            )
            if chosen is not None:
                return RoutingDecision(
                    output_port=chosen.port,
                    vc=self.next_vc(packet, PortKind.LOCAL),
                    nonminimal_local=True,
                )

        return RoutingDecision(
            output_port=minimal_port, vc=self.next_vc(packet, minimal_kind)
        )

    def _forced_global_decision(
        self, router: "Router", packet: Packet, minimal_port: int, cycle: int
    ) -> RoutingDecision:
        """Global hop forced after an MM+L local proxy step.

        Prefers the trigger-approved candidates; if none qualifies any global
        port avoiding the current and destination groups is taken, and as a
        last resort the minimal global link (if this router owns it).
        """
        topo = self.topology
        candidates = global_misroute_candidates(
            topo, router, packet, minimal_port, allow_local_proxy=False
        )
        chosen = self.choose_global_misroute(
            router, 0, packet, minimal_port, candidates, cycle
        )
        if chosen is None:
            chosen = self.pick_random(list(candidates))
        if chosen is not None:
            return RoutingDecision(
                output_port=chosen.port,
                vc=self.next_vc(packet, PortKind.GLOBAL),
                nonminimal_global=True,
                set_intermediate_group=chosen.target_group,
            )
        # No usable nonminimal global link: fall back to the minimal path,
        # which from this router must be a global hop if it exists here.
        minimal_kind = topo.port_kind(minimal_port)
        return RoutingDecision(
            output_port=minimal_port, vc=self.next_vc(packet, minimal_kind)
        )

    def _towards_group(
        self, router: "Router", packet: Packet, target_group: int
    ) -> RoutingDecision:
        """Minimal step towards ``target_group`` (used while heading to the
        intermediate group of a global misroute)."""
        topo = self.topology
        rid = router.router_id
        current_group = topo.router_group(rid)
        if current_group == target_group:
            # Arrival hook normally clears this state; fall back to minimal.
            return self.minimal_decision(router, packet)
        gw_router, gw_port = topo.global_link_endpoint(current_group, target_group)
        if gw_router == rid:
            return RoutingDecision(
                output_port=gw_port,
                vc=self.next_vc(packet, PortKind.GLOBAL),
                nonminimal_global=True,
            )
        out_port = topo.local_port_to(
            topo.router_position(rid), topo.router_position(gw_router)
        )
        return RoutingDecision(output_port=out_port, vc=self.next_vc(packet, PortKind.LOCAL))

    # ------------------------------------------------------------- triggers
    def choose_global_misroute(
        self,
        router: "Router",
        port: int,
        packet: Packet,
        minimal_port: int,
        candidates: Sequence[MisrouteCandidate],
        cycle: int,
    ) -> Optional[MisrouteCandidate]:
        """Return the candidate to misroute through, or ``None`` to stay minimal."""
        raise NotImplementedError

    def choose_local_misroute(
        self,
        router: "Router",
        port: int,
        packet: Packet,
        minimal_port: int,
        candidates: Sequence[MisrouteCandidate],
        cycle: int,
    ) -> Optional[MisrouteCandidate]:
        """Return the local-detour candidate, or ``None`` to stay minimal."""
        raise NotImplementedError

    # ------------------------------------------------------------- utilities
    def pick_random(self, candidates: List[MisrouteCandidate]) -> Optional[MisrouteCandidate]:
        if not candidates:
            return None
        index = int(self.rng.integers(0, len(candidates)))
        return candidates[index]
