"""Shared framework for in-transit nonminimal adaptive routing.

OLM and the three contention-based mechanisms of the paper (Base, Hybrid,
ECtN) share the same *misrouting policy* — where a packet may be diverted and
which paths are candidates (Section IV-A: "We implement the same misrouting
policy and deadlock avoidance mechanisms as OLM") — and differ only in the
*misrouting trigger*.  :class:`AdaptiveInTransitRouting` implements the
policy layer and dispatches between the two per-topology path policies the
library defines, selected by the topology's
:class:`~repro.topology.base.PathModel` capability flags:

**Group policy** (``supports_in_transit_adaptive``: Dragonfly, flattened
butterfly).  The MM+L policy over regions and GLOBAL links:

* global misrouting may be selected in the source region while the packet
  has not yet crossed a global link, with MM+L candidates (own global
  links, plus local-proxy links at injection);
* once a nonminimal global link is chosen, the packet records its
  intermediate region and proceeds minimally to it
  (:meth:`~repro.topology.base.Topology.region_gateway`), then minimally to
  the destination (at most one global misroute per packet);
* local misrouting (one extra local hop) may be selected in the
  intermediate or destination region when the minimal output is a local
  link.

**Ring-escape policy** (``supports_nonminimal_ring_escape``: torus).  A
direct ring network has no global links to detour over; the in-transit
nonminimal choice is the *direction* around each ring (cf. OutFlank
routing).  At the first hop of every ring traversal the trigger may divert
the packet through the opposite-direction port, committing the whole
traversal (up to ``k - 1`` links) to that direction; dimension order is
preserved, so the dateline ``(leg, dim, crossed)`` classes stay
lexicographically monotone and the schedule remains deadlock-free — the
extended :func:`repro.routing.deadlock.validate_dateline_shapes` re-proves
this at construction.

**Uplink-multipath policy** (``supports_uplink_multipath``: fat tree).
Indirect trees have neither global links nor rings; the in-transit
nonminimal freedom is *which* equal-cost uplink carries the packet towards
the destination's nearest common ancestor.  At every up hop the trigger may
divert the packet onto a sibling uplink (same hop count, same up/down class
schedule — see :func:`repro.routing.deadlock.validate_updown_shapes`); down
hops are deterministic.  The diversion leaves the destination-funneled
default path, so it is accounted as a local misroute and drives the same
contention counters as the other policies.

Subclasses provide the trigger by implementing
:meth:`AdaptiveInTransitRouting.choose_global_misroute` and
:meth:`AdaptiveInTransitRouting.choose_local_misroute` (the ring escape and
the uplink diversion are offered through the local-misroute trigger: ring
and tree ports carry the LOCAL kind).  Topologies that declare none of the
policies (the full mesh) reject the whole mechanism family with
:class:`UnsupportedTopologyError`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.config.parameters import SimulationParameters
from repro.network.packet import Packet, RoutingPhase
from repro.routing.base import (
    RoutingAlgorithm,
    RoutingDecision,
    UnsupportedTopologyError,
)
from repro.routing.misrouting import (
    MisrouteCandidate,
    compute_global_candidates,
    compute_local_candidates,
    compute_ring_escape_candidates,
    compute_uplink_candidates,
)
from repro.topology.base import PortKind, Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.router import Router

__all__ = ["AdaptiveInTransitRouting"]

# Module-level aliases: locals/globals resolve faster than enum attribute
# lookups in the per-head-per-round decision path.
_TO_INTERMEDIATE = RoutingPhase.TO_INTERMEDIATE
_GLOBAL = PortKind.GLOBAL
_LOCAL = PortKind.LOCAL


class AdaptiveInTransitRouting(RoutingAlgorithm):
    """Base class for OLM-style in-transit adaptive routing."""

    name = "adaptive"
    #: The path-stage VC assignment needs the fourth local VC on the longest
    #: allowed nonminimal paths (see :mod:`repro.routing.deadlock`); on
    #: dateline topologies the same budget covers the ring-escape classes.
    needs_extra_local_vc = True
    #: Widens the construction-time deadlock validation to the adaptive
    #: path shapes (MM+L hop kinds / long-way ring traversals).
    uses_in_transit_adaptive = True

    def __init__(self, topology: Topology, params: SimulationParameters, rng):
        # The topology's path model declares which in-transit policy applies:
        # the MM+L group policy (global detours towards an intermediate
        # region, local detours inside a region, the local-proxy step) or
        # the nonminimal ring escape.  Neither -> fail loudly.
        path_model = topology.path_model
        self._ring_escape = (
            path_model.supports_nonminimal_ring_escape
            and not path_model.supports_in_transit_adaptive
        )
        self._uplink_multipath = path_model.supports_uplink_multipath
        if not (
            path_model.supports_in_transit_adaptive
            or path_model.supports_nonminimal_ring_escape
            or path_model.supports_uplink_multipath
        ):
            raise UnsupportedTopologyError.for_mechanism(
                self.name,
                topology,
                "in-transit misrouting needs Dragonfly-style regions with "
                "global links (the MM+L policy), rings with a nonminimal "
                "direction choice (the dateline escape policy), or "
                "equal-cost uplinks (the fat-tree multipath policy), and "
                "this topology provides none of them",
                "the topology-agnostic UGAL (or MIN/VAL)",
            )
        super().__init__(topology, params, rng)
        self._nodes_per_router = topology.nodes_per_router
        # Each policy's state stays scoped to its branch: the decision path
        # dispatches unconditionally on _ring_escape, so the other policy's
        # caches would be dead weight (and an invitation to consult a cache
        # that is never populated).
        if self._ring_escape:
            # Port-indexed ring-escape tables: the (dimension, direction) of
            # every ring port and the single opposite-direction candidate,
            # resolved once so the per-head decision path is two list
            # lookups.  Injection ports hold None / empty lists.
            self._port_ring_dim: List[Optional[Tuple[int, int]]] = [
                None
                if topology.port_kinds[port] is not _LOCAL
                else topology.port_dimension(port)
                for port in range(topology.router_radix)
            ]
            self._escape_candidates: List[List[MisrouteCandidate]] = [
                compute_ring_escape_candidates(topology, port)
                for port in range(topology.router_radix)
            ]
        elif self._uplink_multipath:
            # Port-indexed sibling-uplink tables: equal-cost alternatives to
            # each minimal uplink (empty lists for injection / down ports),
            # resolved once so the per-head decision path is one lookup.
            self._uplink_candidates: List[List[MisrouteCandidate]] = [
                compute_uplink_candidates(topology, port)
                for port in range(topology.router_radix)
            ]
        else:
            # Candidate sets are pure functions of their key for a fixed
            # topology; memoizing them removes a per-blocked-head-per-cycle
            # enumeration from the allocation hot path.  Callers must not
            # mutate the cached lists.
            self._global_candidates_cache: Dict[
                Tuple[int, int, int, bool], List[MisrouteCandidate]
            ] = {}
            self._local_candidates_cache: Dict[int, List[MisrouteCandidate]] = {}
            self._routers_per_group = topology.routers_per_region
            self._nodes_per_group = (
                topology.nodes_per_router * topology.routers_per_region
            )
            # (router, target_group) -> (output_port, is_global) for the
            # minimal step towards an intermediate group (static for a
            # fixed topology).
            self._towards_cache: Dict[Tuple[int, int], Tuple[int, bool]] = {}

    # ------------------------------------------------------ candidate lookups
    def global_candidates(
        self, router_id: int, dst_group: int, minimal_port: int, allow_local_proxy: bool
    ) -> List[MisrouteCandidate]:
        """Memoized MM+L global-misroute candidate set (do not mutate)."""
        key = (router_id, dst_group, minimal_port, allow_local_proxy)
        candidates = self._global_candidates_cache.get(key)
        if candidates is None:
            candidates = compute_global_candidates(
                self.topology, router_id, dst_group, minimal_port, allow_local_proxy
            )
            self._global_candidates_cache[key] = candidates
        return candidates

    def local_candidates(self, minimal_port: int) -> List[MisrouteCandidate]:
        """Memoized local-detour candidate set (do not mutate)."""
        candidates = self._local_candidates_cache.get(minimal_port)
        if candidates is None:
            candidates = compute_local_candidates(self.topology, minimal_port)
            self._local_candidates_cache[minimal_port] = candidates
        return candidates

    # ----------------------------------------------------------------- hooks
    def on_packet_arrival(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> None:
        if (
            packet.phase is RoutingPhase.TO_INTERMEDIATE
            and packet.intermediate_group is not None
            and self.topology.router_region(router.router_id) == packet.intermediate_group
        ):
            packet.intermediate_group = None
            packet.phase = RoutingPhase.MINIMAL

    # -------------------------------------------------------------- decisions
    def select_output(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> Optional[RoutingDecision]:
        if self._ring_escape:
            return self._ring_escape_output(router, port, vc, packet, cycle)
        if self._uplink_multipath:
            return self._uplink_output(router, port, vc, packet, cycle)
        topo = self.topology
        rid = router.router_id
        dst = packet.dst
        dst_router = dst // self._nodes_per_router
        if rid == dst_router:
            return self.plain_decision(dst % self._nodes_per_router, 0)

        if packet.phase is _TO_INTERMEDIATE and packet.intermediate_group is not None:
            return self._towards_group(router, packet, packet.intermediate_group)

        current_group = rid // self._routers_per_group
        dst_group = dst_router // self._routers_per_group
        # The contention tracker already computed the minimal port when this
        # packet reached its buffer head at this router (and clears it when
        # the packet leaves), so reuse it instead of recomputing per round.
        minimal_port = packet.contention_port
        if minimal_port is None:
            minimal_port = topo.minimal_output_port(rid, dst)
        minimal_kind = topo.port_kinds[minimal_port]

        # --- committed MM+L proxy: the previous hop was the local step of a
        # global misroute, so this hop must leave the group through a global
        # link (this keeps the buffer-class order acyclic).
        if (
            packet.must_misroute_global
            and dst_group != current_group
            and packet.global_hops == 0
        ):
            return self._forced_global_decision(router, packet, minimal_port, cycle)

        # --- global misrouting (source group, before the first global hop) ----
        if (
            dst_group != current_group
            and packet.global_hops == 0
            and not packet.globally_misrouted
        ):
            allow_proxy = packet.hops == 0
            candidates = self.global_candidates(rid, dst_group, minimal_port, allow_proxy)
            if self.faults is not None:
                candidates = self.faults.filter_candidates(rid, candidates)
            chosen = self.choose_global_misroute(
                router, port, packet, minimal_port, candidates, cycle
            )
            if chosen is not None:
                if chosen.kind is _GLOBAL:
                    return RoutingDecision(
                        output_port=chosen.port,
                        vc=self.next_vc(packet, _GLOBAL),
                        nonminimal_global=True,
                        set_intermediate_group=chosen.target_group,
                    )
                # Local proxy hop: move to a neighbouring router of the group
                # and misroute through one of its global links (the "+L" of
                # MM+L).  The global hop at the next router is mandatory.
                return RoutingDecision(
                    output_port=chosen.port,
                    vc=self.next_vc(packet, _LOCAL),
                    set_must_misroute_global=True,
                )

        # --- local misrouting ---------------------------------------------------
        # Allowed for the first local hop of the destination group of minimal
        # packets and of the intermediate group of globally misrouted packets;
        # not in the destination group after a global misroute (the path-stage
        # VC assignment has no class left for that extra hop).
        if (
            minimal_kind is _LOCAL
            and packet.local_hops_in_group == 0
            and packet.global_hops <= 1
            and (current_group == dst_group or packet.global_hops == 1)
        ):
            candidates = self.local_candidates(minimal_port)
            if self.faults is not None:
                candidates = self.faults.filter_candidates(rid, candidates)
            chosen = self.choose_local_misroute(
                router, port, packet, minimal_port, candidates, cycle
            )
            if chosen is not None:
                return RoutingDecision(
                    output_port=chosen.port,
                    vc=self.next_vc(packet, _LOCAL),
                    nonminimal_local=True,
                )

        # Inlined ``next_vc`` for the minimal fallback (the common case);
        # see the NOTE on RoutingAlgorithm.next_vc — keep in sync.
        if minimal_kind is _GLOBAL:
            g = packet.global_hops
            last = self._global_vcs - 1
            min_vc = g if g < last else last
        elif minimal_kind is _LOCAL:
            g = packet.global_hops
            l = 1 if packet.local_hops_in_group else 0
            min_vc = l if g == 0 else 2 * g - 1 + l
            last = self._local_vcs - 1
            if min_vc > last:
                min_vc = last
        else:
            min_vc = 0  # ejection
        # Shared flag-free instance (see RoutingAlgorithm.plain_decision),
        # inlined for the hottest return path.
        row = self._plain_decisions[minimal_port]
        decision = row[min_vc]
        if decision is None:
            decision = row[min_vc] = RoutingDecision(minimal_port, min_vc)
        return decision

    def _ring_escape_output(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> RoutingDecision:
        """Decision path of the ring-escape policy (dateline topologies).

        Dimension-order routing is kept; the only nonminimal freedom is the
        direction of each ring traversal.  The trigger is consulted exactly
        once per traversal — while the packet has not yet hopped in the
        dimension to correct — and the granted direction is then held until
        the dimension is done, even where the minimal direction would flip
        past the half-ring tie (re-evaluating mid-ring could cross the
        dateline twice and void the deadlock argument).
        """
        topo = self.topology
        rid = router.router_id
        dst = packet.dst
        dst_router = dst // self._nodes_per_router
        if rid == dst_router:
            return self.plain_decision(dst % self._nodes_per_router, 0)
        # The contention tracker already computed the minimal (shortest
        # direction) port for this head; reuse it per round.
        minimal_port = packet.contention_port
        if minimal_port is None:
            minimal_port = topo.minimal_output_port(rid, dst)
        dim, direction = self._port_ring_dim[minimal_port]
        if packet.ring_dim == dim and packet.ring_dir != 0:
            # Mid-traversal: committed to a direction.  Continuation hops of
            # an escaped traversal carry no misroute flag — the escape was
            # accounted once, at the diverting hop.
            if packet.ring_dir != direction:
                out = self._escape_candidates[minimal_port][0].port
                return self.plain_decision(out, topo.ring_vc(packet, rid, out))
        else:
            # First hop of this dimension's traversal: the trigger may
            # divert the whole traversal the long way around the ring.
            escape = self._escape_candidates[minimal_port]
            if self.faults is not None:
                # A dead minimal port is handled downstream by the router's
                # fault resolution; here we only keep the escape itself off
                # dead links.  Mid-traversal continuation hops (above) get
                # the same downstream treatment.
                escape = self.faults.filter_candidates(rid, escape)
            chosen = self.choose_local_misroute(
                router,
                port,
                packet,
                minimal_port,
                escape,
                cycle,
            )
            if chosen is not None:
                return RoutingDecision(
                    output_port=chosen.port,
                    vc=topo.ring_vc(packet, rid, chosen.port),
                    nonminimal_local=True,
                )
        return self.plain_decision(
            minimal_port, topo.ring_vc(packet, rid, minimal_port)
        )

    def _uplink_output(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> RoutingDecision:
        """Decision path of the uplink-multipath policy (the fat tree).

        Down hops and ejection are pinned by the destination's digits; the
        only adaptive freedom is which of the equal-cost sibling uplinks
        carries the packet towards the nearest common ancestor, so the
        trigger is consulted exactly when the minimal output is an uplink.
        Every alternative has the same hop count and stays on the up/down
        class schedule (the VC is a pure function of the output port), so no
        commitment state is needed — each up hop re-evaluates independently.
        """
        topo = self.topology
        rid = router.router_id
        dst = packet.dst
        if rid == self._node_rid[dst]:
            return self.plain_decision(dst % self._nodes_per_router, 0)
        # The contention tracker already computed the minimal port for this
        # head (and clears it when the packet leaves); reuse it per round.
        minimal_port = packet.contention_port
        if minimal_port is None:
            minimal_port = topo.minimal_output_port(rid, dst)
        candidates = self._uplink_candidates[minimal_port]
        if candidates:
            if self.faults is not None:
                candidates = self.faults.filter_candidates(rid, candidates)
            chosen = self.choose_local_misroute(
                router, port, packet, minimal_port, candidates, cycle
            )
            if chosen is not None:
                return RoutingDecision(
                    output_port=chosen.port,
                    vc=self._updown_vcs[chosen.port],
                    nonminimal_local=True,
                )
        return self.plain_decision(minimal_port, self._updown_vcs[minimal_port])

    def _forced_global_decision(
        self, router: "Router", packet: Packet, minimal_port: int, cycle: int
    ) -> RoutingDecision:
        """Global hop forced after an MM+L local proxy step.

        Prefers the trigger-approved candidates; if none qualifies any global
        port avoiding the current and destination groups is taken, and as a
        last resort the minimal global link (if this router owns it).
        """
        topo = self.topology
        candidates = self.global_candidates(
            router.router_id, topo.node_region(packet.dst), minimal_port, False
        )
        if self.faults is not None:
            candidates = self.faults.filter_candidates(router.router_id, candidates)
        chosen = self.choose_global_misroute(
            router, 0, packet, minimal_port, candidates, cycle
        )
        if chosen is None:
            chosen = self.pick_random(list(candidates))
        if chosen is not None:
            return RoutingDecision(
                output_port=chosen.port,
                vc=self.next_vc(packet, PortKind.GLOBAL),
                nonminimal_global=True,
                set_intermediate_group=chosen.target_group,
            )
        # No usable nonminimal global link: fall back to the minimal path,
        # which from this router must be a global hop if it exists here.
        minimal_kind = topo.port_kinds[minimal_port]
        return RoutingDecision(
            output_port=minimal_port, vc=self.next_vc(packet, minimal_kind)
        )

    def _towards_group(
        self, router: "Router", packet: Packet, target_group: int
    ) -> RoutingDecision:
        """Minimal step towards ``target_group`` (used while heading to the
        intermediate group of a global misroute)."""
        rid = router.router_id
        if rid // self._routers_per_group == target_group:
            # Arrival hook normally clears this state; fall back to minimal.
            return self.minimal_decision(router, packet)
        key = (rid, target_group)
        cached = self._towards_cache.get(key)
        if cached is None:
            cached = self.topology.region_gateway(rid, target_group)
            self._towards_cache[key] = cached
        out_port, is_global = cached
        if is_global:
            return RoutingDecision(
                output_port=out_port,
                vc=self.next_vc(packet, PortKind.GLOBAL),
                nonminimal_global=True,
            )
        return RoutingDecision(output_port=out_port, vc=self.next_vc(packet, PortKind.LOCAL))

    # ------------------------------------------------------------- triggers
    def choose_global_misroute(
        self,
        router: "Router",
        port: int,
        packet: Packet,
        minimal_port: int,
        candidates: Sequence[MisrouteCandidate],
        cycle: int,
    ) -> Optional[MisrouteCandidate]:
        """Return the candidate to misroute through, or ``None`` to stay minimal."""
        raise NotImplementedError

    def choose_local_misroute(
        self,
        router: "Router",
        port: int,
        packet: Packet,
        minimal_port: int,
        candidates: Sequence[MisrouteCandidate],
        cycle: int,
    ) -> Optional[MisrouteCandidate]:
        """Return the local-detour candidate, or ``None`` to stay minimal."""
        raise NotImplementedError

    # ------------------------------------------------------------- utilities
    def pick_random(self, candidates: List[MisrouteCandidate]) -> Optional[MisrouteCandidate]:
        if not candidates:
            return None
        index = int(self.rng.integers(0, len(candidates)))
        return candidates[index]
