"""Routing algorithms: oblivious and adaptive baselines plus the paper's
contention-based mechanisms.

Use :func:`create_routing` to instantiate a mechanism by name (the names used
throughout the paper's figures): ``MIN``, ``VAL``, ``UGAL``, ``PB``, ``OLM``,
``Base``, ``Hybrid``, ``ECtN``.  MIN, VAL and UGAL run on every registered
topology.  The in-transit adaptive family (OLM, Base, Hybrid) runs wherever
the topology declares a path policy for it — the MM+L group policy on the
Dragonfly and the flattened butterfly, the nonminimal ring-escape policy on
the torus — and raises :class:`UnsupportedTopologyError` elsewhere (the
full mesh).  PB and ECtN additionally need the Dragonfly's intra-group ECN
/ broadcast structure and stay Dragonfly-only.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from repro.config.parameters import SimulationParameters
from repro.routing.adaptive import AdaptiveInTransitRouting
from repro.routing.base import (
    RoutingAlgorithm,
    RoutingDecision,
    UnsupportedTopologyError,
)
from repro.routing.contention import (
    BaseContentionRouting,
    ContentionCounters,
    ContentionTracker,
    ECtNRouting,
    HybridContentionRouting,
)
from repro.routing.deadlock import VCAssignmentPolicy
from repro.routing.minimal import MinimalRouting
from repro.routing.misrouting import (
    MisrouteCandidate,
    global_misroute_candidates,
    local_misroute_candidates,
)
from repro.routing.olm import OLMRouting
from repro.routing.piggyback import PiggybackRouting
from repro.routing.ugal import UGALRouting
from repro.routing.valiant import ValiantRouting
from repro.topology.base import Topology

__all__ = [
    "RoutingAlgorithm",
    "RoutingDecision",
    "UnsupportedTopologyError",
    "AdaptiveInTransitRouting",
    "MinimalRouting",
    "ValiantRouting",
    "UGALRouting",
    "PiggybackRouting",
    "OLMRouting",
    "BaseContentionRouting",
    "HybridContentionRouting",
    "ECtNRouting",
    "ContentionCounters",
    "ContentionTracker",
    "VCAssignmentPolicy",
    "MisrouteCandidate",
    "global_misroute_candidates",
    "local_misroute_candidates",
    "ROUTING_REGISTRY",
    "available_routings",
    "create_routing",
]

#: Mechanism name (as used in the paper's figures) -> implementation class.
ROUTING_REGISTRY: Dict[str, Type[RoutingAlgorithm]] = {
    "MIN": MinimalRouting,
    "VAL": ValiantRouting,
    "UGAL": UGALRouting,
    "PB": PiggybackRouting,
    "OLM": OLMRouting,
    "Base": BaseContentionRouting,
    "Hybrid": HybridContentionRouting,
    "ECtN": ECtNRouting,
}


def available_routings() -> List[str]:
    """Names of all implemented routing mechanisms."""
    return list(ROUTING_REGISTRY)


def create_routing(
    name: str, topology: Topology, params: SimulationParameters, rng
) -> RoutingAlgorithm:
    """Instantiate the routing mechanism called ``name`` (case-insensitive)."""
    for key, cls in ROUTING_REGISTRY.items():
        if key.lower() == name.lower():
            return cls(topology, params, rng)
    raise ValueError(
        f"Unknown routing {name!r}; available: {', '.join(ROUTING_REGISTRY)}"
    )
