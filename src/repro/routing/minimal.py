"""MIN: oblivious minimal routing.

Traffic follows the topology's (unique) minimal path to its destination
(Section IV-A).  On the Dragonfly that is the hierarchical
local-global-local route: up to one local hop to the group's gateway
router, the single global link towards the destination group, and up to one
local hop to the destination router; on the flattened butterfly and the
torus it is dimension-order routing, and on the full mesh the single direct
link.  MIN never misroutes; it gives the lowest possible latency under
uniform traffic and collapses under adversarial patterns, making it the
latency reference of Fig. 5a and the pathological baseline of Fig. 5b/5c.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.network.packet import Packet
from repro.routing.base import RoutingAlgorithm, RoutingDecision

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.router import Router

__all__ = ["MinimalRouting"]


class MinimalRouting(RoutingAlgorithm):
    """Oblivious minimal (hierarchical) routing."""

    name = "MIN"
    decision_is_pure = True

    def __init__(self, topology, params, rng):
        super().__init__(topology, params, rng)
        self._nodes_per_router = topology.nodes_per_router

    def select_output(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> Optional[RoutingDecision]:
        dst = packet.dst
        if router.router_id == self._node_rid[dst]:
            return self.plain_decision(dst % self._nodes_per_router, 0)
        return self.minimal_decision(router, packet)
