"""Routing-algorithm interface.

A routing algorithm in this library is an object that the cycle-level router
model consults and notifies:

* :meth:`RoutingAlgorithm.select_output` — called for the packet at the head
  of an input VC each cycle until it wins allocation; returns a
  :class:`RoutingDecision` (output port, next VC, misrouting flags) or
  ``None`` if the packet cannot be routed this cycle.
* :meth:`RoutingAlgorithm.on_inject` — called once when a packet is injected
  at its source router (source-routing decisions: Valiant intermediate,
  PiggyBacking's MIN/VAL choice).
* :meth:`RoutingAlgorithm.on_packet_arrival` — called when a packet is stored
  into an input buffer (phase transitions such as "reached the intermediate
  group", ECtN partial-counter bookkeeping).
* :meth:`RoutingAlgorithm.on_packet_head` / :meth:`on_packet_leave_input` —
  called when a packet reaches the head of an input VC and when it leaves the
  input buffer; the contention-counter mechanisms maintain their counters in
  these hooks (Section III-B of the paper).
* :meth:`RoutingAlgorithm.on_grant` — called when allocation succeeds, so the
  algorithm can commit the state changes encoded in the decision.
* :meth:`RoutingAlgorithm.post_cycle` — called once per cycle on the whole
  network (PiggyBacking's saturation broadcast, ECtN's partial-array
  broadcast).

The hooks keep the router micro-architecture completely independent from the
routing policy, mirroring the paper's separation between the *misrouting
trigger* and the router datapath.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, NamedTuple, Optional

from repro.config.parameters import SimulationParameters
from repro.network.packet import Packet, RoutingPhase
from repro.topology.base import PortKind, Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network
    from repro.network.router import Router

__all__ = ["RoutingDecision", "RoutingAlgorithm", "UnsupportedTopologyError"]


class UnsupportedTopologyError(ValueError):
    """A routing mechanism was paired with a topology it is not defined for.

    Raised at construction time by mechanisms whose trigger or path policy
    is tied to structure a topology does not provide (e.g. ECtN's
    group-wide contention broadcast or PB's intra-group saturation ECN on a
    non-Dragonfly network), so a mismatched configuration fails loudly
    instead of silently misrouting.  Use :meth:`for_mechanism` to build the
    error: every message names the rejected topology (by registry name) and
    the nearest supported alternative, so callers can act on it.
    """

    @classmethod
    def for_mechanism(
        cls,
        mechanism: str,
        topology: "Topology",
        reason: str,
        alternative: str,
    ) -> "UnsupportedTopologyError":
        """Standard message: mechanism, topology name, reason, alternative."""
        name = getattr(topology.path_model, "topology", type(topology).__name__)
        return cls(
            f"{mechanism} is not defined for the {name!r} topology: {reason}. "
            f"Nearest supported alternative: {alternative}."
        )


class RoutingDecision(NamedTuple):
    """The outcome of a routing computation for one packet at one router.

    A ``NamedTuple`` rather than a dataclass: a decision is built for every
    head on every allocation round and tuple construction keeps that cheap.
    """

    output_port: int
    vc: int
    #: This hop is part of a nonminimal *global* detour (counts as global
    #: misrouting for the metrics once the packet crosses a global link).
    nonminimal_global: bool = False
    #: This hop is a nonminimal *local* detour inside a group.
    nonminimal_local: bool = False
    #: Intermediate group chosen by an in-transit global misroute (recorded on
    #: the packet when the grant is committed).
    set_intermediate_group: Optional[int] = None
    #: This hop is the local "proxy" step of an MM+L global misroute; the
    #: packet must take a global hop at the next router.
    set_must_misroute_global: bool = False


class RoutingAlgorithm(ABC):
    """Base class for all routing mechanisms."""

    #: Human-readable identifier used in reports and experiment tables.
    name: str = "abstract"

    #: Whether the mechanism needs the extra local VC of Table I (VAL & PB).
    needs_extra_local_vc: bool = False

    #: Whether the mechanism routes packets through an in-transit adaptive
    #: policy (the MM+L group policy or the nonminimal ring escape).  Set by
    #: :class:`~repro.routing.adaptive.AdaptiveInTransitRouting`; widens the
    #: construction-time deadlock validation to the adaptive path shapes.
    uses_in_transit_adaptive: bool = False

    #: Whether ``select_output`` is a pure function of the head packet and
    #: cycle-constant state (no RNG draws, no reads of state mutated by
    #: grants).  The router then reuses the first allocation round's decision
    #: for the later speedup rounds of the same cycle instead of recomputing
    #: it.  Mechanisms whose triggers draw random numbers (Base, ECtN, OLM,
    #: Hybrid) must leave this False: the number of ``select_output`` calls
    #: is part of their RNG-stream contract.
    decision_is_pure: bool = False

    #: Whether the engine must invoke :meth:`post_cycle` at all.  Mechanisms
    #: that override ``post_cycle`` (PB's saturation broadcast, ECtN's
    #: partial-array broadcast) MUST set this to ``True``; everything else
    #: (MIN/VAL/OLM/Base/Hybrid) leaves it ``False`` and pays nothing per
    #: cycle for the network-wide hook.
    needs_post_cycle: bool = False

    def __init__(self, topology: Topology, params: SimulationParameters, rng):
        self.topology = topology
        self.params = params
        self.rng = rng
        # The per-kind VC counts are fixed per mechanism; cache them so the
        # per-hop ``next_vc`` computation is pure integer arithmetic.
        self._global_vcs = self.num_vcs(PortKind.GLOBAL)
        self._local_vcs = self.num_vcs(PortKind.LOCAL)
        # Dateline-schedule topologies (the torus) assign ring VCs through
        # the topology's dateline state machine instead of the path-stage
        # formula; ``None`` everywhere else keeps the hot paths branch-cheap.
        self._dateline = (
            topology if topology.path_model.vc_schedule == "dateline" else None
        )
        # Deadlock-freedom gate: every path shape this mechanism can take on
        # this topology must walk strictly increasing buffer classes within
        # the VC budget (see repro.routing.deadlock).  Oblivious/minimal
        # mechanisms take at most the Valiant shapes; the in-transit
        # adaptive policy additionally gates on the path model's capability
        # flag in AdaptiveInTransitRouting.
        from repro.routing.deadlock import validate_path_model

        validate_path_model(
            topology.path_model,
            local_vcs=self._local_vcs,
            global_vcs=self._global_vcs,
            include_valiant=self.needs_extra_local_vc,
            include_adaptive=self.uses_in_transit_adaptive,
        )
        # Flag-free (minimal/ejection) decisions are pure functions of
        # (output port, vc); they are immutable NamedTuples, so the hot
        # decision paths share one instance per pair instead of rebuilding
        # it for every head on every allocation round.
        max_vcs = max(
            self._global_vcs, self._local_vcs, self.num_vcs(PortKind.INJECTION)
        )
        self._plain_decisions = [
            [None] * max_vcs for _ in range(topology.router_radix)
        ]

    def plain_decision(self, port: int, vc: int) -> RoutingDecision:
        """Shared flag-free decision instance for ``(port, vc)``."""
        row = self._plain_decisions[port]
        decision = row[vc]
        if decision is None:
            decision = row[vc] = RoutingDecision(port, vc)
        return decision

    # ------------------------------------------------------------------ hooks
    @abstractmethod
    def select_output(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> Optional[RoutingDecision]:
        """Choose the output port and next VC for ``packet`` at ``router``."""

    def on_inject(self, router: "Router", packet: Packet, cycle: int) -> None:
        """Source-routing hook, called right before injection-buffer insertion."""
        packet.source_group = self.topology.router_region(router.router_id)

    def on_packet_arrival(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> None:
        """Called when ``packet`` is stored into an input buffer of ``router``."""

    def on_packet_head(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> None:
        """Called once when ``packet`` reaches the head of an input VC."""

    def on_packet_leave_input(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> None:
        """Called when ``packet`` leaves the input buffer (tail removed)."""

    def on_grant(
        self,
        router: "Router",
        port: int,
        vc: int,
        packet: Packet,
        decision: RoutingDecision,
        cycle: int,
    ) -> None:
        """Commit the routing decision once allocation succeeded."""
        if decision.set_intermediate_group is not None:
            packet.intermediate_group = decision.set_intermediate_group
            packet.phase = RoutingPhase.TO_INTERMEDIATE
        if decision.set_must_misroute_global:
            packet.must_misroute_global = True
        elif self.topology.port_kinds[decision.output_port] is PortKind.GLOBAL:
            packet.must_misroute_global = False
        if decision.nonminimal_global and not packet.globally_misrouted:
            packet.globally_misrouted = True
            if packet.misroute_recorded_cycle is None:
                packet.misroute_recorded_cycle = cycle
        if decision.nonminimal_local:
            packet.locally_misrouted = True
        if self._dateline is not None:
            self._dateline.commit_ring_hop(packet, router.router_id, decision.output_port)

    def post_cycle(self, network: "Network", cycle: int) -> None:
        """Network-wide per-cycle hook (ECN / ECtN broadcasts)."""

    def post_cycle_horizon(self, network: "Network", cycle: int) -> Optional[int]:
        """Next cycle at which :meth:`post_cycle` must actually run.

        Consulted by the time-warp engine only when :attr:`needs_post_cycle`
        is set.  Returning ``cycle`` means "this very cycle" (no warp);
        ``None`` means "never, until other activity wakes the network up".
        The conservative default pins the engine to cycle-by-cycle stepping,
        so a mechanism that overrides ``post_cycle`` without thinking about
        time warp stays bit-identical to the non-warp engine.
        """
        return cycle

    # ------------------------------------------------------------ VC policies
    def num_vcs(self, kind: PortKind) -> int:
        """Number of virtual channels used on ports of the given kind."""
        if kind is PortKind.INJECTION:
            return self.params.injection_vcs
        if kind is PortKind.GLOBAL:
            return self.params.global_port_vcs
        if self.needs_extra_local_vc:
            return self.params.local_port_vcs_oblivious
        return self.params.local_port_vcs

    def next_vc(self, packet: Packet, output_kind: PortKind) -> int:
        """Deadlock-avoidance VC assignment by path stage.

        The virtual channel of a hop is derived from how many global hops the
        packet has taken (``g``) and how many local hops it has taken inside
        the current group (``l``):

        * global hop  -> global VC ``g``;
        * local hop   -> local VC ``min(l, 1)`` while still in the source
          group (``g = 0``) and ``2*g - 1 + min(l, 1)`` afterwards.

        Along every path allowed by the routing mechanisms the resulting
        buffer classes follow the strictly increasing order
        ``L0 < G0 < L1 < L2 < G1 < L3 < ejection``, so the channel dependency
        graph is acyclic and routing is deadlock-free (see
        :mod:`repro.routing.deadlock`).

        This is the **path-stage** formula only; on dateline-schedule
        topologies (the torus) callers must use :meth:`hop_vc`, which routes
        through the topology's dateline state machine instead.

        NOTE: this formula is hand-inlined in two hot paths —
        ``minimal_decision`` below and the minimal fallback at the end of
        ``AdaptiveInTransitRouting.select_output`` — keep all three in sync.
        """
        if output_kind is PortKind.GLOBAL:
            g = packet.global_hops
            last = self._global_vcs - 1
            return g if g < last else last
        if output_kind is PortKind.LOCAL:
            g = packet.global_hops
            l = 1 if packet.local_hops_in_group else 0
            vc = l if g == 0 else 2 * g - 1 + l
            last = self._local_vcs - 1
            return vc if vc < last else last
        return 0  # ejection

    def hop_vc(self, packet: Packet, router_id: int, port: int, kind: PortKind) -> int:
        """Schedule-aware VC for ``packet``'s next hop through ``port``.

        Path-stage topologies use :meth:`next_vc`; dateline topologies
        defer to :meth:`~repro.topology.base.Topology.ring_vc`, which needs
        the concrete (router, port) to locate the ring and its dateline.
        """
        if kind is PortKind.INJECTION:
            return 0
        if self._dateline is not None:
            return self._dateline.ring_vc(packet, router_id, port)
        return self.next_vc(packet, kind)

    # --------------------------------------------------------------- utilities
    def ejection_decision(self, router: "Router", packet: Packet) -> RoutingDecision:
        """Decision delivering ``packet`` to its destination node at ``router``."""
        return self.plain_decision(self.topology.node_port(packet.dst), 0)

    def minimal_decision(self, router: "Router", packet: Packet) -> RoutingDecision:
        """Decision following the (unique) minimal path towards the destination."""
        topo = self.topology
        port = topo.minimal_output_port(router.router_id, packet.dst)
        if self._dateline is not None:
            if topo.port_kinds[port] is PortKind.INJECTION:
                return self.plain_decision(port, 0)
            return self.plain_decision(
                port, self._dateline.ring_vc(packet, router.router_id, port)
            )
        # Inlined ``next_vc`` (see the NOTE there) — the hottest routing helper.
        kind = topo.port_kinds[port]
        if kind is PortKind.GLOBAL:
            g = packet.global_hops
            last = self._global_vcs - 1
            vc = g if g < last else last
        elif kind is PortKind.LOCAL:
            g = packet.global_hops
            l = 1 if packet.local_hops_in_group else 0
            vc = l if g == 0 else 2 * g - 1 + l
            last = self._local_vcs - 1
            if vc > last:
                vc = last
        else:
            vc = 0  # ejection
        return self.plain_decision(port, vc)

    def describe(self) -> str:
        return self.name
