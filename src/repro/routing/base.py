"""Routing-algorithm interface.

A routing algorithm in this library is an object that the cycle-level router
model consults and notifies:

* :meth:`RoutingAlgorithm.select_output` — called for the packet at the head
  of an input VC each cycle until it wins allocation; returns a
  :class:`RoutingDecision` (output port, next VC, misrouting flags) or
  ``None`` if the packet cannot be routed this cycle.
* :meth:`RoutingAlgorithm.on_inject` — called once when a packet is injected
  at its source router (source-routing decisions: Valiant intermediate,
  PiggyBacking's MIN/VAL choice).
* :meth:`RoutingAlgorithm.on_packet_arrival` — called when a packet is stored
  into an input buffer (phase transitions such as "reached the intermediate
  group", ECtN partial-counter bookkeeping).
* :meth:`RoutingAlgorithm.on_packet_head` / :meth:`on_packet_leave_input` —
  called when a packet reaches the head of an input VC and when it leaves the
  input buffer; the contention-counter mechanisms maintain their counters in
  these hooks (Section III-B of the paper).
* :meth:`RoutingAlgorithm.on_grant` — called when allocation succeeds, so the
  algorithm can commit the state changes encoded in the decision.
* :meth:`RoutingAlgorithm.post_cycle` — called once per cycle on the whole
  network (PiggyBacking's saturation broadcast, ECtN's partial-array
  broadcast).

The hooks keep the router micro-architecture completely independent from the
routing policy, mirroring the paper's separation between the *misrouting
trigger* and the router datapath.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, NamedTuple, Optional

from repro.config.parameters import SimulationParameters
from repro.network.packet import Packet, RoutingPhase
from repro.topology.base import PortKind, Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network
    from repro.network.router import Router
    from repro.topology.faults import FaultRuntime

__all__ = ["RoutingDecision", "RoutingAlgorithm", "UnsupportedTopologyError"]


class UnsupportedTopologyError(ValueError):
    """A routing mechanism was paired with a topology it is not defined for.

    Raised at construction time by mechanisms whose trigger or path policy
    is tied to structure a topology does not provide (e.g. ECtN's
    group-wide contention broadcast or PB's intra-group saturation ECN on a
    non-Dragonfly network), so a mismatched configuration fails loudly
    instead of silently misrouting.  Use :meth:`for_mechanism` to build the
    error: every message names the rejected topology (by registry name) and
    the nearest supported alternative, so callers can act on it.
    """

    @classmethod
    def for_mechanism(
        cls,
        mechanism: str,
        topology: "Topology",
        reason: str,
        alternative: str,
    ) -> "UnsupportedTopologyError":
        """Standard message: mechanism, topology name, reason, alternative."""
        name = getattr(topology.path_model, "topology", type(topology).__name__)
        return cls(
            f"{mechanism} is not defined for the {name!r} topology: {reason}. "
            f"Nearest supported alternative: {alternative}."
        )


class RoutingDecision(NamedTuple):
    """The outcome of a routing computation for one packet at one router.

    A ``NamedTuple`` rather than a dataclass: a decision is built for every
    head on every allocation round and tuple construction keeps that cheap.
    """

    output_port: int
    vc: int
    #: This hop is part of a nonminimal *global* detour (counts as global
    #: misrouting for the metrics once the packet crosses a global link).
    nonminimal_global: bool = False
    #: This hop is a nonminimal *local* detour inside a group.
    nonminimal_local: bool = False
    #: Intermediate group chosen by an in-transit global misroute (recorded on
    #: the packet when the grant is committed).
    set_intermediate_group: Optional[int] = None
    #: This hop is the local "proxy" step of an MM+L global misroute; the
    #: packet must take a global hop at the next router.
    set_must_misroute_global: bool = False
    #: This hop was produced by the fault fallback (a dead output port on
    #: the policy's chosen path): the packet enters *fault mode* and follows
    #: the surviving-path BFS tree to its destination (see
    #: :meth:`RoutingAlgorithm.fault_decision`).
    set_fault_mode: bool = False


class RoutingAlgorithm(ABC):
    """Base class for all routing mechanisms."""

    #: Human-readable identifier used in reports and experiment tables.
    name: str = "abstract"

    #: Whether the mechanism needs the extra local VC of Table I (VAL & PB).
    needs_extra_local_vc: bool = False

    #: Whether the mechanism routes packets through an in-transit adaptive
    #: policy (the MM+L group policy or the nonminimal ring escape).  Set by
    #: :class:`~repro.routing.adaptive.AdaptiveInTransitRouting`; widens the
    #: construction-time deadlock validation to the adaptive path shapes.
    uses_in_transit_adaptive: bool = False

    #: Whether ``select_output`` is a pure function of the head packet and
    #: cycle-constant state (no RNG draws, no reads of state mutated by
    #: grants).  The router then reuses the first allocation round's decision
    #: for the later speedup rounds of the same cycle instead of recomputing
    #: it.  Mechanisms whose triggers draw random numbers (Base, ECtN, OLM,
    #: Hybrid) must leave this False: the number of ``select_output`` calls
    #: is part of their RNG-stream contract.
    decision_is_pure: bool = False

    #: Whether the engine must invoke :meth:`post_cycle` at all.  Mechanisms
    #: that override ``post_cycle`` (PB's saturation broadcast, ECtN's
    #: partial-array broadcast) MUST set this to ``True``; everything else
    #: (MIN/VAL/OLM/Base/Hybrid) leaves it ``False`` and pays nothing per
    #: cycle for the network-wide hook.
    needs_post_cycle: bool = False

    def __init__(self, topology: Topology, params: SimulationParameters, rng):
        self.topology = topology
        self.params = params
        self.rng = rng
        #: Fault state of the current simulation, attached by the simulator
        #: via :meth:`attach_faults`; ``None`` on a healthy network, which
        #: keeps every fault check in the hot paths a single ``is None``.
        self.faults: Optional["FaultRuntime"] = None
        #: Observation hub (:mod:`repro.obs`), attached by the engine.
        #: ``None`` keeps the per-grant observability hook a single
        #: attribute check — the zero-overhead-when-disabled contract.
        self._obs = None
        # Lazy state of the fault-detour planners (see
        # ``_ladder_fault_decision``): the usable buffer-class chain and the
        # per-(epoch, target) layered shortest-path tables.
        self._fault_chain = None
        self._ladder_cache = None
        # The per-kind VC counts are fixed per mechanism; cache them so the
        # per-hop ``next_vc`` computation is pure integer arithmetic.
        self._global_vcs = self.num_vcs(PortKind.GLOBAL)
        self._local_vcs = self.num_vcs(PortKind.LOCAL)
        # Dateline-schedule topologies (the torus) assign ring VCs through
        # the topology's dateline state machine instead of the path-stage
        # formula; ``None`` everywhere else keeps the hot paths branch-cheap.
        self._dateline = (
            topology if topology.path_model.vc_schedule == "dateline" else None
        )
        # Up/down-schedule topologies (the fat tree) assign the VC purely by
        # the output port's direction (up -> 0, down -> 1); cache the
        # port-indexed table so hop decisions are one tuple lookup.
        self._updown_vcs = (
            topology.updown_port_vcs
            if topology.path_model.vc_schedule == "up_down"
            else None
        )
        # Node -> router table.  The hot paths historically divided by
        # nodes_per_router, which breaks on topologies whose nodes are not
        # dense across routers (the fat tree attaches nodes to leaf
        # switches only); resolving the mapping once here keeps them a
        # single tuple index with identical values on dense topologies.
        self._node_rid = tuple(
            topology.node_router(n) for n in range(topology.num_nodes)
        )
        # Deadlock-freedom gate: every path shape this mechanism can take on
        # this topology must walk strictly increasing buffer classes within
        # the VC budget (see repro.routing.deadlock).  Oblivious/minimal
        # mechanisms take at most the Valiant shapes; the in-transit
        # adaptive policy additionally gates on the path model's capability
        # flag in AdaptiveInTransitRouting.
        from repro.routing.deadlock import validate_path_model

        validate_path_model(
            topology.path_model,
            local_vcs=self._local_vcs,
            global_vcs=self._global_vcs,
            include_valiant=self.needs_extra_local_vc,
            include_adaptive=self.uses_in_transit_adaptive,
        )
        # Flag-free (minimal/ejection) decisions are pure functions of
        # (output port, vc); they are immutable NamedTuples, so the hot
        # decision paths share one instance per pair instead of rebuilding
        # it for every head on every allocation round.
        max_vcs = max(
            self._global_vcs, self._local_vcs, self.num_vcs(PortKind.INJECTION)
        )
        self._plain_decisions = [
            [None] * max_vcs for _ in range(topology.router_radix)
        ]

    def plain_decision(self, port: int, vc: int) -> RoutingDecision:
        """Shared flag-free decision instance for ``(port, vc)``."""
        row = self._plain_decisions[port]
        decision = row[vc]
        if decision is None:
            decision = row[vc] = RoutingDecision(port, vc)
        return decision

    # ------------------------------------------------------------------ hooks
    @abstractmethod
    def select_output(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> Optional[RoutingDecision]:
        """Choose the output port and next VC for ``packet`` at ``router``."""

    def on_inject(self, router: "Router", packet: Packet, cycle: int) -> None:
        """Source-routing hook, called right before injection-buffer insertion."""
        packet.source_group = self.topology.router_region(router.router_id)

    def on_packet_arrival(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> None:
        """Called when ``packet`` is stored into an input buffer of ``router``."""

    def on_packet_head(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> None:
        """Called once when ``packet`` reaches the head of an input VC."""

    def on_packet_leave_input(
        self, router: "Router", port: int, vc: int, packet: Packet, cycle: int
    ) -> None:
        """Called when ``packet`` leaves the input buffer (tail removed)."""

    def trigger_observation(self, router: "Router", packet: Packet) -> Optional[dict]:
        """Draw-free snapshot of this mechanism's misroute trigger state.

        Called by the observation hub at grant time, for sampled packets
        only, so the cost never touches the unsampled hot path.  Grant time
        is the one point where trigger state is bit-identical across
        backends (the SoA engine elides provably no-op trigger
        re-evaluations, so per-consultation traces cannot be
        backend-invariant).  Note that ``on_packet_leave_input`` has
        already fired, so contention counters exclude the departing packet.

        Mechanisms without an adaptive trigger return ``None``.
        Implementations must not draw from an RNG stream or mutate any
        state.
        """
        return None

    def on_grant(
        self,
        router: "Router",
        port: int,
        vc: int,
        packet: Packet,
        decision: RoutingDecision,
        cycle: int,
    ) -> None:
        """Commit the routing decision once allocation succeeded."""
        if decision.set_intermediate_group is not None:
            packet.intermediate_group = decision.set_intermediate_group
            packet.phase = RoutingPhase.TO_INTERMEDIATE
        if decision.set_must_misroute_global:
            packet.must_misroute_global = True
        elif self.topology.port_kinds[decision.output_port] is PortKind.GLOBAL:
            packet.must_misroute_global = False
        if decision.nonminimal_global and not packet.globally_misrouted:
            packet.globally_misrouted = True
            if packet.misroute_recorded_cycle is None:
                packet.misroute_recorded_cycle = cycle
        if decision.nonminimal_local:
            packet.locally_misrouted = True
        if decision.set_fault_mode:
            self._commit_fault_hop(packet, decision)
        if self._dateline is not None:
            self._dateline.commit_ring_hop(packet, router.router_id, decision.output_port)
        # Observability hook.  Both backends funnel every committed grant
        # through this method with identical arguments and ordering, which
        # makes it the single per-hop instrumentation point: one attribute
        # check when probes are off, and backend-invariant events when on
        # (the hub is draw-free and never mutates simulation state).
        obs = self._obs
        if obs is not None:
            obs.record_grant(self, router, port, vc, packet, decision, cycle)

    def _commit_fault_hop(self, packet: Packet, decision: RoutingDecision) -> None:
        """Commit a fault-fallback hop (kept out of the healthy grant path)."""
        faults = self.faults
        faults.fault_reroute_hops += 1
        if not packet.fault_mode:
            packet.fault_mode = True
            faults.rerouted_packets += 1
        # Fault mode overrides the MM+L commitments: a pending forced-global
        # step may no longer be satisfiable on the surviving graph.
        packet.must_misroute_global = False

    # ------------------------------------------------------------------ faults
    def attach_faults(self, faults: "FaultRuntime") -> None:
        """Bind the simulation's fault state to this mechanism.

        Called by the simulator after construction; the contention-counter
        mechanisms override this to additionally seed their counters with
        the degraded-link bias (a degraded link reads as persistently
        contended).
        """
        self.faults = faults

    def fault_decision(
        self, router: "Router", packet: Packet, cycle: int, in_port: int, in_vc: int
    ) -> Optional[RoutingDecision]:
        """Fault-fallback decision: steer along the surviving-path BFS tree.

        Invoked by the router's allocation stage when the policy's chosen
        output port is dead, or for a packet already in fault mode.  Fault
        mode is *sticky* until delivery: re-consulting the healthy policy
        after a detour could steer the packet straight back to the dead
        link (a livelock on topologies with a unique minimal gateway), while
        the per-epoch BFS next-hop tree makes strictly decreasing progress.

        Returns ``None`` when the destination router is unreachable on the
        surviving graph — the caller then drops and counts the packet
        instead of letting it stall the watchdog.
        """
        faults = self.faults
        topo = self.topology
        rid = router.router_id
        dst_router = topo.node_router(packet.dst)
        if rid == dst_router:
            return self.ejection_decision(router, packet)
        # A nonminimal intermediate that fell off the surviving graph (or
        # that fault mode makes moot) is abandoned for good: the packet
        # heads straight for its destination.  This is a property of the
        # network state, not of this allocation attempt, so it is committed
        # eagerly — the dateline leg bump below must be visible to the VC
        # computation of this very decision.
        target = dst_router
        if packet.phase is RoutingPhase.TO_INTERMEDIATE:
            intermediate = packet.valiant_router
            if (
                intermediate is not None
                and intermediate != rid
                and faults.reachable(rid, intermediate)
            ):
                target = intermediate
            else:
                packet.valiant_router = None
                packet.intermediate_group = None
                packet.phase = RoutingPhase.MINIMAL
                if self._dateline is not None and packet.vc_leg == 0:
                    packet.vc_leg = 1
                    packet.ring_dim = -1
                    packet.ring_crossed = False
                    packet.ring_dir = 0
        if not faults.reachable(rid, target):
            return None
        kind_in = topo.port_kinds[in_port]
        if kind_in is not PortKind.INJECTION and in_vc == self._escape_vc(kind_in):
            # Already on the escape tree: stay there.  The chain->escape
            # transition being one-way is what keeps the combined channel
            # dependency graph acyclic.
            return self._escape_decision(router, packet)
        if self._dateline is not None:
            return self._dateline_fault_decision(router, packet, target)
        if self._updown_vcs is not None:
            # The path-stage class ladder is meaningless under the up/down
            # schedule (tree detours would have to revisit classes); the
            # escape tree is deadlock-free independently of it.
            return self._escape_decision(router, packet)
        return self._ladder_fault_decision(router, packet, target, in_port, in_vc)

    def _escape_vc(self, kind: PortKind) -> int:
        """Index of the dedicated fault-escape VC on ports of this kind.

        One past the mechanism's own VC budget; the router provisions it on
        every router-to-router link when fault injection is enabled.
        """
        return self._global_vcs if kind is PortKind.GLOBAL else self._local_vcs

    def _escape_decision(
        self, router: "Router", packet: Packet
    ) -> Optional[RoutingDecision]:
        """Last-resort fault detour: the escape VC on the spanning tree.

        Used when the topology's own deadlock-free schedule cannot express a
        surviving path (class budget exhausted on path-stage topologies,
        every uncorrected ring severed on dateline ones).  The escape class
        is deadlock-free by the up*/down* argument (see
        :meth:`~repro.topology.faults.FaultRuntime.escape_port`) and the
        tree path is unique, so delivery is guaranteed on any connected
        surviving graph.  Valiant intermediates are abandoned — nonminimal
        spreading is meaningless for tree-confined traffic.
        """
        faults = self.faults
        topo = self.topology
        rid = router.router_id
        dst_router = topo.node_router(packet.dst)
        if packet.phase is RoutingPhase.TO_INTERMEDIATE:
            packet.valiant_router = None
            packet.intermediate_group = None
            packet.phase = RoutingPhase.MINIMAL
        if not faults.reachable(rid, dst_router):
            return None
        port = faults.escape_port(rid, dst_router)
        return RoutingDecision(
            output_port=port,
            vc=self._escape_vc(topo.port_kinds[port]),
            set_fault_mode=True,
        )

    def _ladder_fault_decision(
        self, router: "Router", packet: Packet, target: int, in_port: int, in_vc: int
    ) -> RoutingDecision:
        """Fault detour on path-stage topologies: the buffer-class ladder.

        Raw BFS detours can exceed the hop budget of the path-stage VC
        chain; once the hop-counter assignment caps at the top class the
        strictly increasing class order is lost and faulted runs can
        deadlock (observed on the dragonfly).  The detour instead follows a
        shortest path in the *layered* surviving graph whose states are
        ``(router, next usable class)``: every hop consumes a buffer class
        of the matching kind from the global order ``L0 < G0 < L1 < L2 <
        G1 < L3`` (truncated to this mechanism's VC budget), starting
        strictly above the class the packet currently occupies.  Classes
        along any detour are therefore strictly increasing and the standard
        acyclicity argument holds verbatim.  A packet whose remaining class
        budget cannot reach the target (class-exhausted, not disconnected)
        transfers to the escape tree instead (:meth:`_escape_decision`),
        which is deadlock-free independently of the class chain.
        """
        topo = self.topology
        faults = self.faults
        rid = router.router_id
        chain = self._fault_ladder_chain()
        kind_in = topo.port_kinds[in_port]
        if kind_in is PortKind.INJECTION:
            rank = 0
        else:
            key = ("global" if kind_in is PortKind.GLOBAL else "local", in_vc)
            try:
                rank = chain.index(key) + 1
            except ValueError:  # aberrant (pre-fault capped) class
                rank = len(chain)
        step = self._ladder_step(target, rid, rank)
        dst_router = topo.node_router(packet.dst)
        if step is None and target != dst_router:
            # The class budget cannot carry the packet through the Valiant
            # intermediate; abandon it and aim straight for the destination.
            packet.valiant_router = None
            packet.intermediate_group = None
            packet.phase = RoutingPhase.MINIMAL
            target = dst_router
            step = self._ladder_step(target, rid, rank)
        if step is not None:
            port, cls = step
            return RoutingDecision(
                output_port=port, vc=chain[cls][1], set_fault_mode=True
            )
        return self._escape_decision(router, packet)

    def _fault_ladder_chain(self):
        """Buffer-class chain usable by fault detours, in global class order."""
        chain = self._fault_chain
        if chain is None:
            from repro.routing.deadlock import BUFFER_CLASS_ORDER

            chain = tuple(
                (kind, vc)
                for kind, vc in BUFFER_CLASS_ORDER
                if vc < (self._global_vcs if kind == "global" else self._local_vcs)
            )
            self._fault_chain = chain
        return chain

    def _ladder_step(self, target: int, rid: int, rank: int):
        """Next ``(port, chain index)`` of the shortest monotone detour.

        ``None`` when no path to ``target`` exists whose hops use only
        classes at chain index ``rank`` or later.  Tables are built once per
        ``(fault epoch, target)`` and cached.
        """
        faults = self.faults
        cache = self._ladder_cache
        if cache is None or cache[0] != faults.epoch:
            cache = (faults.epoch, {})
            self._ladder_cache = cache
        steps = cache[1].get(target)
        if steps is None:
            steps = self._build_ladder(target)
            cache[1][target] = steps
        if rank >= len(steps):
            return None
        return steps[rank][rid]

    def _build_ladder(self, target: int):
        """Layered-graph shortest-path tables towards ``target``.

        ``steps[k][r]`` is the first hop of the shortest surviving path from
        router ``r`` to ``target`` whose classes are drawn, strictly
        increasing, from chain index ``k`` onwards (``None`` if no such
        path).  Layer ``k`` only ever refers to layers ``> k``, so a single
        descending sweep computes everything; ascending port order makes
        tie-breaks deterministic.
        """
        topo = self.topology
        failed = self.faults.failed_ports
        chain = self._fault_ladder_chain()
        K = len(chain)
        # next_of[k][kind] = smallest chain index >= k of that kind.
        next_of: list = [None] * (K + 1)
        next_of[K] = {"local": None, "global": None}
        for k in range(K - 1, -1, -1):
            entry = dict(next_of[k + 1])
            entry[chain[k][0]] = k
            next_of[k] = entry
        num_routers = topo.num_routers
        radix = topo.router_radix
        port_kinds = topo.port_kinds
        INF = 10**9
        dist = [[INF] * num_routers for _ in range(K + 1)]
        steps = [[None] * num_routers for _ in range(K)]
        for k in range(K + 1):
            dist[k][target] = 0
        for k in range(K - 1, -1, -1):
            dk = dist[k]
            sk = steps[k]
            nk = next_of[k]
            for r in range(num_routers):
                if r == target:
                    continue
                dead = failed[r]
                best = INF
                best_step = None
                for port in range(radix):
                    kind = port_kinds[port]
                    if kind is PortKind.INJECTION or port in dead:
                        continue
                    nbr = topo.neighbor(r, port)
                    if nbr is None:
                        continue
                    c = nk["global" if kind is PortKind.GLOBAL else "local"]
                    if c is None:
                        continue
                    d = dist[c + 1][nbr[0]]
                    if d + 1 < best:
                        best = d + 1
                        best_step = (port, c)
                dk[r] = best
                sk[r] = best_step
        return steps

    def _dateline_fault_decision(
        self, router: "Router", packet: Packet, target: int
    ) -> RoutingDecision:
        """Fault detour on dateline (ring) topologies.

        Raw BFS steering is *not* safe here: an arbitrary surviving path can
        revisit dimensions and re-cross datelines, which voids the dateline
        deadlock argument (and measurably deadlocks a faulted torus).  This
        fallback keeps the proof intact instead: dimension order over the
        *surviving* rings — correcting the lowest dimension whose ring arc
        to the target coordinate is fully alive in some direction — with one
        committed direction per traversal.  When the surviving path must
        regress to a lower dimension (a severed ring was skipped and is now
        traversable again) or reverse an already-crossed traversal, the
        packet spends its Valiant leg — a fresh ``(leg=1, ...)`` class
        prefix, exactly like passing a Valiant intermediate.  A packet that
        has no leg left, or whose every uncorrected ring is severed at its
        current position, transfers to the escape tree
        (:meth:`_escape_decision`) — deadlock-free independently of the
        dateline schedule.
        """
        topo = self._dateline
        faults = self.faults
        rid = router.router_id
        dst_router = self.topology.node_router(packet.dst)
        dim = direction = 0
        for _attempt in range(2):
            choice = self._surviving_ring_step(rid, target)
            if choice is None:
                return self._escape_decision(router, packet)
            dim, direction = choice
            regress = packet.ring_dim > dim
            # Any direction conflict on a committed traversal is a
            # violation, crossed or not: two same-class packets traversing
            # one ring in opposite directions already form a two-channel
            # dependency cycle.
            reverse = packet.ring_dim == dim and packet.ring_dir not in (
                0,
                direction,
            )
            if not (regress or reverse):
                break
            # The bump needs the leg-1 ring classes (2 per leg) provisioned
            # and unspent; MIN runs the torus with leg-0 classes only, and a
            # packet past its Valiant intermediate has already used the
            # leg-1 prefix.  Either way the dateline argument cannot absorb
            # the violating traversal — hand the packet to the escape tree.
            if packet.vc_leg != 0 or self._local_vcs < 4:
                return self._escape_decision(router, packet)
            # Spend the Valiant leg (and any intermediate with it) to start
            # the violating traversal in a fresh class prefix; recompute the
            # step against the final destination.
            packet.valiant_router = None
            packet.intermediate_group = None
            packet.phase = RoutingPhase.MINIMAL
            packet.vc_leg = 1
            packet.ring_dim = -1
            packet.ring_crossed = False
            packet.ring_dir = 0
            target = dst_router
        port = topo.ring_port(dim, direction)
        return RoutingDecision(
            output_port=port,
            vc=topo.ring_vc(packet, rid, port),
            set_fault_mode=True,
        )

    def _surviving_ring_step(self, rid: int, target: int):
        """First correctable dimension towards ``target``: ``(dim, direction)``.

        A dimension is correctable when the ring arc from the current
        coordinate to the target coordinate is fully alive in one direction
        (shortest direction preferred).  Returns ``None`` when every
        uncorrected ring is severed on both sides at this position.
        """
        topo = self._dateline
        failed_ports = self.faults.failed_ports
        coords = topo.router_coords(rid)
        tcoords = topo.router_coords(target)
        for dim, k in enumerate(topo.dims):
            coord, tcoord = coords[dim], tcoords[dim]
            if coord == tcoord:
                continue
            preferred = topo.ring_direction(coord, tcoord, k)
            for direction in (preferred, -preferred):
                port = topo.ring_port(dim, direction)
                r, c = rid, coord
                alive = True
                while c != tcoord:
                    if port in failed_ports[r]:
                        alive = False
                        break
                    r, _ = topo.neighbor(r, port)
                    c = (c + direction) % k
                if alive:
                    return dim, direction
        return None

    def post_cycle(self, network: "Network", cycle: int) -> None:
        """Network-wide per-cycle hook (ECN / ECtN broadcasts)."""

    def post_cycle_horizon(self, network: "Network", cycle: int) -> Optional[int]:
        """Next cycle at which :meth:`post_cycle` must actually run.

        Consulted by the time-warp engine only when :attr:`needs_post_cycle`
        is set.  Returning ``cycle`` means "this very cycle" (no warp);
        ``None`` means "never, until other activity wakes the network up".
        The conservative default pins the engine to cycle-by-cycle stepping,
        so a mechanism that overrides ``post_cycle`` without thinking about
        time warp stays bit-identical to the non-warp engine.
        """
        return cycle

    # ------------------------------------------------------------ VC policies
    def num_vcs(self, kind: PortKind) -> int:
        """Number of virtual channels used on ports of the given kind."""
        if kind is PortKind.INJECTION:
            return self.params.injection_vcs
        if kind is PortKind.GLOBAL:
            return self.params.global_port_vcs
        if self.needs_extra_local_vc:
            return self.params.local_port_vcs_oblivious
        return self.params.local_port_vcs

    def next_vc(self, packet: Packet, output_kind: PortKind) -> int:
        """Deadlock-avoidance VC assignment by path stage.

        The virtual channel of a hop is derived from how many global hops the
        packet has taken (``g``) and how many local hops it has taken inside
        the current group (``l``):

        * global hop  -> global VC ``g``;
        * local hop   -> local VC ``min(l, 1)`` while still in the source
          group (``g = 0``) and ``2*g - 1 + min(l, 1)`` afterwards.

        Along every path allowed by the routing mechanisms the resulting
        buffer classes follow the strictly increasing order
        ``L0 < G0 < L1 < L2 < G1 < L3 < ejection``, so the channel dependency
        graph is acyclic and routing is deadlock-free (see
        :mod:`repro.routing.deadlock`).

        This is the **path-stage** formula only; on dateline-schedule
        topologies (the torus) callers must use :meth:`hop_vc`, which routes
        through the topology's dateline state machine instead.

        NOTE: this formula is hand-inlined in two hot paths —
        ``minimal_decision`` below and the minimal fallback at the end of
        ``AdaptiveInTransitRouting.select_output`` — keep all three in sync.
        """
        if output_kind is PortKind.GLOBAL:
            g = packet.global_hops
            last = self._global_vcs - 1
            return g if g < last else last
        if output_kind is PortKind.LOCAL:
            g = packet.global_hops
            l = 1 if packet.local_hops_in_group else 0
            vc = l if g == 0 else 2 * g - 1 + l
            last = self._local_vcs - 1
            return vc if vc < last else last
        return 0  # ejection

    def hop_vc(self, packet: Packet, router_id: int, port: int, kind: PortKind) -> int:
        """Schedule-aware VC for ``packet``'s next hop through ``port``.

        Path-stage topologies use :meth:`next_vc`; dateline topologies
        defer to :meth:`~repro.topology.base.Topology.ring_vc`, which needs
        the concrete (router, port) to locate the ring and its dateline;
        up/down topologies index the port-VC table
        (:attr:`~repro.topology.base.Topology.updown_port_vcs`).
        """
        if kind is PortKind.INJECTION:
            return 0
        if self._dateline is not None:
            return self._dateline.ring_vc(packet, router_id, port)
        if self._updown_vcs is not None:
            return self._updown_vcs[port]
        return self.next_vc(packet, kind)

    # --------------------------------------------------------------- utilities
    def ejection_decision(self, router: "Router", packet: Packet) -> RoutingDecision:
        """Decision delivering ``packet`` to its destination node at ``router``."""
        return self.plain_decision(self.topology.node_port(packet.dst), 0)

    def minimal_decision(self, router: "Router", packet: Packet) -> RoutingDecision:
        """Decision following the (unique) minimal path towards the destination."""
        topo = self.topology
        port = topo.minimal_output_port(router.router_id, packet.dst)
        if self._dateline is not None:
            if topo.port_kinds[port] is PortKind.INJECTION:
                return self.plain_decision(port, 0)
            return self.plain_decision(
                port, self._dateline.ring_vc(packet, router.router_id, port)
            )
        if self._updown_vcs is not None:
            # Injection entries of the table are 0, so ejection needs no
            # separate branch.
            return self.plain_decision(port, self._updown_vcs[port])
        # Inlined ``next_vc`` (see the NOTE there) — the hottest routing helper.
        kind = topo.port_kinds[port]
        if kind is PortKind.GLOBAL:
            g = packet.global_hops
            last = self._global_vcs - 1
            vc = g if g < last else last
        elif kind is PortKind.LOCAL:
            g = packet.global_hops
            l = 1 if packet.local_hops_in_group else 0
            vc = l if g == 0 else 2 * g - 1 + l
            last = self._local_vcs - 1
            if vc > last:
                vc = last
        else:
            vc = 0  # ejection
        return self.plain_decision(port, vc)

    def describe(self) -> str:
        return self.name
